"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in editable mode on environments without the ``wheel``
package (``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
