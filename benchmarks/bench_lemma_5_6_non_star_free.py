"""E-L56: Lemma 5.6 -- non-star-free languages are four-legged (constructively)."""

import pytest

from repro.languages import Language, four_legged, star_free


@pytest.mark.parametrize("expression", ["b(aa)*d", "a(bb)*c", "e(aaa)*f"])
def test_witness_construction(expression):
    language = Language.from_regex(expression)
    assert not star_free.is_star_free(language)
    witness = four_legged.witness_from_non_star_free(language)
    assert witness is not None
    assert witness.is_valid_for(language)


def test_witness_construction_time(benchmark):
    language = Language.from_regex("b(aa)*d")
    witness = benchmark(lambda: four_legged.witness_from_non_star_free(language))
    assert witness is not None


def test_hardness_certificate_for_non_star_free(benchmark):
    from repro.hardness import four_legged_hardness_gadget

    certificate = benchmark(lambda: four_legged_hardness_gadget(Language.from_regex("b(aa)*d")))
    assert certificate.verification.valid
