"""E-T313: Theorem 3.13 -- resilience of local languages via MinCut.

Shape checks: the flow algorithm agrees exactly with the exact baseline on
small instances, and its runtime scales gracefully with |D| (near-linear, as
opposed to the exponential exact baseline) and with the automaton size |A|.
"""

import pytest

from repro.graphdb import generators
from repro.languages import Language
from repro.resilience import resilience_exact, resilience_local

SIZES = [40, 80, 160, 320]


@pytest.mark.parametrize("expression", ["ax*b", "ab|ad|cd"])
def test_agreement_with_exact_baseline(expression):
    language = Language.from_regex(expression)
    alphabet = "".join(sorted(language.alphabet))
    for seed in range(4):
        database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
        assert resilience_local(language, database).value == resilience_exact(language, database).value


@pytest.mark.parametrize("num_edges", SIZES)
def test_scaling_in_database_size(benchmark, num_edges):
    language = Language.from_regex("ax*b")
    database = generators.random_labelled_graph(num_edges // 3, num_edges, "axb", seed=7)
    result = benchmark(lambda: resilience_local(language, database))
    assert result.value >= 0


@pytest.mark.parametrize("layers", [3, 5, 7])
def test_scaling_on_layered_flow_networks(benchmark, layers):
    bag = generators.layered_flow_database(layers, 4, seed=layers)
    result = benchmark(lambda: resilience_local(Language.from_regex("ax*b"), bag))
    assert result.value > 0


@pytest.mark.parametrize("num_words", [2, 4, 8])
def test_combined_complexity_scaling_in_automaton_size(benchmark, num_words):
    # Larger local languages (more words -> larger RO automaton), same database.
    letters = "bcdefghij"[:num_words]
    expression = "|".join(f"a{letter}" for letter in letters)
    language = Language.from_regex(expression)
    database = generators.random_labelled_graph(30, 120, "a" + letters, seed=1)
    result = benchmark(lambda: resilience_local(language, database))
    assert result.details["automaton_size"] > 0
