"""E-CACHE: the bounded/shared/warmable cache tier trajectory.

Serves one seeded zipf traffic trace three ways and emits
``BENCH_cache.json`` (read back by ``tools/bench_smoke.py`` and the CI
artefact guard):

* **cold** — a fresh session cache, no stores: every distinct query class
  pays parsing + infix-free + classification, repeats hit in-session;
* **warmed-store** — ``python -m repro.service.warm`` runs over the trace's
  corpus in a *separate process*, then this process serves the trace through
  store-backed caches: the acceptance gate is **zero classifications** and
  nonzero analysis/result store hits on the first serve;
* **in-session** — the same cache serves the trace again: everything hits the
  in-memory result layer without touching disk.

A fourth run serves the trace through a tightly bounded cache
(``max_entries``) and gates that eviction is a pure cost: outcome statuses
must be identical to the unbounded run while the eviction counter is nonzero
(the overhead ratio is recorded, not gated — CI runners are noisy).
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from conftest import emit_bench_json, smoke_mode

from repro.service import AnalysisStore, LanguageCache, ResultStore
from repro.traffic import SoakRunner, TrafficProfile, generate_traffic

SEED = 20_260_808
NODES = 2
BOUND = 4  # max_entries of the eviction run — tight enough to thrash


def profile():
    return TrafficProfile(seed=SEED, requests=12 if smoke_mode() else 32)


def serve(trace, cache):
    runner = SoakRunner(trace, nodes=NODES, max_workers=2, cache=cache)
    return runner.run()


def hit_rate(stats: dict) -> float:
    served = stats["result_hits"] + stats["result_misses"]
    return stats["result_hits"] / served if served else 0.0


def phase_payload(report, stats: dict) -> dict:
    return {
        "p50_ms": report.latency.get("ok", {}).get("p50", 0.0),
        "p99_ms": report.latency.get("ok", {}).get("p99", 0.0),
        "wall_seconds": report.wall_seconds,
        "hit_rate": round(hit_rate(stats), 4),
        "classifications": stats["classifications"],
        "result_hits": stats["result_hits"],
        "result_misses": stats["result_misses"],
        "result_uncacheable": stats["result_uncacheable"],
    }


def warm_stores_in_fresh_process(analysis_dir: Path, result_dir: Path) -> dict:
    """Run the warming CLI as a subprocess — a genuinely separate process."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.service.warm",
            "--analysis-store", str(analysis_dir),
            "--result-store", str(result_dir),
            "--trace-seed", str(SEED),
            "--trace-requests", str(profile().requests),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout)


def test_cache_tier_trajectory():
    trace = generate_traffic(profile())

    # ---- cold: fresh session cache, no stores --------------------------------
    cold_cache = LanguageCache()
    cold = serve(trace, cold_cache)
    assert cold.violations == ()
    assert cold.cache["classifications"] > 0

    # ---- warmed-store: a separate process pre-fills, this one serves ---------
    with tempfile.TemporaryDirectory() as scratch:
        analysis_dir = Path(scratch) / "analysis"
        result_dir = Path(scratch) / "result"
        warm_report = warm_stores_in_fresh_process(analysis_dir, result_dir)
        assert warm_report["classifications"] > 0, "the warm pass must analyse"
        assert warm_report["results_written"] > 0

        analysis_store = AnalysisStore(analysis_dir)
        result_store = ResultStore(result_dir)
        warmed_cache = LanguageCache(store=analysis_store, result_store=result_store)
        warmed = serve(trace, warmed_cache)
        assert warmed.violations == ()
        # The acceptance gate: a fresh process's first serve is classification-
        # free and reports store hits.
        assert warmed.cache["classifications"] == 0, (
            "warmed serve must not classify anything"
        )
        store_hits = analysis_store.stats().hits
        result_store_hits = result_store.stats().hits
        assert store_hits > 0 and result_store_hits > 0
        assert warmed.by_status == cold.by_status, (
            "a warmed serve must be outcome-identical to the cold one"
        )

        # ---- in-session: the same cache serves the trace again ---------------
        disk_hits_before = result_store.stats().hits
        in_session = serve(trace, warmed_cache)
        assert in_session.by_status == cold.by_status
        session_stats = dict(in_session.cache)
        # Everything the second pass served from the result layer came from
        # memory: the store's hit counter did not move.
        assert result_store.stats().hits == disk_hits_before

    # ---- eviction overhead: tightly bounded vs unbounded ---------------------
    bounded_cache = LanguageCache(max_entries=BOUND)
    bounded = serve(trace, bounded_cache)
    assert bounded.by_status == cold.by_status, (
        "eviction must be a pure cost — outcomes are bound-independent"
    )
    assert bounded.cache["evictions"] > 0
    assert bounded.cache["entries"] <= 4 * BOUND

    overhead = (
        bounded.wall_seconds / cold.wall_seconds if cold.wall_seconds > 0 else 0.0
    )
    payload = {
        "smoke": smoke_mode(),
        "seed": SEED,
        "requests": cold.requests,
        "nodes": NODES,
        "warm_pass": {
            "classes": warm_report["classes"],
            "classifications": warm_report["classifications"],
            "analyses_written": warm_report["analyses_written"],
            "results_written": warm_report["results_written"],
        },
        "cold": phase_payload(cold, cold.cache),
        "warmed_store": {
            **phase_payload(warmed, warmed.cache),
            "analysis_store_hits": store_hits,
            "result_store_hits": result_store_hits,
        },
        "in_session": phase_payload(in_session, session_stats),
        "eviction": {
            "max_entries": BOUND,
            "evictions": bounded.cache["evictions"],
            "final_entries": bounded.cache["entries"],
            "overhead_ratio": round(overhead, 3),
            "by_status_identical": True,
        },
        "cpus": os.cpu_count(),
    }
    path = emit_bench_json("BENCH_cache.json", payload)
    print(
        f"\ncache tier: cold p50 {payload['cold']['p50_ms']:.0f}ms "
        f"(classified {payload['cold']['classifications']}), warmed-store p50 "
        f"{payload['warmed_store']['p50_ms']:.0f}ms (classified 0, "
        f"{store_hits} store hits), in-session hit rate "
        f"{payload['in_session']['hit_rate']:.2f}, eviction overhead "
        f"x{payload['eviction']['overhead_ratio']:.2f} -> {path.name}"
    )
