"""E-ASYNC: the async serving front-end (:mod:`repro.service.async_server`).

Exercises :class:`~repro.service.AsyncResilienceServer` end to end and emits
``BENCH_async.json`` (read back by humans and future regression guards):

* correctness in smoke mode: three concurrently submitted workloads on one
  front-end must each be outcome-identical (after re-sorting) to the serial
  reference, on a single shared warm pool (one fork, stable PIDs);
* **merged-stream p50 latency**: per-outcome submit-to-delivery latency of
  the merged concurrent stream, measured at the consumer (true p50, not the
  histogram bound) alongside the metrics surface's histogram estimate;
* **admission overhead**: one workload through ``submit`` + the asyncio
  bridge vs. the same workload through a direct ``serve_iter`` drain on the
  same server — the front-end's whole cost (admission queue, drain thread,
  ``call_soon_threadsafe`` hops, the consumer loop) must stay within 10% of
  the direct path on exact-heavy queries with realistic per-outcome work
  (asserted outside the CI smoke pass and only on multi-core machines — a
  single core cannot overlap the front-end's threads with serving work, and
  a loaded runner's timing must not turn CI red; the measured ratio is
  always reported and must stay within 1.5x everywhere).
"""

import asyncio
import os
import statistics
import time

from conftest import emit_bench_json, smoke_mode

from repro.graphdb import generators
from repro.service import (
    AsyncResilienceServer,
    LanguageCache,
    ResilienceServer,
    Workload,
    resilience_serve,
)

MIXED_QUERIES = ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a", "ab|ad|cd", "axb|byc"]
#: The overhead comparison runs exact-heavy queries (~1ms+ of real work per
#: outcome on the denser database below): the front-end's per-outcome cost is
#: a fixed few tens of µs, so measuring it against trivial sub-ms queries
#: would benchmark asyncio's consumer loop, not the admission machinery.
EXACT_HEAVY_QUERIES = ["aa", "ax*a", "axa", "aax|axa"]
CONCURRENT_WORKLOADS = 3


def database():
    return generators.random_labelled_graph(6, 18, "abcdexy", seed=9)


def exact_heavy_database():
    return generators.random_labelled_graph(9, 30, "axy", seed=9)


def mixed_workload(size):
    return Workload.coerce([MIXED_QUERIES[i % len(MIXED_QUERIES)] for i in range(size)])


def exact_heavy_workload(size):
    return Workload.coerce(
        [EXACT_HEAVY_QUERIES[i % len(EXACT_HEAVY_QUERIES)] for i in range(size)]
    )


def sorted_outcomes(outcomes):
    return sorted(outcomes, key=lambda outcome: outcome.index)


async def submit_and_time(server, workload):
    """Submit one workload; return (outcomes, per-outcome latencies seconds)."""
    started = time.perf_counter()
    iterator = await server.submit(workload)
    outcomes, latencies = [], []
    async for outcome in iterator:
        latencies.append(time.perf_counter() - started)
        outcomes.append(outcome)
    return outcomes, latencies


def test_concurrent_submissions_are_outcome_identical_on_one_pool():
    graph = database()
    workload = mixed_workload(24)
    reference = resilience_serve(workload, graph, parallel=False)
    with AsyncResilienceServer(ResilienceServer(graph, max_workers=2)) as server:

        async def scenario():
            iterators = [
                await server.submit(workload) for _ in range(CONCURRENT_WORKLOADS)
            ]

            async def collect(iterator):
                return [outcome async for outcome in iterator]

            return await asyncio.gather(*(collect(iterator) for iterator in iterators))

        results = asyncio.run(scenario())
        pids = server.worker_pids()
        assert server.server.pool_stats().pools_created == 1, "one shared pool"
    for outcomes in results:
        assert sorted_outcomes(outcomes) == reference
    assert pids, "the concurrent workloads must have run on a real pool"


def test_merged_stream_latency_and_admission_overhead():
    graph = exact_heavy_database()
    workload = exact_heavy_workload(32)
    rounds = 3 if smoke_mode() else 9

    # canonical=False keeps the result-level cache from short-circuiting the
    # repeat rounds: every round re-executes, so the two paths are compared on
    # real serving work rather than on cache replay.  parallel=False keeps
    # process-pool scheduling jitter out of *both* arms — the comparison
    # isolates the front-end (queue, drain thread, asyncio bridge), which is
    # identical machinery over either execution mode.
    server = ResilienceServer(graph, parallel=False, cache=LanguageCache(canonical=False))
    reference = resilience_serve(workload, graph, parallel=False, cache=LanguageCache(canonical=False))
    direct_seconds = []
    async_seconds = []
    merged_latencies = []
    try:
        list(server.serve_iter(workload))  # warm the database index + cache
        front_end = AsyncResilienceServer(server)

        # One event loop, arms interleaved round by round: machine-load drift
        # over the benchmark's lifetime hits both arms equally, and the
        # comparison measures the admission queue + drain thread +
        # call_soon_threadsafe bridge, not per-round loop construction.
        # The direct drain blocks the loop, which is fine: the front-end is
        # idle (nothing submitted) while it runs.
        async def all_rounds():
            await submit_and_time(front_end, workload)  # warm the drain thread
            for _ in range(rounds):
                started = time.perf_counter()
                direct = list(server.serve_iter(workload))
                direct_seconds.append(time.perf_counter() - started)
                assert sorted_outcomes(direct) == reference

                started = time.perf_counter()
                outcomes, _ = await submit_and_time(front_end, workload)
                async_seconds.append(time.perf_counter() - started)
                assert sorted_outcomes(outcomes) == reference
            for _ in range(max(1, rounds // 3)):
                results = await asyncio.gather(
                    *(
                        submit_and_time(front_end, workload)
                        for _ in range(CONCURRENT_WORKLOADS)
                    )
                )
                for outcomes, latencies in results:
                    assert sorted_outcomes(outcomes) == reference
                    merged_latencies.extend(latencies)

        asyncio.run(all_rounds())
        histogram_p50 = front_end.metrics().latency["ok"]
        front_end.close()  # also closes the wrapped server
    finally:
        server.close()

    # Paired-round minimum: each async round is compared to the direct round
    # interleaved right next to it, and the best pair wins — machine-load
    # drift and one-off scheduler spikes hit a pair together, so the minimum
    # ratio isolates the front-end's intrinsic overhead.
    direct_best = min(direct_seconds)
    async_best = min(async_seconds)
    pair_ratios = [
        async_s / max(direct_s, 1e-9)
        for direct_s, async_s in zip(direct_seconds, async_seconds)
    ]
    overhead = min(pair_ratios)  # intrinsic overhead: the cleanest pair
    overhead_median = statistics.median(pair_ratios)  # typical, incl. noise
    merged_p50 = statistics.median(merged_latencies)

    payload = {
        "smoke": smoke_mode(),
        "rounds": rounds,
        "workload_size": len(workload),
        "concurrent_workloads": CONCURRENT_WORKLOADS,
        "direct_serve_iter_ms": round(direct_best * 1e3, 3),
        "async_submit_ms": round(async_best * 1e3, 3),
        "admission_overhead": round(overhead, 4),
        "admission_overhead_median": round(overhead_median, 4),
        "merged_stream_p50_ms": round(merged_p50 * 1e3, 3),
        "cpus": os.cpu_count(),
    }
    path = emit_bench_json("BENCH_async.json", payload)
    print(
        f"\nasync serve: direct {direct_best * 1e3:.1f}ms, "
        f"submit {async_best * 1e3:.1f}ms (overhead x{overhead:.3f}), "
        f"merged p50 {merged_p50 * 1e3:.1f}ms -> {path.name}"
    )
    assert histogram_p50["count"] > 0, "the metrics surface must have seen the outcomes"
    # The 10% bar needs the drain/consumer threads to overlap with serving
    # work, which a single core cannot do — every front-end microsecond is
    # pure addition there.  Same hardware gate as the serve-speedup bar in
    # bench_resilience_serve.py: assert where the claim is testable, report
    # the measured ratio everywhere.
    strict = (os.cpu_count() or 1) >= 2 and not smoke_mode()
    if strict:
        assert overhead <= 1.10, (
            f"admission overhead x{overhead:.3f} exceeds the 10% budget "
            f"(direct {direct_best * 1e3:.1f}ms, async {async_best * 1e3:.1f}ms)"
        )
    assert overhead <= 1.5, (
        f"admission overhead x{overhead:.3f} is out of range even for a "
        f"loaded single-core runner"
    )
