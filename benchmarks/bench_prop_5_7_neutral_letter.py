"""E-P57: Proposition 5.7 -- the dichotomy for languages with a neutral letter."""

import pytest

from repro.classify import classify
from repro.languages import Language, neutral

CASES = [
    ("e*ae*be*|e*ae*", "PTIME"),          # IF(L) local
    ("e*be*ce*|e*de*fe*", "NP-hard"),      # IF(L) four-legged (L1 of Section 5.2)
    ("e*(a|c)e*(a|d)e*", "NP-hard"),       # aa in IF(L) (L2 of Section 5.2)
]


@pytest.mark.parametrize("expression, expected", CASES)
def test_dichotomy(expression, expected):
    language = Language.from_regex(expression)
    assert neutral.neutral_letters(language) == frozenset("e")
    assert classify(language).complexity == expected


def test_lemma_5_8_analysis_time(benchmark):
    language = Language.from_regex("e*be*ce*|e*de*fe*")
    analysis = benchmark(lambda: neutral.lemma_5_8_analysis(language))
    assert analysis.four_legged_witness is not None
