"""E-P42: Proposition 4.2 -- vertex cover numbers of odd subdivisions."""

import pytest

from repro.graphdb import generators
from repro.hardness import subdivide, vertex_cover_number
from repro.hardness.vertex_cover import subdivision_vertex_cover_number


@pytest.mark.parametrize("length", [3, 5, 7])
@pytest.mark.parametrize("seed", [0, 1])
def test_identity_on_random_graphs(length, seed):
    edges = generators.random_undirected_graph(6, 0.4, seed=seed)
    if not edges:
        pytest.skip("empty graph")
    assert vertex_cover_number(subdivide(edges, length)) == subdivision_vertex_cover_number(edges, length)


def test_vertex_cover_solver_speed(benchmark):
    edges = generators.random_undirected_graph(12, 0.3, seed=5)
    value = benchmark(lambda: vertex_cover_number(edges))
    assert value >= 0
