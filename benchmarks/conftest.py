"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a figure, a theorem's
algorithm, or a hardness reduction) and asserts the qualitative "shape" the
paper reports: agreement with the exact baseline, odd-path gadget verification,
or the vertex-cover identity.  Wall-clock numbers are collected by
pytest-benchmark for the scaling experiments.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.graphdb import generators
from repro.languages import Language

#: Where benchmark JSON artefacts (``BENCH_*.json``) land: the repo root by
#: default, or ``$REPRO_BENCH_DIR``.  CI's regression guard reads them back.
BENCH_OUTPUT_DIR = Path(os.environ.get("REPRO_BENCH_DIR", Path(__file__).resolve().parent.parent))


def smoke_mode() -> bool:
    """Whether this run is the CI smoke pass (``$REPRO_BENCH_SMOKE``).

    Smoke runs keep iteration counts minimal and must not let wall-clock
    assertions turn CI red on a loaded runner.
    """
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write a benchmark artefact (sorted keys, stable layout) and return its path."""
    path = BENCH_OUTPUT_DIR / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def language_cache():
    cache: dict[str, Language] = {}

    def get(expression: str) -> Language:
        if expression not in cache:
            cache[expression] = Language.from_regex(expression)
        return cache[expression]

    return get


def random_database_for(language: Language, num_nodes: int, num_edges: int, seed: int):
    alphabet = "".join(sorted(language.alphabet))
    return generators.random_labelled_graph(num_nodes, num_edges, alphabet, seed=seed)
