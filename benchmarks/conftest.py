"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a figure, a theorem's
algorithm, or a hardness reduction) and asserts the qualitative "shape" the
paper reports: agreement with the exact baseline, odd-path gadget verification,
or the vertex-cover identity.  Wall-clock numbers are collected by
pytest-benchmark for the scaling experiments.
"""

from __future__ import annotations

import pytest

from repro.graphdb import generators
from repro.languages import Language


@pytest.fixture(scope="session")
def language_cache():
    cache: dict[str, Language] = {}

    def get(expression: str) -> Language:
        if expression not in cache:
            cache[expression] = Language.from_regex(expression)
        return cache[expression]

    return get


def random_database_for(language: Language, num_nodes: int, num_edges: int, seed: int):
    alphabet = "".join(sorted(language.alphabet))
    return generators.random_labelled_graph(num_nodes, num_edges, alphabet, seed=seed)
