"""E-P76: Proposition 7.6 -- resilience of bipartite chain languages via MinCut.

Shape checks: exact agreement with the baseline on small instances, and
polynomial scaling with |D| (the paper's bound is quadratic in |D|).
"""

import pytest

from repro.graphdb import generators
from repro.languages import Language
from repro.resilience import resilience_bcl, resilience_exact

LANGUAGES = ["ab|bc", "axb|byc", "axyb|bztc|cd|dea"]


@pytest.mark.parametrize("expression", LANGUAGES)
def test_agreement_with_exact_baseline(expression):
    language = Language.from_regex(expression)
    alphabet = "".join(sorted(language.alphabet))
    for seed in range(4):
        database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
        assert resilience_bcl(language, database).value == resilience_exact(language, database).value


@pytest.mark.parametrize("num_edges", [50, 100, 200])
def test_scaling_in_database_size(benchmark, num_edges):
    language = Language.from_regex("ab|bc")
    database = generators.random_labelled_graph(num_edges // 3, num_edges, "abc", seed=13)
    result = benchmark(lambda: resilience_bcl(language, database))
    assert result.value >= 0


def test_bag_semantics(benchmark):
    language = Language.from_regex("axyb|bztc|cd|dea")
    bag = generators.random_bag_database(20, 80, "abcdextyz", seed=3, max_multiplicity=9)
    result = benchmark(lambda: resilience_bcl(language, bag))
    assert result.semantics == "bag"
