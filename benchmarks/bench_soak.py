"""E-SOAK: the chaos soak trajectory (:mod:`repro.traffic`).

Drives a seeded zipf/bursty traffic trace through the full front-end →
exchange → node stack over a 2-node fleet while the chaos schedule kills a
node mid-round, injects a poison workload (worker-killing unpickler) and
bursts the admission queue — then emits ``BENCH_soak.json`` (read back by
``tools/bench_smoke.py`` and the CI artefact guard):

* correctness: the run must complete with **zero invariant violations**
  (exactly one outcome per admitted query, no cross-workload leakage,
  structured rejections only, full parity with the uncached serial reference
  for every traffic request, recovery within bound, ``in_flight`` drained to
  zero) and a clean leak-tracker report;
* replayability: a second run from the same seed must reproduce the same
  per-status outcome counts;
* the trajectory: p50/p99 submit-to-delivery latency per outcome status,
  admission rejects, deadline expiries, kill recovery time in rounds, and
  end-to-end throughput.

A second trajectory replays the same trace *paced* (``pace > 0`` restores a
scaled fraction of the trace's open-loop inter-arrival gaps) over a real
HTTP fleet under network chaos — refused-connection window, mid-stream
disconnect, stalled stream, corrupt payload, plus a node kill — and lands
under the ``"http"`` key of the same artefact with the same gates.
"""

import json
import os
import sys
from pathlib import Path

from conftest import BENCH_OUTPUT_DIR, emit_bench_json, smoke_mode

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from faults import ChaosHttpNodeLauncher, poison_workload  # noqa: E402
from leak_sanitizer import LeakTracker  # noqa: E402

from repro.service import HttpExchange, NodeManager, RetryPolicy  # noqa: E402
from repro.traffic import (  # noqa: E402
    ChaosEvent,
    ChaosSchedule,
    DatabaseSpec,
    SoakRunner,
    TrafficProfile,
    generate_traffic,
)

SEED = 20_250_808
NODES = 2
REQUESTS_PER_ROUND = 4

#: Open-loop pacing factor for the HTTP replay (fraction of the trace's
#: generated inter-arrival gaps restored as real sleeps).
HTTP_PACE = 0.02


def profile():
    return TrafficProfile(
        seed=SEED,
        requests=16 if smoke_mode() else 48,
        databases=(
            DatabaseSpec(num_nodes=6, num_edges=16, alphabet="abxy"),
            DatabaseSpec(num_nodes=5, num_edges=12, alphabet="abx", bag_copies=2),
        ),
    )


def chaos():
    # Payloads: >= 2 queries (single-query workloads never cross a pickle
    # boundary) and inequivalent to every catalogue query (equivalence-keyed
    # node caches would substitute an already-cached clean plan).
    return ChaosSchedule(
        (
            ChaosEvent(
                round=0, kind="poison", workload=poison_workload(["xxayy", "yybxx"])
            ),
            ChaosEvent(round=1, kind="kill", after_outcomes=2),
            ChaosEvent(round=2, kind="burst", count=4),
        )
    )


def soak(leak_tracker=None):
    runner = SoakRunner(
        generate_traffic(profile()),
        nodes=NODES,
        max_workers=2,
        chaos=chaos(),
        requests_per_round=REQUESTS_PER_ROUND,
        leak_tracker=leak_tracker,
    )
    return runner.run()


def test_chaos_soak_trajectory():
    report = soak(leak_tracker=LeakTracker())
    # Hard gates: the soak IS the assertion — SoakRunner raises on any
    # invariant violation, so reaching here means the run was clean.
    assert report.violations == () and report.leaks == ()
    assert report.chaos["kills"] == 1 and report.chaos["poison_workloads"] == 1
    assert report.recovery["max_rounds"] <= report.recovery["bound"]
    assert report.parity_checked == report.requests, (
        "every traffic request must hold parity with the serial reference"
    )
    assert report.admission["final_in_flight"] == 0
    assert report.throughput_rps > 0

    replay = soak()
    assert replay.by_status == report.by_status, (
        "a soak must be replayable from its seed"
    )

    payload = _existing_payload()
    payload.update({
        "smoke": smoke_mode(),
        "seed": SEED,
        "requests": report.requests,
        "rounds": report.rounds,
        "nodes": NODES,
        "outcomes": report.outcomes,
        "by_status": report.by_status,
        "latency_ms": report.latency,
        "admission_rejects": report.admission["rejected"],
        "deadline_expired": report.admission["deadline_expired"],
        "kills": report.chaos["kills"],
        "recovery_rounds_max": report.recovery["max_rounds"],
        "recovery_rounds_bound": report.recovery["bound"],
        "throughput_rps": report.throughput_rps,
        "wall_seconds": report.wall_seconds,
        "parity_checked": report.parity_checked,
        "violations": len(report.violations),
        "leaks": len(report.leaks),
        "replay_by_status_identical": True,
        "cpus": os.cpu_count(),
    })
    path = emit_bench_json("BENCH_soak.json", payload)
    ok_latency = report.latency.get("ok", {})
    print(
        f"\nsoak: {report.requests} requests / {report.rounds} rounds, "
        f"{report.throughput_rps:.0f} outcomes/s, ok p50 "
        f"{ok_latency.get('p50', 0):.0f}ms p99 {ok_latency.get('p99', 0):.0f}ms, "
        f"recovery {report.recovery['max_rounds']} round(s) -> {path.name}"
    )


def _existing_payload() -> dict:
    """The artefact as emitted so far (the two trajectories share one file)."""
    path = BENCH_OUTPUT_DIR / "BENCH_soak.json"
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {}


def http_chaos():
    # One of each network fault kind plus a mid-stream kill: a refused
    # window (absorbed by same-node retry), a mid-stream disconnect and a
    # kill in the same round (failover), then a stalled stream (timeout ->
    # redispatch) and a corrupt payload (protocol error -> failover).
    return ChaosSchedule(
        (
            ChaosEvent(round=0, kind="refused", count=2),
            ChaosEvent(round=1, kind="disconnect", after_outcomes=1),
            ChaosEvent(round=1, kind="kill", after_outcomes=2),
            ChaosEvent(round=2, kind="stall"),
            ChaosEvent(round=2, kind="corrupt", after_outcomes=0),
        )
    )


def http_soak(leak_tracker=None):
    launcher = ChaosHttpNodeLauncher(
        max_workers=2,
        request_timeout=10.0,
        retry=RetryPolicy(attempts=3, base_delay=0.0),
    )
    runner = SoakRunner(
        generate_traffic(profile()),
        exchange=HttpExchange(nodes=NODES, manager=NodeManager(launcher)),
        chaos=http_chaos(),
        requests_per_round=REQUESTS_PER_ROUND,
        pace=HTTP_PACE,
        leak_tracker=leak_tracker,
    )
    return runner.run()


def test_http_paced_chaos_soak_trajectory():
    report = http_soak(leak_tracker=LeakTracker())
    assert report.violations == () and report.leaks == ()
    assert report.chaos["network_faults"] == 4 and report.chaos["kills"] == 1
    assert report.parity_checked == report.requests, (
        "network chaos must not cost parity with the serial reference"
    )
    assert report.recovery["max_rounds"] <= report.recovery["bound"]
    assert report.admission["final_in_flight"] == 0
    assert report.throughput_rps > 0

    replay = http_soak()
    assert replay.by_status == report.by_status, (
        "an HTTP soak must be replayable from its seed"
    )

    payload = _existing_payload()
    payload["http"] = {
        "pace": HTTP_PACE,
        "requests": report.requests,
        "rounds": report.rounds,
        "nodes": NODES,
        "outcomes": report.outcomes,
        "by_status": report.by_status,
        "latency_ms": report.latency,
        "network_faults": report.chaos["network_faults"],
        "degraded_serves": report.chaos["degraded_serves"],
        "kills": report.chaos["kills"],
        "recovery_rounds_max": report.recovery["max_rounds"],
        "recovery_rounds_bound": report.recovery["bound"],
        "throughput_rps": report.throughput_rps,
        "wall_seconds": report.wall_seconds,
        "parity_checked": report.parity_checked,
        "violations": len(report.violations),
        "leaks": len(report.leaks),
        "replay_by_status_identical": True,
    }
    path = emit_bench_json("BENCH_soak.json", payload)
    ok_latency = report.latency.get("ok", {})
    print(
        f"\nhttp soak: {report.requests} requests / {report.rounds} rounds "
        f"(pace {HTTP_PACE}), {report.throughput_rps:.0f} outcomes/s, ok p50 "
        f"{ok_latency.get('p50', 0):.0f}ms p99 {ok_latency.get('p99', 0):.0f}ms, "
        f"{report.chaos['network_faults']} network faults, "
        f"recovery {report.recovery['max_rounds']} round(s) -> {path.name}"
    )
