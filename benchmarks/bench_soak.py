"""E-SOAK: the chaos soak trajectory (:mod:`repro.traffic`).

Drives a seeded zipf/bursty traffic trace through the full front-end →
exchange → node stack over a 2-node fleet while the chaos schedule kills a
node mid-round, injects a poison workload (worker-killing unpickler) and
bursts the admission queue — then emits ``BENCH_soak.json`` (read back by
``tools/bench_smoke.py`` and the CI artefact guard):

* correctness: the run must complete with **zero invariant violations**
  (exactly one outcome per admitted query, no cross-workload leakage,
  structured rejections only, full parity with the uncached serial reference
  for every traffic request, recovery within bound, ``in_flight`` drained to
  zero) and a clean leak-tracker report;
* replayability: a second run from the same seed must reproduce the same
  per-status outcome counts;
* the trajectory: p50/p99 submit-to-delivery latency per outcome status,
  admission rejects, deadline expiries, kill recovery time in rounds, and
  end-to-end throughput.
"""

import os
import sys
from pathlib import Path

from conftest import emit_bench_json, smoke_mode

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from faults import poison_workload  # noqa: E402
from leak_sanitizer import LeakTracker  # noqa: E402

from repro.traffic import (  # noqa: E402
    ChaosEvent,
    ChaosSchedule,
    DatabaseSpec,
    SoakRunner,
    TrafficProfile,
    generate_traffic,
)

SEED = 20_250_808
NODES = 2
REQUESTS_PER_ROUND = 4


def profile():
    return TrafficProfile(
        seed=SEED,
        requests=16 if smoke_mode() else 48,
        databases=(
            DatabaseSpec(num_nodes=6, num_edges=16, alphabet="abxy"),
            DatabaseSpec(num_nodes=5, num_edges=12, alphabet="abx", bag_copies=2),
        ),
    )


def chaos():
    # Payloads: >= 2 queries (single-query workloads never cross a pickle
    # boundary) and inequivalent to every catalogue query (equivalence-keyed
    # node caches would substitute an already-cached clean plan).
    return ChaosSchedule(
        (
            ChaosEvent(
                round=0, kind="poison", workload=poison_workload(["xxayy", "yybxx"])
            ),
            ChaosEvent(round=1, kind="kill", after_outcomes=2),
            ChaosEvent(round=2, kind="burst", count=4),
        )
    )


def soak(leak_tracker=None):
    runner = SoakRunner(
        generate_traffic(profile()),
        nodes=NODES,
        max_workers=2,
        chaos=chaos(),
        requests_per_round=REQUESTS_PER_ROUND,
        leak_tracker=leak_tracker,
    )
    return runner.run()


def test_chaos_soak_trajectory():
    report = soak(leak_tracker=LeakTracker())
    # Hard gates: the soak IS the assertion — SoakRunner raises on any
    # invariant violation, so reaching here means the run was clean.
    assert report.violations == () and report.leaks == ()
    assert report.chaos["kills"] == 1 and report.chaos["poison_workloads"] == 1
    assert report.recovery["max_rounds"] <= report.recovery["bound"]
    assert report.parity_checked == report.requests, (
        "every traffic request must hold parity with the serial reference"
    )
    assert report.admission["final_in_flight"] == 0
    assert report.throughput_rps > 0

    replay = soak()
    assert replay.by_status == report.by_status, (
        "a soak must be replayable from its seed"
    )

    payload = {
        "smoke": smoke_mode(),
        "seed": SEED,
        "requests": report.requests,
        "rounds": report.rounds,
        "nodes": NODES,
        "outcomes": report.outcomes,
        "by_status": report.by_status,
        "latency_ms": report.latency,
        "admission_rejects": report.admission["rejected"],
        "deadline_expired": report.admission["deadline_expired"],
        "kills": report.chaos["kills"],
        "recovery_rounds_max": report.recovery["max_rounds"],
        "recovery_rounds_bound": report.recovery["bound"],
        "throughput_rps": report.throughput_rps,
        "wall_seconds": report.wall_seconds,
        "parity_checked": report.parity_checked,
        "violations": len(report.violations),
        "leaks": len(report.leaks),
        "replay_by_status_identical": True,
        "cpus": os.cpu_count(),
    }
    path = emit_bench_json("BENCH_soak.json", payload)
    ok_latency = report.latency.get("ok", {})
    print(
        f"\nsoak: {report.requests} requests / {report.rounds} rounds, "
        f"{report.throughput_rps:.0f} outcomes/s, ok p50 "
        f"{ok_latency.get('p50', 0):.0f}ms p99 {ok_latency.get('p99', 0):.0f}ms, "
        f"recovery {report.recovery['max_rounds']} round(s) -> {path.name}"
    )
