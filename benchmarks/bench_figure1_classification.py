"""E-FIG1: regenerate the Figure 1 classification of the paper's example languages."""

from repro.classify import classify, figure_1_table
from repro.languages.examples import FIGURE_1_LANGUAGES


def test_figure_1_table_matches_paper(benchmark):
    rows = benchmark(figure_1_table)
    assert len(rows) == 22
    disagreements = [row for row in rows if not row["agrees"]]
    assert not disagreements, disagreements
    # Print the regenerated figure for the benchmark report.
    print()
    print(f"{'language':<16} {'paper':<13} {'computed':<13} region")
    for row in rows:
        print(
            f"{row['language']:<16} {row['paper_complexity']:<13} "
            f"{row['computed_complexity']:<13} {row['computed_region']}"
        )


def test_classification_breakdown_by_region():
    counts: dict[str, int] = {}
    for example in FIGURE_1_LANGUAGES:
        result = classify(example.language())
        counts[result.complexity] = counts.get(result.complexity, 0) + 1
    # Figure 1 shape: 9 tractable, 9 hard, 4 unclassified example languages.
    assert counts == {"PTIME": 9, "NP-hard": 9, "unclassified": 4}
