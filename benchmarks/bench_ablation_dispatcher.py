"""E-ABL: ablation -- dispatcher flow algorithms vs the exact baseline.

The paper's thesis is that flow reductions suffice for every known tractable
case; this ablation measures how much the dedicated algorithms gain over the
exact baseline as instances grow, and checks they never disagree.
"""

import pytest

from repro.graphdb import generators
from repro.languages import Language
from repro.resilience import choose_method, resilience, resilience_exact

SUITE = {
    "ax*b": "local-flow",
    "ab|bc": "bcl-flow",
    "abc|be": "one-dangling-flow",
}


@pytest.mark.parametrize("expression", sorted(SUITE))
def test_dispatcher_choice(expression):
    assert choose_method(Language.from_regex(expression)) == SUITE[expression]


@pytest.mark.parametrize("expression", sorted(SUITE))
def test_flow_vs_exact_agreement(expression):
    language = Language.from_regex(expression)
    alphabet = "".join(sorted(language.alphabet))
    for seed in range(3):
        database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
        assert resilience(language, database).value == resilience_exact(language, database).value


@pytest.mark.parametrize("expression", sorted(SUITE))
def test_flow_algorithm_speed_on_medium_instances(benchmark, expression):
    language = Language.from_regex(expression)
    alphabet = "".join(sorted(language.alphabet))
    database = generators.random_labelled_graph(40, 150, alphabet, seed=23)
    result = benchmark(lambda: resilience(language, database))
    assert result.method == SUITE[expression]


def test_exact_baseline_speed_on_small_instance(benchmark):
    # Included for comparison: the exact baseline on a deliberately small
    # instance (it is exponential in general, which is the point of the paper).
    language = Language.from_regex("ax*b")
    database = generators.random_labelled_graph(6, 12, "axb", seed=23)
    result = benchmark(lambda: resilience_exact(language, database))
    assert result.value >= 0
