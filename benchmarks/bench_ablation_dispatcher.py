"""E-ABL: ablation -- dispatcher flow algorithms vs the exact baseline.

The paper's thesis is that flow reductions suffice for every known tractable
case; this ablation measures how much the dedicated algorithms gain over the
exact baseline as instances grow, and checks they never disagree.  It also
ablates the exact baseline itself: the compiled/overlay search vs the seed's
materializing implementation (``resilience_exact_reference``), which must
explore exactly the same branch-and-bound tree.
"""

import pytest

from repro.graphdb import generators
from repro.languages import Language
from repro.resilience import (
    choose_method,
    resilience,
    resilience_exact,
    resilience_exact_reference,
)

SUITE = {
    "ax*b": "local-flow",
    "ab|bc": "bcl-flow",
    "abc|be": "one-dangling-flow",
}


@pytest.mark.parametrize("expression", sorted(SUITE))
def test_dispatcher_choice(expression):
    assert choose_method(Language.from_regex(expression)) == SUITE[expression]


@pytest.mark.parametrize("expression", sorted(SUITE))
def test_flow_vs_exact_agreement(expression):
    language = Language.from_regex(expression)
    alphabet = "".join(sorted(language.alphabet))
    for seed in range(3):
        database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
        assert resilience(language, database).value == resilience_exact(language, database).value


@pytest.mark.parametrize("expression", sorted(SUITE))
def test_flow_algorithm_speed_on_medium_instances(benchmark, expression):
    language = Language.from_regex(expression)
    alphabet = "".join(sorted(language.alphabet))
    database = generators.random_labelled_graph(40, 150, alphabet, seed=23)
    result = benchmark(lambda: resilience(language, database))
    assert result.method == SUITE[expression]


def test_exact_baseline_speed_on_small_instance(benchmark):
    # Included for comparison: the exact baseline on a deliberately small
    # instance (it is exponential in general, which is the point of the paper).
    language = Language.from_regex("ax*b")
    database = generators.random_labelled_graph(6, 12, "axb", seed=23)
    result = benchmark(lambda: resilience_exact(language, database))
    assert result.value >= 0


EXACT_WORKLOAD = [("aa", "a", 8, 20, 3), ("ab|ba", "ab", 7, 16, 5)]


@pytest.mark.parametrize("expression, alphabet, nodes, edges, seed", EXACT_WORKLOAD)
def test_exact_overlay_speed(benchmark, expression, alphabet, nodes, edges, seed):
    language = Language.from_regex(expression)
    database = generators.random_labelled_graph(nodes, edges, alphabet, seed=seed)
    result = benchmark(lambda: resilience_exact(language, database))
    assert result.value >= 0


@pytest.mark.parametrize("expression, alphabet, nodes, edges, seed", EXACT_WORKLOAD)
def test_exact_reference_speed(benchmark, expression, alphabet, nodes, edges, seed):
    language = Language.from_regex(expression)
    database = generators.random_labelled_graph(nodes, edges, alphabet, seed=seed)
    result = benchmark(lambda: resilience_exact_reference(language, database))
    assert result.value >= 0


@pytest.mark.parametrize("expression, alphabet, nodes, edges, seed", EXACT_WORKLOAD)
def test_exact_overlay_matches_reference_tree(expression, alphabet, nodes, edges, seed):
    # The overlay search must be a pure performance change: identical values,
    # identical contingency sets, identical branch-and-bound node counts.
    language = Language.from_regex(expression)
    database = generators.random_labelled_graph(nodes, edges, alphabet, seed=seed)
    fast = resilience_exact(language, database)
    reference = resilience_exact_reference(language, database)
    assert fast.value == reference.value
    assert fast.contingency_set == reference.contingency_set
    assert fast.details["nodes_explored"] == reference.details["nodes_explored"]
