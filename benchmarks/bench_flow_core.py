"""Flow-core benchmark: array-native compiled graphs vs the object layer.

Measures, on the standard layered-flow matrix, the two halves of the
flow-tractable hot path:

* **network build**: ``build_product_network`` (object layer: tuple nodes,
  ``FlowEdge`` dataclasses) vs ``compile_product_graph`` (CSR arrays over the
  cached per-database substrate);
* **min-cut**: the retained reference ``min_cut`` vs the array Dinic
  ``min_cut_compiled`` — the PR's acceptance bar: **≥ 3x** on this matrix;
* **serve p50**: per-query latency of a flow-heavy workload through a warm
  serial :class:`~repro.service.server.ResilienceServer`, fast solver vs the
  reference solver forced via ``REPRO_FLOW_SOLVER``.

Every run (smoke included) emits ``BENCH_flow.json`` with the before/after
numbers; ``tools/ci.sh`` reads it back as a regression guard.  The ≥ 3x
assertion only fires outside smoke mode — wall-clock bars must not turn a
loaded CI runner red — but the smoke guard in CI still requires the fast
solver to beat the reference.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from conftest import emit_bench_json, smoke_mode
from repro.flow import compile_product_graph, min_cut, min_cut_compiled
from repro.graphdb import generators
from repro.languages import Language, read_once
from repro.resilience.local_flow import build_product_network
from repro.service import LanguageCache, ResilienceServer

#: The standard matrix: (layers, width) of the layered-flow database family.
MATRIX = ((4, 4), (6, 6), (8, 8), (10, 12))

QUERY = "ax*b"

#: Queries of the flow-heavy serve workload (all flow-tractable classes).
SERVE_QUERIES = ("ax*b", "ax*b|ax*c", "ab|bc", "abe|be")


def _best(callable_, repeats: int, rounds: int) -> float:
    """Best-of-``rounds`` mean over ``repeats`` calls (noise-resistant)."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            callable_()
        samples.append((time.perf_counter() - start) / repeats)
    return min(samples)


def _measure_matrix() -> dict:
    smoke = smoke_mode()
    repeats = 2 if smoke else 15
    rounds = 1 if smoke else 4
    language = Language.from_regex(QUERY)
    automaton = read_once.read_once_automaton(language)
    rows = []
    for layers, width in MATRIX:
        bag = generators.layered_flow_database(layers, width, seed=3)
        index = bag.index()
        graph = compile_product_graph(automaton, index)
        network = build_product_network(automaton, bag)

        # Both paths must solve the same problem before being timed.
        fast_cut = min_cut_compiled(graph)
        reference_cut = min_cut(network)
        assert fast_cut.value == reference_cut.value
        assert frozenset(fast_cut.cut_keys) == frozenset(
            edge.key for edge in reference_cut.cut_edges if edge.key is not None
        )

        def compile_cold():
            # Clear the per-automaton compiled-graph cache so the timing is a
            # cold per-query compile over the (warm, shared) substrate.
            index.substrates["product"]._graphs.clear()
            return compile_product_graph(automaton, index)

        rows.append(
            {
                "matrix": f"{layers}x{width}",
                "graph_nodes": graph.num_nodes,
                "graph_edges": graph.num_edges,
                "build_us": {
                    "reference": _best(lambda: build_product_network(automaton, bag), repeats, rounds) * 1e6,
                    "fast": _best(compile_cold, repeats, rounds) * 1e6,
                },
                "min_cut_us": {
                    "reference": _best(lambda: min_cut(network), repeats, rounds) * 1e6,
                    "fast": _best(lambda: min_cut_compiled(graph), repeats, rounds) * 1e6,
                },
            }
        )
    return {"rows": rows, "smoke": smoke}


def _serve_p50(solver: str) -> float:
    """p50 per-query serve latency (µs) on a warm serial server."""
    smoke = smoke_mode()
    passes = 2 if smoke else 8
    database = generators.layered_flow_database(6, 6, seed=3)
    previous = os.environ.get("REPRO_FLOW_SOLVER")
    os.environ["REPRO_FLOW_SOLVER"] = solver
    try:
        samples: list[float] = []
        # A string-keyed cache keeps the result-level layer out of the
        # measurement: every pass must genuinely run the flow reductions.
        with ResilienceServer(
            database, parallel=False, cache=LanguageCache(canonical=False)
        ) as server:
            server.serve(SERVE_QUERIES)  # warm-up: indexes, substrates, plans
            for _ in range(passes):
                for query in SERVE_QUERIES:
                    start = time.perf_counter()
                    outcomes = server.serve([query])
                    samples.append(time.perf_counter() - start)
                    assert outcomes[0].ok, outcomes[0]
        return statistics.median(samples) * 1e6
    finally:
        if previous is None:
            os.environ.pop("REPRO_FLOW_SOLVER", None)
        else:
            os.environ["REPRO_FLOW_SOLVER"] = previous


def test_flow_core_speedup_and_emit_json():
    payload = _measure_matrix()
    payload["serve_p50_us"] = {
        "reference": _serve_p50("reference"),
        "fast": _serve_p50("fast"),
    }

    def geomean(values):
        product = 1.0
        for value in values:
            product *= value
        return product ** (1 / len(values))

    payload["min_cut_speedup"] = geomean(
        [row["min_cut_us"]["reference"] / row["min_cut_us"]["fast"] for row in payload["rows"]]
    )
    payload["build_speedup"] = geomean(
        [row["build_us"]["reference"] / row["build_us"]["fast"] for row in payload["rows"]]
    )
    payload["serve_p50_speedup"] = (
        payload["serve_p50_us"]["reference"] / payload["serve_p50_us"]["fast"]
    )
    path = emit_bench_json("BENCH_flow.json", payload)
    assert path.exists()

    if not smoke_mode():
        # The PR's acceptance bar: ≥ 3x on product-network min-cut.
        assert payload["min_cut_speedup"] >= 3.0, payload
        assert payload["build_speedup"] >= 1.0, payload
        assert payload["serve_p50_speedup"] >= 1.0, payload


def test_warm_class_end_to_end_beats_reference_path():
    """A warm query class (substrate + compiled graph cached) must beat the
    full object path by a wide margin — this is the serving steady state."""
    language = Language.from_regex(QUERY)
    automaton = read_once.read_once_automaton(language)
    bag = generators.layered_flow_database(8, 8, seed=3)
    index = bag.index()
    compile_product_graph(automaton, index)  # warm the compiled-graph cache
    repeats = 2 if smoke_mode() else 20

    warm = _best(
        lambda: min_cut_compiled(compile_product_graph(automaton, index)), repeats, 3
    )
    reference = _best(
        lambda: min_cut(build_product_network(automaton, bag)), repeats, 3
    )
    assert min_cut_compiled(compile_product_graph(automaton, index)).value == min_cut(
        build_product_network(automaton, bag)
    ).value
    if not smoke_mode():
        assert reference / warm >= 3.0, (reference, warm)


def test_fast_mincut_benchmark(benchmark):
    """pytest-benchmark visibility for interactive runs (disabled in smoke)."""
    language = Language.from_regex(QUERY)
    automaton = read_once.read_once_automaton(language)
    bag = generators.layered_flow_database(8, 8, seed=3)
    graph = compile_product_graph(automaton, bag.index())
    value = benchmark(lambda: min_cut_compiled(graph).value)
    assert value > 0


@pytest.mark.parametrize("seed", range(3))
def test_compiled_path_matches_reference_on_random_graphs(seed):
    """Guard the benchmark's own premise: identical answers on random inputs."""
    language = Language.from_regex(QUERY)
    automaton = read_once.read_once_automaton(language)
    bag = generators.random_bag_database(6, 14, "axb", seed=seed, max_multiplicity=5)
    compiled = min_cut_compiled(compile_product_graph(automaton, bag.index()))
    reference = min_cut(build_product_network(automaton, bag))
    assert compiled.value == reference.value
