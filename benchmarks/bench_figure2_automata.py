"""E-FIG2: the automata of Figure 2 (local DFAs and RO-epsilon-NFA)."""

from repro.languages import Language, read_once
from repro.languages.local import local_overapproximation


def test_figure_2a_local_dfa(benchmark):
    language = Language.from_regex("ax*b")
    dfa = benchmark(lambda: local_overapproximation(language))
    assert dfa.is_local_dfa()
    assert Language.from_automaton(dfa).equivalent_to(language)


def test_figure_2b_local_dfa():
    language = Language.from_regex("ab|ad|cd")
    dfa = local_overapproximation(language)
    assert dfa.is_local_dfa()
    assert Language.from_automaton(dfa).equivalent_to(language)


def test_figure_2c_read_once_automaton(benchmark):
    language = Language.from_regex("ab|ad|cd")
    automaton = benchmark(lambda: read_once.read_once_automaton(language))
    assert automaton.is_read_once()
    assert automaton.epsilon_transitions  # Lemma A.1: epsilon transitions are needed
    assert Language.from_automaton(automaton).equivalent_to(language)
