"""E-FIG13 / E-P74: Figure 13 and Proposition 7.4 -- the non-bipartite chain language ab|bc|ca."""

from repro.graphdb import generators
from repro.hardness import build_reduction, check_reduction, verify_gadget
from repro.hardness.library import gadget_for_ab_bc_ca
from repro.languages import Language


def test_figure_13_gadget_verifies(benchmark):
    verification = benchmark(
        lambda: verify_gadget(Language.from_regex("ab|bc|ca"), gadget_for_ab_bc_ca())
    )
    assert verification.valid
    assert verification.path_length == 7


def test_reduction_identity():
    instance = build_reduction(
        Language.from_regex("ab|bc|ca"), gadget_for_ab_bc_ca(), [(0, 1), (1, 2)]
    )
    assert check_reduction(instance)


def test_language_is_chain_but_not_bipartite():
    language = Language.from_regex("ab|bc|ca")
    assert language.is_chain_language()
    assert not language.is_bipartite_chain_language()
