"""E-FIG7-12 / E-T61: Theorem 6.1 -- finite languages with repeated letters.

One language per leaf of the proof's case analysis is run through the
constructive driver; every returned gadget is machine-verified and two
reductions are validated numerically.  The Figure 12 leaf (words a x eta y a
and y a x with x, y != a) is a known reconstruction gap of this reproduction
and is asserted to fail *explicitly* rather than silently.
"""

import pytest

from repro.exceptions import GadgetNotAvailableError
from repro.hardness import build_reduction, check_reduction, repeated_letter_hardness_gadget
from repro.languages import Language

CASES = {
    "aa": "Proposition 4.1 (Figure 3b)",
    "aaa": "Claim 6.11 (Figure 10)",
    "aab": "Claim 6.14 (Figure 11)",
    "aba": "Lemma 6.6 (Figure 7)",
    "abca": "Lemma 6.6 (Figure 7)",
    "abcad": "Lemma 6.6 (Figure 8)",
    "aabc": "Lemma 6.6 (Figure 8)",
    "baa": "mirrored",
    "aaaa": "case 2",          # four-legged via Claim 6.9
    "abab": "Claim 6.5",        # beta and delta non-empty -> four-legged
    "aba|bab": "Claim 6.10 (Figure 9)",
}


@pytest.mark.parametrize("expression", sorted(CASES))
def test_certificates_for_every_proof_leaf(expression):
    language = Language.from_regex(expression)
    certificate = repeated_letter_hardness_gadget(language)
    assert certificate.verification.valid
    assert certificate.path_length % 2 == 1


@pytest.mark.parametrize("expression", ["aa", "aba"])
def test_reduction_identity(expression):
    language = Language.from_regex(expression)
    certificate = repeated_letter_hardness_gadget(language)
    instance = build_reduction(
        certificate.gadget_language,
        certificate.gadget,
        [(0, 1), (1, 2)],
        verification=certificate.verification,
    )
    assert check_reduction(instance)


def test_known_gap_figure_12():
    # abca|cab reaches the Claim 6.13 / Figure 12 leaf; this reproduction could
    # not verify a generic gadget for it (see DESIGN.md), so the driver must
    # refuse rather than hand out an unverified certificate.  The language is
    # still correctly classified as NP-hard by Theorem 6.1's statement.
    from repro.classify import classify

    with pytest.raises(GadgetNotAvailableError):
        repeated_letter_hardness_gadget(Language.from_regex("abca|cab"))
    assert classify(Language.from_regex("abca|cab")).complexity == "NP-hard"


def test_driver_time(benchmark):
    certificate = benchmark(lambda: repeated_letter_hardness_gadget(Language.from_regex("abcad")))
    assert certificate.verification.valid
