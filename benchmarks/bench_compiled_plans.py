"""E-PLAN: compiled query plans, cached database indexes, batched serving.

Measures the three layers introduced by the compiled-plan subsystem:

* plan-based RPQ evaluation (``find_l_walk`` with the shared plan cache) on a
  warm database index;
* the copy-free overlay exact search against the seed's materializing
  reference implementation (``resilience_exact_reference``), including an
  end-to-end speedup assertion on the exact branch-and-bound workload;
* the batched serving API ``resilience_many``, which compiles the database
  index once and reuses it across a fleet of queries.
"""

import time

import pytest

from repro.graphdb import generators
from repro.languages import Language, compile_automaton
from repro.resilience import resilience_exact, resilience_exact_reference, resilience_many
from repro.rpq.evaluation import find_l_walk

QUERY_FLEET = ["ax*b", "ab|bc", "abc|be", "ab", "aa", "ab|ad|cd", "axb|byc"]


def test_compile_automaton_is_cached(benchmark):
    language = Language.from_regex("a(b|c)*d|ax*b")
    compile_automaton(language.automaton)  # warm the plan cache
    plan = benchmark(lambda: compile_automaton(language.automaton))
    assert plan.trimmed.final


def test_find_l_walk_on_warm_index(benchmark):
    language = Language.from_regex("ax*b")
    database = generators.random_labelled_graph(60, 240, "axb", seed=11)
    database.index()  # warm the database index
    walk = benchmark(lambda: find_l_walk(language.automaton, database))
    assert walk is not None


def test_batched_fleet_against_shared_database(benchmark):
    database = generators.random_labelled_graph(12, 36, "abcdexy", seed=7)
    results = benchmark(lambda: resilience_many(QUERY_FLEET, database))
    assert len(results) == len(QUERY_FLEET)
    assert all(result.value >= 0 for result in results)


def test_exact_overlay_speedup_over_reference():
    # The acceptance bar for this subsystem: >= 3x on the exact
    # branch-and-bound workload, with identical values and node counts.
    # (The retained reference already uses the compiled evaluator; the seed's
    # original per-node automaton recompilation was slower still.)
    language = Language.from_regex("aa")
    database = generators.random_labelled_graph(10, 30, "a", seed=3)

    start = time.perf_counter()
    fast = resilience_exact(language, database)
    overlay_seconds = time.perf_counter() - start

    start = time.perf_counter()
    reference = resilience_exact_reference(language, database)
    reference_seconds = time.perf_counter() - start

    assert fast.value == reference.value
    assert fast.details["nodes_explored"] == reference.details["nodes_explored"]
    speedup = reference_seconds / max(overlay_seconds, 1e-9)
    assert speedup >= 3.0, f"overlay search only {speedup:.1f}x faster than materializing reference"
