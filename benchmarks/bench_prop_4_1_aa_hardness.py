"""E-FIG3 / E-P41: Figure 3 and Proposition 4.1 -- hardness gadget for ``aa``."""

import pytest

from repro.graphdb import generators
from repro.hardness import build_reduction, check_reduction, verify_gadget
from repro.hardness.library import gadget_for_aa
from repro.languages import Language


def test_figure_3b_gadget_verifies(benchmark):
    verification = benchmark(lambda: verify_gadget(Language.from_regex("aa"), gadget_for_aa()))
    assert verification.valid
    assert verification.path_length == 5  # the graph of aa-matches is a 5-path


@pytest.mark.parametrize("graph", ["single-edge", "triangle", "path3", "random"])
def test_vertex_cover_reduction_identity(graph):
    edges = {
        "single-edge": [(0, 1)],
        "triangle": generators.cycle_graph(3),
        "path3": [(0, 1), (1, 2), (2, 3)],
        "random": generators.random_undirected_graph(4, 0.6, seed=2),
    }[graph]
    if not edges:
        pytest.skip("empty random graph")
    instance = build_reduction(Language.from_regex("aa"), gadget_for_aa(), edges)
    assert instance.subdivision_length == 5
    assert check_reduction(instance)


def test_reduction_construction_time(benchmark):
    edges = generators.cycle_graph(12)
    instance = benchmark(lambda: build_reduction(Language.from_regex("aa"), gadget_for_aa(), edges))
    assert len(instance.encoding) == 12 + 12 * 4
