"""E-P79: Proposition 7.9 -- resilience of one-dangling languages.

Shape checks: exact agreement with the baseline (including the mirrored case
and the infinite language a x* b | xd newly classified by the journal version),
and near-linear scaling with |D|.
"""

import pytest

from repro.graphdb import generators
from repro.languages import Language
from repro.resilience import resilience_exact, resilience_one_dangling

LANGUAGES = ["abc|be", "abcd|be", "abcd|ce", "ax*b|xd"]


@pytest.mark.parametrize("expression", LANGUAGES)
def test_agreement_with_exact_baseline(expression):
    language = Language.from_regex(expression)
    alphabet = "".join(sorted(language.alphabet))
    for seed in range(4):
        database = generators.random_labelled_graph(5, 11, alphabet, seed=seed)
        assert (
            resilience_one_dangling(language, database).value
            == resilience_exact(language, database).value
        )


@pytest.mark.parametrize("num_edges", [50, 100, 200])
def test_scaling_in_database_size(benchmark, num_edges):
    language = Language.from_regex("abc|be")
    database = generators.random_labelled_graph(num_edges // 3, num_edges, "abce", seed=17)
    result = benchmark(lambda: resilience_one_dangling(language, database))
    assert result.value >= 0


def test_extended_bag_rewriting(benchmark):
    language = Language.from_regex("ax*b|xd")
    bag = generators.random_bag_database(20, 80, "axbd", seed=5, max_multiplicity=7)
    result = benchmark(lambda: resilience_one_dangling(language, bag))
    assert result.details["kappa"] >= 0
