"""E-P312: Proposition 3.12 -- locality testing for DFAs is tractable."""

import pytest

from repro.languages import Language, local


@pytest.mark.parametrize(
    "expression, expected",
    [("ax*b", True), ("ab|ad|cd", True), ("aa", False), ("abc|bcd", False), ("axb|cxd", False)],
)
def test_locality_decisions(expression, expected):
    assert local.is_local(Language.from_regex(expression)) == expected


@pytest.mark.parametrize("num_words", [4, 8, 16])
def test_locality_testing_scales_with_language_size(benchmark, num_words):
    # Local languages a<letter> for growing alphabets.
    letters = [chr(ord("b") + index) for index in range(num_words)]
    expression = "|".join(f"a{letter}" for letter in letters)
    language = Language.from_regex(expression)
    assert benchmark(lambda: local.is_local(language))
