"""E-FIG56 / E-T53: Theorem 5.3 -- generic gadgets for four-legged languages.

Both proof cases are exercised: case 1 (no infix of gamma' x beta' in L,
Figure 5) and case 2 (some infix present, Figure 6).  Each construction is
machine-verified and one reduction per case is validated numerically.
"""

import pytest

from repro.hardness import build_reduction, check_reduction, four_legged_hardness_gadget
from repro.languages import Language

CASE_1 = ["axb|cxd", "aib|cid|eif", "axyb|cxyd", "be*c|de*f"]
CASE_2 = ["axb|cxd|cxb", "aaaa", "aaaaa", "axyb|cxyd|cxyb"]


@pytest.mark.parametrize("expression", CASE_1)
def test_case_1_gadgets(expression):
    certificate = four_legged_hardness_gadget(Language.from_regex(expression))
    assert certificate.verification.valid
    assert "case 1" in certificate.provenance
    assert certificate.path_length % 2 == 1


@pytest.mark.parametrize("expression", CASE_2)
def test_case_2_gadgets(expression):
    certificate = four_legged_hardness_gadget(Language.from_regex(expression))
    assert certificate.verification.valid
    assert "case 2" in certificate.provenance
    assert certificate.path_length % 2 == 1


@pytest.mark.parametrize("expression", ["axb|cxd", "axb|cxd|cxb"])
def test_reduction_identity(expression):
    language = Language.from_regex(expression)
    certificate = four_legged_hardness_gadget(language)
    instance = build_reduction(
        language, certificate.gadget, [(0, 1)], verification=certificate.verification
    )
    assert check_reduction(instance)


def test_certificate_construction_time(benchmark):
    certificate = benchmark(lambda: four_legged_hardness_gadget(Language.from_regex("axb|cxd")))
    assert certificate.verification.valid
