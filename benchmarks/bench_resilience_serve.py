"""E-SERVE: the parallel resilience serving layer (:mod:`repro.service`).

Exercises the serving subsystem end to end:

* correctness in smoke mode: the process-pool path must return outcomes
  identical to the serial path on a mixed workload — and so must the streamed
  :meth:`~repro.service.server.ResilienceServer.serve_iter` outcomes once
  re-sorted — and a query that blows its node budget must surface as a
  structured ``"budget-exceeded"`` outcome while the rest of the fleet
  completes;
* the session language cache: a workload dominated by duplicate queries plans
  (parse + infix-free + classification) each distinct query once;
* the warm pool: repeat serve calls on one
  :class:`~repro.service.server.ResilienceServer` must reuse the same worker
  processes (no re-fork) and return the one-shot results;
* wall-clock: multi-core speedup of the process pool on an exact-heavy
  workload.  The >1.5x acceptance assertion only fires on machines with at
  least 4 CPUs and outside the CI smoke pass (``REPRO_BENCH_SMOKE=1``, set by
  ``tools/bench_smoke.py`` — a loaded CI runner's timing must not turn CI
  red); on fewer cores or in smoke mode the benchmark reports the measured
  ratio without failing.
"""

import os
import time

from repro.graphdb import generators
from repro.service import (
    BUDGET_EXCEEDED,
    OK,
    LanguageCache,
    QuerySpec,
    ResilienceServer,
    Workload,
    plan_workload,
    resilience_serve,
)

MIXED_QUERIES = ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a", "ab|ad|cd", "axb|byc"]


def mixed_workload(size):
    return Workload.coerce([MIXED_QUERIES[i % len(MIXED_QUERIES)] for i in range(size)])


def test_parallel_outcomes_identical_to_serial():
    database = generators.random_labelled_graph(6, 18, "abcdexy", seed=9)
    workload = mixed_workload(24)
    serial = resilience_serve(workload, database, parallel=False)
    parallel = resilience_serve(workload, database, max_workers=2)
    assert serial == parallel
    assert all(outcome.ok for outcome in serial)


def test_streamed_outcomes_resorted_equal_batch_and_serial():
    # The streaming path is the same computation delivered incrementally:
    # re-sorting serve_iter()'s outcomes by index must reproduce both the
    # warm-pool batch result and the serial reference exactly.
    database = generators.random_labelled_graph(6, 18, "abcdexy", seed=9)
    workload = mixed_workload(24)
    serial = resilience_serve(workload, database, parallel=False)
    with ResilienceServer(database, max_workers=2) as server:
        batch = server.serve(workload)
        streamed = sorted(server.serve_iter(workload), key=lambda outcome: outcome.index)
    assert streamed == batch == serial


def test_warm_pool_reuses_workers_across_serve_calls():
    database = generators.random_labelled_graph(6, 18, "abcdexy", seed=9)
    workload = mixed_workload(24)
    one_shot = resilience_serve(workload, database, max_workers=2)
    with ResilienceServer(database, max_workers=2) as server:
        first = server.serve(workload)
        pids = server.worker_pids()
        second = server.serve(workload)
        assert server.worker_pids() == pids, "warm pool must not re-fork"
    assert first == second == one_shot


def test_budget_overrun_does_not_kill_the_fleet():
    database = generators.random_labelled_graph(5, 14, "axb", seed=0)
    workload = Workload.coerce(["ax*b", QuerySpec("aa", max_nodes=1), "ab"])
    outcomes = resilience_serve(workload, database, max_workers=2)
    assert [outcome.status for outcome in outcomes] == [OK, BUDGET_EXCEEDED, OK]
    assert outcomes[1].nodes_explored is not None


def test_duplicate_heavy_workload_plans_each_distinct_query_once(benchmark):
    database = generators.random_labelled_graph(6, 18, "abcdexy", seed=9)
    workload = mixed_workload(200)  # 200 queries, 8 distinct

    def serve_with_fresh_cache():
        cache = LanguageCache()
        scheduled, failed = plan_workload(workload, cache)
        assert not failed
        assert len(cache) == len(MIXED_QUERIES)
        return resilience_serve(workload, database, parallel=False, cache=cache)

    outcomes = benchmark(serve_with_fresh_cache)
    assert len(outcomes) == 200


def test_warm_pool_amortizes_fork_and_warmup():
    # Report-only (timings on shared runners are noise): repeated serve calls
    # through one warm server vs. a fresh pool per call.
    database = generators.random_labelled_graph(6, 18, "abcdexy", seed=9)
    workload = mixed_workload(16)
    rounds = 3

    start = time.perf_counter()
    for _ in range(rounds):
        cold_outcomes = resilience_serve(workload, database, max_workers=2)
    cold_seconds = time.perf_counter() - start

    with ResilienceServer(database, max_workers=2) as server:
        start = time.perf_counter()
        for _ in range(rounds):
            warm_outcomes = server.serve(workload)
        warm_seconds = time.perf_counter() - start

    assert warm_outcomes == cold_outcomes
    print(
        f"\nresilience serve x{rounds}: fresh pools {cold_seconds:.2f}s, "
        f"warm server {warm_seconds:.2f}s "
        f"({cold_seconds / max(warm_seconds, 1e-9):.2f}x)"
    )


def test_parallel_speedup_on_exact_heavy_workload():
    # The acceptance bar for the serving subsystem: >1.5x wall-clock on 4
    # workers for an exact-heavy workload, asserted where 4 cores exist.
    database = generators.random_labelled_graph(11, 38, "a", seed=2)
    workload = Workload.from_queries(["aa"] * 8)

    start = time.perf_counter()
    serial = resilience_serve(workload, database, parallel=False)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = resilience_serve(workload, database, max_workers=4)
    parallel_seconds = time.perf_counter() - start

    assert serial == parallel
    assert all(outcome.ok for outcome in serial)
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print(
        f"\nresilience_serve exact-heavy: serial {serial_seconds:.2f}s, "
        f"4 workers {parallel_seconds:.2f}s, speedup {speedup:.2f}x "
        f"({os.cpu_count()} cpus)"
    )
    strict = (os.cpu_count() or 1) >= 4 and not os.environ.get("REPRO_BENCH_SMOKE")
    if strict:
        assert speedup > 1.5, f"parallel serve only {speedup:.2f}x faster on 4 workers"
