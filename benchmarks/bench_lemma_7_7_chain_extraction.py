"""E-L77: Lemma 7.7 / Claim C.5 -- explicit word extraction from chain-language automata."""

import pytest

from repro.languages import Language, chain


def chain_language(num_words: int) -> Language:
    # A BCL with num_words words a<middle...>b alternating orientation.
    words = []
    letters = [chr(ord("c") + index) for index in range(num_words)]
    for index, letter in enumerate(letters):
        if index % 2 == 0:
            words.append(f"a{letter}b")
        else:
            words.append(f"b{letter}a")
    return Language.from_words(words)


@pytest.mark.parametrize("num_words", [2, 6, 10])
def test_extraction_matches_enumeration(num_words):
    language = chain_language(num_words)
    assert chain.chain_language_words(language.automaton) == language.words()


@pytest.mark.parametrize("num_words", [4, 8, 16])
def test_extraction_time(benchmark, num_words):
    language = chain_language(num_words)
    words = benchmark(lambda: chain.chain_language_words(language.automaton))
    assert len(words) == num_words
