"""E-MINCUT: the introduction's claim that RES_bag(a x* b) is MinCut."""

import pytest

from repro.flow import FlowNetwork, min_cut_value
from repro.graphdb import generators
from repro.languages import Language
from repro.resilience import resilience_local


@pytest.mark.parametrize("seed", range(5))
def test_resilience_equals_mincut(seed):
    bag = generators.layered_flow_database(4, 3, seed=seed)
    resilience_value = resilience_local(Language.from_regex("ax*b"), bag).value
    network = FlowNetwork(source="SRC", target="SNK")
    for fact, multiplicity in bag.multiplicities().items():
        network.add_edge(fact.source, fact.target, multiplicity)
    assert resilience_value == min_cut_value(network)


def test_resilience_vs_direct_mincut_timing(benchmark):
    bag = generators.layered_flow_database(6, 5, seed=3)
    language = Language.from_regex("ax*b")
    value = benchmark(lambda: resilience_local(language, bag).value)
    assert value > 0
