"""E-FIG4 / E-P413: Figure 4 and Proposition 4.13 -- gadget for ``axb|cxd``."""

from repro.graphdb import generators
from repro.hardness import build_reduction, check_reduction, verify_gadget
from repro.hardness.library import gadget_for_axb_cxd
from repro.languages import Language


def test_figure_4a_gadget_verifies(benchmark):
    verification = benchmark(
        lambda: verify_gadget(Language.from_regex("axb|cxd"), gadget_for_axb_cxd())
    )
    assert verification.valid
    assert verification.path_length == 9
    assert verification.num_matches == 9


def test_reduction_identity_on_small_graphs():
    for edges in ([(0, 1)], [(0, 1), (1, 2)]):
        instance = build_reduction(Language.from_regex("axb|cxd"), gadget_for_axb_cxd(), edges)
        assert check_reduction(instance)
