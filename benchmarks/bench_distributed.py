"""E-DIST: the exchange layer (:mod:`repro.service.exchange`).

Exercises the fingerprint-routed :class:`~repro.service.ThreadExchange` and
emits ``BENCH_distributed.json`` (read back by ``tools/bench_smoke.py`` and
future regression guards):

* correctness in smoke mode: a single-database envelope through the routed
  exchange and a two-database envelope scattered across nodes must both be
  outcome-identical (after re-sorting) to the serial reference;
* **routing overhead**: one workload through ``ThreadExchange.submit``
  (router, node lookup, sub-workload remap, kill-check drain loop) vs. the
  same workload through a direct ``serve_iter`` on an identically configured
  server — the exchange's whole cost must stay within 15% of the direct path
  on exact-heavy queries (asserted outside the CI smoke pass and only on
  multi-core machines, same hardware gate as the admission-overhead bar in
  ``bench_async_serve.py``; the measured ratio is always reported and must
  stay within 2x everywhere).
"""

import os
import statistics
import time
from dataclasses import replace

from conftest import emit_bench_json, smoke_mode

from repro.graphdb import generators
from repro.service import (
    EnvelopePart,
    LanguageCache,
    ResilienceServer,
    ThreadExchange,
    Workload,
    WorkloadEnvelope,
    resilience_serve,
)

#: Exact-heavy queries (~1ms+ of real work per outcome on the dense database
#: below): the exchange's per-envelope cost is a fixed few tens of µs of
#: routing and remapping, so trivial sub-ms queries would benchmark dict
#: lookups, not the routed serving path.
EXACT_HEAVY_QUERIES = ["aa", "ax*a", "axa", "aax|axa"]
NODES = 2


def database():
    return generators.random_labelled_graph(9, 30, "axy", seed=9)


def second_database():
    return generators.random_labelled_graph(8, 26, "axy", seed=11)


def exact_heavy_workload(size):
    return Workload.coerce(
        [EXACT_HEAVY_QUERIES[i % len(EXACT_HEAVY_QUERIES)] for i in range(size)]
    )


def sorted_outcomes(outcomes):
    return sorted(outcomes, key=lambda outcome: outcome.index)


def fresh_cache():
    # canonical=False keeps the result-level cache from short-circuiting the
    # repeat rounds, so both arms re-execute real serving work every round.
    return LanguageCache(canonical=False)


def test_routed_exchange_is_outcome_identical():
    graph, other = database(), second_database()
    workload = exact_heavy_workload(12)
    reference = resilience_serve(workload, graph, parallel=False, cache=fresh_cache())
    other_reference = resilience_serve(
        workload, other, parallel=False, cache=fresh_cache()
    )
    with ThreadExchange(nodes=NODES, parallel=False, cache=fresh_cache()) as exchange:
        routed = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(workload, graph))
        )
        assert routed == reference
        scattered = sorted_outcomes(
            exchange.submit(
                WorkloadEnvelope(
                    parts=(
                        EnvelopePart(workload=workload, database=graph),
                        EnvelopePart(workload=workload, database=other),
                    )
                )
            )
        )
        assert scattered[: len(workload)] == reference
        assert [
            replace(outcome, index=outcome.index - len(workload))
            for outcome in scattered[len(workload):]
        ] == other_reference


def test_routing_overhead():
    graph = database()
    workload = exact_heavy_workload(32)
    rounds = 3 if smoke_mode() else 9
    reference = resilience_serve(workload, graph, parallel=False, cache=fresh_cache())

    # parallel=False keeps process-pool scheduling jitter out of *both* arms:
    # the comparison isolates the exchange machinery (router, envelope
    # remapping, the kill-check drain loop), which is identical over either
    # execution mode of the node underneath.
    server = ResilienceServer(graph, parallel=False, cache=fresh_cache())
    direct_seconds = []
    routed_seconds = []
    try:
        with ThreadExchange(nodes=NODES, parallel=False, cache=fresh_cache()) as exchange:
            # Warm both arms: database index, caches, and the owner node's
            # warm server registration.
            list(server.serve_iter(workload))
            list(exchange.submit(WorkloadEnvelope.single(workload, graph)))

            # Arms interleaved round by round: machine-load drift hits both
            # equally, and the paired-minimum below isolates intrinsic cost.
            for _ in range(rounds):
                started = time.perf_counter()
                direct = list(server.serve_iter(workload))
                direct_seconds.append(time.perf_counter() - started)
                assert sorted_outcomes(direct) == reference

                started = time.perf_counter()
                routed = list(
                    exchange.submit(WorkloadEnvelope.single(workload, graph))
                )
                routed_seconds.append(time.perf_counter() - started)
                assert sorted_outcomes(routed) == reference
    finally:
        server.close()

    direct_best = min(direct_seconds)
    routed_best = min(routed_seconds)
    pair_ratios = [
        routed_s / max(direct_s, 1e-9)
        for direct_s, routed_s in zip(direct_seconds, routed_seconds)
    ]
    overhead = min(pair_ratios)  # intrinsic overhead: the cleanest pair
    overhead_median = statistics.median(pair_ratios)

    payload = {
        "smoke": smoke_mode(),
        "rounds": rounds,
        "workload_size": len(workload),
        "nodes": NODES,
        "direct_serve_iter_ms": round(direct_best * 1e3, 3),
        "routed_submit_ms": round(routed_best * 1e3, 3),
        "routing_overhead": round(overhead, 4),
        "routing_overhead_median": round(overhead_median, 4),
        "cpus": os.cpu_count(),
    }
    path = emit_bench_json("BENCH_distributed.json", payload)
    print(
        f"\ndistributed serve: direct {direct_best * 1e3:.1f}ms, "
        f"routed {routed_best * 1e3:.1f}ms (overhead x{overhead:.3f}) -> {path.name}"
    )
    strict = (os.cpu_count() or 1) >= 2 and not smoke_mode()
    if strict:
        assert overhead <= 1.15, (
            f"routing overhead x{overhead:.3f} exceeds the 15% budget "
            f"(direct {direct_best * 1e3:.1f}ms, routed {routed_best * 1e3:.1f}ms)"
        )
    assert overhead <= 2.0, (
        f"routing overhead x{overhead:.3f} is out of range even for a loaded runner"
    )
