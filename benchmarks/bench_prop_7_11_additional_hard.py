"""E-FIG15-16 / E-P711: Figures 15-16 and Proposition 7.11 -- abcd|be|ef and abcd|bef."""

import pytest

from repro.hardness import build_reduction, check_reduction, verify_gadget
from repro.hardness.library import gadget_for_abcd_be_ef, gadget_for_abcd_bef
from repro.languages import Language


@pytest.mark.parametrize(
    "expression, factory, length",
    [("abcd|be|ef", gadget_for_abcd_be_ef, 7), ("abcd|bef", gadget_for_abcd_bef, 5)],
)
def test_figure_gadgets_verify(benchmark, expression, factory, length):
    verification = benchmark(lambda: verify_gadget(Language.from_regex(expression), factory()))
    assert verification.valid
    assert verification.path_length == length


@pytest.mark.parametrize(
    "expression, factory", [("abcd|be|ef", gadget_for_abcd_be_ef), ("abcd|bef", gadget_for_abcd_bef)]
)
def test_reduction_identity(expression, factory):
    instance = build_reduction(Language.from_regex(expression), factory(), [(0, 1)])
    assert check_reduction(instance)
