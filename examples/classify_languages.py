"""Regenerate the Figure 1 classification table for the paper's example languages.

Run with::

    python examples/classify_languages.py [extra regexes...]

Any extra regular expressions passed on the command line are classified as well.
"""

import sys

from repro.classify import classify_regex, figure_1_table


def main() -> None:
    rows = figure_1_table()
    width = max(len(row["language"]) for row in rows)
    print(f"{'language':<{width}}  {'paper':<12}  {'this library':<12}  reason")
    print("-" * (width + 80))
    for row in rows:
        marker = "" if row["agrees"] else "  <-- MISMATCH"
        print(
            f"{row['language']:<{width}}  {row['paper_complexity']:<12}  "
            f"{row['computed_complexity']:<12}  {row['reason']}{marker}"
        )
    agreeing = sum(row["agrees"] for row in rows)
    print(f"\n{agreeing}/{len(rows)} languages classified exactly as in Figure 1 of the paper")

    extras = sys.argv[1:]
    if extras:
        print("\nadditional languages:")
        for expression in extras:
            result = classify_regex(expression)
            print(f"  {expression:<20} -> {result.complexity:<12} ({result.reason})")


if __name__ == "__main__":
    main()
