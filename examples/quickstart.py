"""Quickstart: compute the resilience of a regular path query on a graph database.

Run with::

    python examples/quickstart.py
"""

from repro import GraphDatabase, Language, RPQ, resilience
from repro.classify import classify
from repro.resilience import verify_contingency_set


def main() -> None:
    # A small graph database: nodes are people / servers / accounts, edges are
    # labelled relationships.
    database = GraphDatabase.from_edges(
        [
            ("ingress", "a", "gateway"),
            ("gateway", "x", "cache"),
            ("cache", "x", "app"),
            ("app", "b", "storage"),
            ("gateway", "b", "storage"),
            ("ingress2", "a", "gateway"),
        ]
    )

    # The RPQ "a x* b" asks for a walk labelled a, then any number of x, then b.
    query = RPQ.from_regex("ax*b")
    print(f"query {query.name!r} holds on the database: {query.holds(database)}")

    # Resilience: the minimum number of facts to delete so the query no longer holds.
    result = resilience(query.language, database)
    print(f"resilience = {result.value} (computed by {result.method})")
    print("one minimum contingency set:")
    for fact in sorted(result.contingency_set, key=str):
        print(f"  remove {fact}")
    assert verify_contingency_set(query.language, database, result)

    # The classifier tells us which complexity class the paper puts this query in.
    classification = classify(Language.from_regex("ax*b"))
    print(f"classification: {classification.complexity} because {classification.reason}")

    # A hard query: for "aa" (two consecutive a-edges) resilience is NP-hard in
    # general, and the engine falls back to the exact branch-and-bound baseline.
    hard = resilience("aa", database)
    print(f"resilience of 'aa' = {hard.value} (computed by {hard.method})")


if __name__ == "__main__":
    main()
