"""Data-cleaning scenario: how robust is a query to deleting dubious facts?

Resilience was introduced to quantify how sensitive a query answer is to
erroneous tuples: a query with resilience ``k`` stays true unless at least ``k``
facts are removed.  This example builds a small knowledge graph about a supply
chain, asks several regulatory path queries, and reports their resilience: low
resilience means the answer hinges on very few (possibly wrong) facts, high
resilience means the answer is robust.

Run with::

    python examples/data_cleaning.py
"""

from repro import GraphDatabase, Language, resilience
from repro.classify import classify
from repro.resilience import verify_contingency_set

SUPPLY_CHAIN = GraphDatabase.from_edges(
    [
        # s = supplies, m = manufactures, d = distributes, r = retails, c = certifies
        ("mine_A", "s", "smelter_1"),
        ("mine_B", "s", "smelter_1"),
        ("mine_B", "s", "smelter_2"),
        ("smelter_1", "m", "factory_1"),
        ("smelter_2", "m", "factory_1"),
        ("smelter_2", "m", "factory_2"),
        ("factory_1", "d", "warehouse"),
        ("factory_2", "d", "warehouse"),
        ("warehouse", "r", "shop_1"),
        ("warehouse", "r", "shop_2"),
        ("auditor", "c", "smelter_1"),
        ("auditor", "c", "factory_2"),
    ]
)

QUERIES = {
    "raw material reaches a shop (s m d r)": "smdr",
    "some factory distributes (m d)": "md",
    "a certified site manufactures or distributes (c m | c d)": "cm|cd",
    "two supply hops in a row (s s)": "ss",
}


def main() -> None:
    print(f"supply-chain graph: {len(SUPPLY_CHAIN)} facts, {len(SUPPLY_CHAIN.nodes)} entities\n")
    for description, expression in QUERIES.items():
        language = Language.from_regex(expression)
        classification = classify(language)
        result = resilience(language, SUPPLY_CHAIN)
        if result.value == 0:
            robustness = "query does not hold"
        elif result.value == 1:
            robustness = "FRAGILE: one wrong fact flips the answer"
        else:
            robustness = f"robust up to {result.value - 1} wrong facts"
        print(f"query: {description}")
        print(f"  regular expression: {expression}")
        print(f"  complexity class (paper): {classification.complexity} [{classification.region}]")
        print(f"  resilience: {result.value} via {result.method} -> {robustness}")
        if result.contingency_set:
            assert verify_contingency_set(language, SUPPLY_CHAIN, result)
            shown = ", ".join(str(fact) for fact in sorted(result.contingency_set, key=str)[:4])
            print(f"  minimum set of facts to double-check: {shown}")
        print()


if __name__ == "__main__":
    main()
