"""Build, verify and use a hardness gadget (the Section 4 machinery).

This example reproduces, end to end, the NP-hardness argument of the paper for
a chosen language: it builds a hardness gadget, machine-verifies the odd-path
condition of Definition 4.9, encodes a small undirected graph, and checks that
the resilience of the encoding equals ``vc(G) + m (l - 1) / 2`` as predicted by
Proposition 4.11 / Proposition 4.2.

Run with::

    python examples/gadget_explorer.py [regex]
"""

import sys

from repro import Language
from repro.graphdb import generators
from repro.hardness import build_reduction, check_reduction, hardness_gadget
from repro.hardness.verification import describe_condensed_path


def main() -> None:
    expression = sys.argv[1] if len(sys.argv) > 1 else "axb|cxd"
    language = Language.from_regex(expression)

    print(f"building a hardness certificate for {expression!r} ...")
    certificate = hardness_gadget(language)
    print(f"  provenance: {certificate.provenance}")
    print(f"  gadget: {certificate.gadget.name} with {len(certificate.gadget.database)} facts")
    print(f"  mirrored (Proposition 6.3): {certificate.mirrored}")
    print(f"  condensed hypergraph of matches: odd path of length {certificate.path_length}")
    print("  path through the endpoint facts:")
    for fact in describe_condensed_path(certificate.verification):
        print(f"    {fact}")

    graph_edges = generators.cycle_graph(3)
    print(f"\nencoding the triangle graph {graph_edges} with the gadget ...")
    instance = build_reduction(
        certificate.gadget_language,
        certificate.gadget,
        graph_edges,
        verification=certificate.verification,
    )
    print(f"  encoding: {len(instance.encoding)} facts")
    print(f"  vertex cover number of the triangle: {instance.vertex_cover_number}")
    print(
        "  predicted resilience = vc(G) + m (l-1)/2 = "
        f"{instance.vertex_cover_number} + {len(graph_edges)}*{(instance.subdivision_length - 1) // 2} "
        f"= {instance.predicted_resilience}"
    )
    print("  checking against the exact resilience algorithm ...")
    assert check_reduction(instance)
    print("  the exact resilience of the encoding matches the prediction.")


if __name__ == "__main__":
    main()
