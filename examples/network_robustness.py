"""Network robustness: the MinCut connection of the paper's introduction.

The resilience of the RPQ ``a x* b`` in bag semantics on a database encoding a
flow network equals the minimum cut of that network: ``a``-facts are sources,
``b``-facts are sinks, ``x``-facts are network edges, and multiplicities are
capacities.  This example builds a layered "data-centre" network, computes its
resilience, and cross-checks it against a direct MinCut computation.

Run with::

    python examples/network_robustness.py
"""

from repro import Language, resilience
from repro.flow import FlowNetwork, min_cut
from repro.graphdb import generators
from repro.resilience import verify_contingency_set


def main() -> None:
    # A layered network: SRC -> layer 0 -> layer 1 -> layer 2 -> SNK, with
    # random capacities.  Each edge is a database fact with a multiplicity.
    network_db = generators.layered_flow_database(
        num_layers=4, layer_width=4, seed=2024, edge_probability=0.6, max_multiplicity=9
    )
    print(f"network database: {len(network_db)} facts over alphabet {sorted(network_db.alphabet)}")

    query = Language.from_regex("ax*b")
    result = resilience(query, network_db)
    print(f"resilience of a x* b (total capacity to sever all source-sink routes): {result.value}")
    print(f"algorithm: {result.method}; facts cut: {len(result.contingency_set)}")
    assert verify_contingency_set(query, network_db, result)

    # Direct MinCut on the same network, for comparison.
    flow = FlowNetwork(source="SRC", target="SNK")
    for fact, multiplicity in network_db.multiplicities().items():
        flow.add_edge(fact.source, fact.target, multiplicity, key=fact)
    cut = min_cut(flow)
    print(f"direct MinCut value: {cut.value} (must match the resilience)")
    assert cut.value == result.value

    # Robustness experiment: how does the resilience change as links fail?
    print("\nlink-failure sweep (removing the largest-capacity x-facts one by one):")
    remaining = network_db
    x_facts = sorted(
        (fact for fact in network_db.facts if fact.label == "x"),
        key=lambda fact: -network_db.multiplicity(fact),
    )
    for step, fact in enumerate(x_facts[:5]):
        remaining = remaining.remove([fact])
        value = resilience(query, remaining).value
        print(f"  after removing {fact} -> resilience {value}")


if __name__ == "__main__":
    main()
