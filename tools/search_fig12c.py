"""Dev tool, round 3: randomized wiring search for the Figure-12 gadget.

A wiring is a set of x-eta-y segments between anchor nodes plus a set of
a-edges between anchor nodes; the in/out chains are x-eta-y segments starting
at t_in / t_out (the completion provides their leading ``a``).
"""

from __future__ import annotations

import random
import sys

from repro.languages import Language
from repro.hardness.gadgets import GadgetBuilder
from repro.hardness.verification import verify_gadget

FAST_CASES = [
    ("axya|yax", "a", "x", "y", ""),
    ("axxa|xax", "a", "x", "x", ""),
]
FULL_CASES = FAST_CASES + [
    ("axbya|yax", "a", "x", "y", "b"),
    ("axaya|yax", "a", "x", "y", "a"),
    ("axbcya|yax", "a", "x", "y", "bc"),
    ("axxya|yax", "a", "x", "y", "x"),
    ("abca|cab", "a", "b", "c", ""),
]


def build(letter, x_letter, y_letter, eta, wiring):
    builder = GadgetBuilder()

    def xey(start, end):
        m1 = builder.fresh_node("e")
        m2 = builder.fresh_node("f")
        builder.add_edge(start, x_letter, m1)
        builder.add_word_path(m1, eta, m2)
        builder.add_edge(m2, y_letter, end)

    segments, a_edges, in_anchor, out_anchor = wiring
    xey("t_in", in_anchor)
    xey("t_out", out_anchor)
    for source, target in segments:
        xey(f"A{source}", f"A{target}")
    for source, target in a_edges:
        builder.add_edge(f"A{source}" if not str(source).startswith("IO") else source,
                         letter,
                         f"A{target}")
    return builder.build("t_in", "t_out", letter, name="fig12-random")


def random_wiring(rng, num_anchors):
    num_segments = rng.randint(2, 5)
    num_a = rng.randint(2, 6)
    segments = []
    for _ in range(num_segments):
        segments.append((rng.randrange(num_anchors), rng.randrange(num_anchors)))
    a_edges = set()
    for _ in range(num_a):
        a_edges.add((rng.randrange(num_anchors), rng.randrange(num_anchors)))
    # in/out chains end at anchor nodes ("IOxx" names are the y-targets of those chains)
    in_anchor = f"A{rng.randrange(num_anchors)}"
    out_anchor = f"A{rng.randrange(num_anchors)}"
    # the y-targets of the in/out chains must have at least one outgoing a-edge
    # to produce a W1 match containing the completion fact; we let the anchors
    # double as those targets.
    return (segments, sorted(a_edges), in_anchor, out_anchor)


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    tries = int(sys.argv[2]) if len(sys.argv) > 2 else 3000
    num_anchors = int(sys.argv[3]) if len(sys.argv) > 3 else 5
    rng = random.Random(seed)
    found = 0
    for attempt in range(tries):
        wiring = random_wiring(rng, num_anchors)
        ok = True
        for regex, a, x, y, eta in FAST_CASES:
            g = build(a, x, y, eta, wiring)
            try:
                v = verify_gadget(Language.from_regex(regex), g, max_walk_length=12)
            except Exception:
                ok = False
                break
            if not v.valid:
                ok = False
                break
        if not ok:
            continue
        lengths = []
        for regex, a, x, y, eta in FULL_CASES:
            g = build(a, x, y, eta, wiring)
            v = verify_gadget(Language.from_regex(regex), g, max_walk_length=14)
            if not v.valid:
                ok = False
                break
            lengths.append(v.path_length)
        if ok:
            found += 1
            print("FOUND", wiring, lengths)
            if found >= 3:
                break
    if not found:
        print("none found in", tries)


if __name__ == "__main__":
    main()
