"""Dev tool, round 2: chains of loop blocks for the Figure-12 gadget."""

from __future__ import annotations

import itertools

from repro.languages import Language
from repro.hardness.gadgets import GadgetBuilder
from repro.hardness.verification import verify_gadget

CASES = [
    ("axya|yax", "a", "x", "y", ""),
    ("axxa|xax", "a", "x", "x", ""),
    ("axbya|yax", "a", "x", "y", "b"),
    ("axaya|yax", "a", "x", "y", "a"),
    ("axbcya|yax", "a", "x", "y", "bc"),
]


def build(letter, x_letter, y_letter, eta, *, blocks, last_forward, out_mode, tail_units):
    builder = GadgetBuilder()

    def xey(start, end):
        m1 = builder.fresh_node("e")
        m2 = builder.fresh_node("f")
        builder.add_edge(start, x_letter, m1)
        builder.add_word_path(m1, eta, m2)
        builder.add_edge(m2, y_letter, end)

    # in chain into N1
    xey("t_in", "in_y")
    builder.add_edge("in_y", letter, "N1")

    last_y = None
    for i in range(1, blocks + 1):
        xey(f"N{i}", f"L{i}")
        builder.add_edge(f"L{i}", letter, f"N{i}")  # back edge
        if i < blocks:
            builder.add_edge(f"L{i}", letter, f"N{i+1}")  # forward into next block
        last_y = f"L{i}"

    prev_y = last_y
    if last_forward:
        # forward a-edge out of the last block into a tail
        builder.add_edge(last_y, letter, "T0")
        prev = "T0"
        prev_y = None
        for j in range(tail_units):
            xey(prev, f"TY{j}")
            prev_y = f"TY{j}"
            builder.add_edge(prev_y, letter, f"T{j+1}")
            prev = f"T{j+1}"

    # out chain
    builder.add_edge("t_out", x_letter, "o1")
    builder.add_word_path("o1", eta, "o2")
    if out_mode == "share_last_y":
        target = prev_y if prev_y is not None else last_y
        builder.add_edge("o2", y_letter, target)
    elif out_mode == "second_a_into_last_N":
        builder.add_edge("o2", y_letter, "w_out")
        builder.add_edge("w_out", letter, f"N{blocks}")
    elif out_mode == "second_a_into_tail":
        builder.add_edge("o2", y_letter, "w_out")
        builder.add_edge("w_out", letter, "T0" if last_forward else f"N{blocks}")
    return builder.build("t_in", "t_out", letter, name="fig12-candidate-b")


def main():
    good = []
    for blocks, last_forward, out_mode, tail_units in itertools.product(
        [1, 2, 3],
        [True, False],
        ["share_last_y", "second_a_into_last_N", "second_a_into_tail"],
        [0, 1],
    ):
        if not last_forward and tail_units > 0:
            continue
        key = (blocks, last_forward, out_mode, tail_units)
        ok = True
        lengths = []
        for regex, a, x, y, eta in CASES:
            try:
                g = build(a, x, y, eta, blocks=blocks, last_forward=last_forward,
                          out_mode=out_mode, tail_units=tail_units)
                v = verify_gadget(Language.from_regex(regex), g)
            except Exception as exc:
                lengths.append(f"ERR:{type(exc).__name__}:{exc}")
                ok = False
                break
            lengths.append(v.path_length)
            if not v.valid:
                ok = False
                break
        print(key, ok, lengths)
        if ok:
            good.append(key)
    print("GOOD:", good)


if __name__ == "__main__":
    main()
