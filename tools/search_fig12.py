"""Dev tool: search for a working Figure-12-style gadget (Claim 6.13).

We explore a parametrized family: in-chain into a loop block, a number of plain
units, and different ways of attaching the out-chain.
"""

from __future__ import annotations

import itertools
import sys

from repro.languages import Language
from repro.hardness.gadgets import GadgetBuilder
from repro.hardness.verification import verify_gadget

CASES = [
    ("axya|yax", "a", "x", "y", ""),
    ("axxa|xax", "a", "x", "x", ""),
    ("axbya|yax", "a", "x", "y", "b"),
    ("axaya|yax", "a", "x", "y", "a"),
    ("axbcya|yax", "a", "x", "y", "bc"),
]


def build(letter, x_letter, y_letter, eta, *, units, out_mode, loop_forward, extra_x_at_end):
    builder = GadgetBuilder()

    def xey(start, end):
        m1 = builder.fresh_node("e")
        m2 = builder.fresh_node("f")
        builder.add_edge(start, x_letter, m1)
        builder.add_word_path(m1, eta, m2)
        builder.add_edge(m2, y_letter, end)

    # in chain
    xey("t_in", "in_y")
    builder.add_edge("in_y", letter, "N")
    # loop block
    xey("N", "loop_y")
    builder.add_edge("loop_y", letter, "N")
    prev_y = "loop_y"
    if loop_forward:
        builder.add_edge("loop_y", letter, "u0")
        prev = "u0"
        prev_y = None
    # plain units
    for i in range(units):
        if prev_y is not None:
            builder.add_edge(prev_y, letter, f"u{i}")
            prev = f"u{i}"
            prev_y = None
        xey(prev, f"y{i}")
        prev_y = f"y{i}"
        prev = None
    # final a edge after last unit (to a sink), if there were units or loop_forward
    if prev_y is not None:
        builder.add_edge(prev_y, letter, "end")
        last_y = prev_y
    else:
        # no units and no forward: attach out to loop structures directly
        last_y = "loop_y"
    if extra_x_at_end:
        builder.add_edge("end", x_letter, builder.fresh_node("sx"))

    # out chain
    builder.add_edge("t_out", x_letter, "o1")
    builder.add_word_path("o1", eta, "o2")
    if out_mode == "share_y":
        # out y-edge enters the last unit's y node (sharing its final a-fact)
        builder.add_edge("o2", y_letter, last_y)
    elif out_mode == "second_a":
        # out chain gets its own y node and a second a-edge into the last unit start
        builder.add_edge("o2", y_letter, "w_out")
        builder.add_edge("w_out", letter, prev if prev is not None else "end")
    return builder.build("t_in", "t_out", letter, name="fig12-candidate")


def main():
    results = {}
    for units, out_mode, loop_forward, extra_x in itertools.product(
        [0, 1, 2, 3], ["share_y", "second_a"], [True, False], [False, True]
    ):
        key = (units, out_mode, loop_forward, extra_x)
        ok = True
        lengths = []
        for regex, a, x, y, eta in CASES:
            try:
                g = build(a, x, y, eta, units=units, out_mode=out_mode,
                          loop_forward=loop_forward, extra_x_at_end=extra_x)
                v = verify_gadget(Language.from_regex(regex), g)
            except Exception as exc:
                ok = False
                lengths.append(f"ERR:{type(exc).__name__}")
                break
            lengths.append(v.path_length)
            if not v.valid:
                ok = False
                break
        results[key] = (ok, lengths)
        print(key, ok, lengths)
    good = [k for k, (ok, _) in results.items() if ok]
    print("GOOD:", good)


if __name__ == "__main__":
    main()
