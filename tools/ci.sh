#!/usr/bin/env bash
# Single CI entry point: tier-1 tests plus the benchmark smoke pass.
#
#   tools/ci.sh            # run everything
#   tools/ci.sh -k mincut  # extra args are forwarded to bench_smoke.py
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="$PWD/src${PYTHONPATH:+:$PYTHONPATH}"

echo "ci: tier-1 test suite"
python -m pytest -x -q

echo "ci: benchmark smoke pass"
python tools/bench_smoke.py "$@"

echo "ci: all green"
