#!/usr/bin/env bash
# Single CI entry point: tier-1 tests plus the benchmark smoke pass.
#
#   tools/ci.sh            # run everything
#   tools/ci.sh -k mincut  # extra args are forwarded to bench_smoke.py
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="$PWD/src${PYTHONPATH:+:$PYTHONPATH}"

echo "ci: static analysis gate (repro.analysis, strict, empty baseline)"
python -m repro.analysis src --strict

echo "ci: static analysis negative check (a seeded violation must fail the gate)"
ANALYSIS_SCRATCH="$(mktemp -d)"
cat > "$ANALYSIS_SCRATCH/seeded.py" <<'PY'
def f():
    try:
        return 1
    except:
        pass
PY
if python -m repro.analysis "$ANALYSIS_SCRATCH" --no-baseline --strict > /dev/null; then
  echo "ci: analysis gate FAILED to flag a seeded bare-except violation" >&2
  rm -rf "$ANALYSIS_SCRATCH"
  exit 1
fi
rm -rf "$ANALYSIS_SCRATCH"
echo "ci: analysis negative check ok (seeded violation rejected)"

echo "ci: tier-1 test suite"
python -m pytest -x -q

echo "ci: leak-sanitized service/exchange/traffic suites (threads, processes, sockets, temp dirs)"
REPRO_LEAK_SANITIZER=on python -m pytest -q tests/test_server.py tests/test_async_server.py tests/test_exchange.py tests/test_traffic.py

echo "ci: parallel serving parity check (batch + streamed)"
python - <<'PY'
from repro.graphdb import generators
from repro.service import QuerySpec, ResilienceServer, Workload, resilience_serve

database = generators.random_labelled_graph(5, 14, "abcdexy", seed=3)
workload = Workload.coerce(
    ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a", QuerySpec("aa", max_nodes=1)] * 3
)
serial = resilience_serve(workload, database, parallel=False)
parallel = resilience_serve(workload, database, max_workers=2)
assert serial == parallel, "parallel serve diverged from serial results"
with ResilienceServer(database, max_workers=2) as server:
    batch = server.serve(workload)
    streamed = sorted(server.serve_iter(workload), key=lambda outcome: outcome.index)
    assert server.worker_pids(), "warm pool expected after serving"
assert batch == serial, "warm-pool serve diverged from serial results"
assert streamed == serial, "re-sorted serve_iter() diverged from the batch result"
print(f"ci: resilience serve parity ok ({len(serial)} outcomes, 2 workers, batch+stream)")
PY

echo "ci: flow solver differential (fast vs reference, byte-identical streams)"
python - <<'PY'
import os

from repro.graphdb import generators
from repro.service import LanguageCache, QuerySpec, ResilienceServer, Workload, resilience_serve

workload = Workload.coerce(
    ["ax*b", "ab|bc", "abc|be", "(ab)*a", "a(ba)*", "aa", "ab", "ε|a",
     QuerySpec("aa", max_nodes=1), QuerySpec("ab", semantics="set")]
)
for database in (
    generators.random_labelled_graph(5, 14, "abcxey", seed=3),
    generators.random_labelled_graph(4, 10, "abcx", seed=5).to_bag(2),
):
    os.environ.pop("REPRO_FLOW_SOLVER", None)
    fast = resilience_serve(workload, database, parallel=False, cache=LanguageCache(canonical=False))
    os.environ["REPRO_FLOW_SOLVER"] = "reference"
    reference = resilience_serve(workload, database, parallel=False, cache=LanguageCache(canonical=False))
    with ResilienceServer(database, max_workers=2, cache=LanguageCache(canonical=False)) as server:
        pooled = server.serve(workload)
    os.environ.pop("REPRO_FLOW_SOLVER", None)
    assert fast == reference, "fast flow solver diverged from the reference solver"
    assert pooled == reference, "pooled reference-solver serve diverged"
    stream_fast = "\n".join(repr(outcome) for outcome in fast)
    stream_reference = "\n".join(repr(outcome) for outcome in reference)
    assert stream_fast == stream_reference, "outcome streams are not byte-identical"
print(f"ci: flow solver differential ok ({len(workload)} queries x 2 databases, fast == reference)")
PY

echo "ci: async conformance variants (single workload + 3 concurrent merged)"
python -m pytest -q tests/test_conformance.py -k "async"

echo "ci: distributed conformance variants (2/4-node fleets, HTTP nodes, mid-stream node kill)"
python -m pytest -q tests/test_conformance.py -k "distributed"

echo "ci: soak-replay conformance variant (chaos soak == uncached serial reference)"
python -m pytest -q tests/test_conformance.py -k "soak"

echo "ci: chaos soak smoke (seeded traffic, 2 nodes, one scheduled kill, replay check)"
python - <<'PY'
from repro.traffic import (
    ChaosEvent, ChaosSchedule, DatabaseSpec, SoakRunner, TrafficProfile,
    generate_traffic,
)

profile = TrafficProfile(
    seed=7,
    requests=8,
    databases=(
        DatabaseSpec(num_nodes=5, num_edges=12, alphabet="abxy"),
        DatabaseSpec(num_nodes=4, num_edges=9, alphabet="abx", bag_copies=2),
    ),
)
chaos = ChaosSchedule((
    ChaosEvent(round=1, kind="kill", after_outcomes=2),
    ChaosEvent(round=0, kind="burst", count=3),
))


def soak():
    return SoakRunner(
        generate_traffic(profile), nodes=2, max_workers=2, chaos=chaos,
        requests_per_round=4,
    ).run()


report = soak()
assert report.violations == (), report.violations
assert report.chaos["kills"] == 1 and report.chaos["heals"] == 1
assert report.recovery["max_rounds"] <= report.recovery["bound"]
assert report.parity_checked == report.requests
assert report.admission["final_in_flight"] == 0
replay = soak()
assert replay.by_status == report.by_status, "soak must replay from its seed"
print(
    f"ci: chaos soak ok ({report.requests} requests, {report.outcomes} outcomes, "
    f"1 kill, recovery {report.recovery['max_rounds']} round(s), replay identical)"
)
PY

echo "ci: HTTP chaos soak smoke (real sockets: refused window, disconnect, kill, replay check)"
python - <<'PY'
import sys
from pathlib import Path

sys.path.insert(0, str(Path("tests").resolve()))

from faults import ChaosHttpNodeLauncher
from leak_sanitizer import LeakTracker

from repro.service import HttpExchange, NodeManager, RetryPolicy
from repro.traffic import (
    ChaosEvent, ChaosSchedule, DatabaseSpec, SoakRunner, TrafficProfile,
    generate_traffic,
)

profile = TrafficProfile(
    seed=7,
    requests=8,
    databases=(
        DatabaseSpec(num_nodes=5, num_edges=12, alphabet="abxy"),
        DatabaseSpec(num_nodes=4, num_edges=9, alphabet="abx", bag_copies=2),
    ),
)
chaos = ChaosSchedule((
    ChaosEvent(round=0, kind="refused", count=2),
    ChaosEvent(round=1, kind="disconnect", after_outcomes=1),
    ChaosEvent(round=1, kind="kill", after_outcomes=2),
))


def soak(tracker=None):
    launcher = ChaosHttpNodeLauncher(
        max_workers=2,
        request_timeout=10.0,
        retry=RetryPolicy(attempts=3, base_delay=0.0),
    )
    return SoakRunner(
        generate_traffic(profile),
        exchange=HttpExchange(nodes=2, manager=NodeManager(launcher)),
        chaos=chaos,
        requests_per_round=4,
        leak_tracker=tracker,
    ).run()


report = soak(tracker=LeakTracker())
assert report.violations == (), report.violations
assert report.leaks == (), report.leaks
assert report.chaos["network_faults"] == 2 and report.chaos["kills"] == 1
assert report.recovery["max_rounds"] <= report.recovery["bound"]
assert report.parity_checked == report.requests
assert report.admission["final_in_flight"] == 0
replay = soak()
assert replay.by_status == report.by_status, "HTTP soak must replay from its seed"
print(
    f"ci: http chaos soak ok ({report.requests} requests, {report.outcomes} "
    f"outcomes, 2 network faults, 1 kill, recovery "
    f"{report.recovery['max_rounds']} round(s), replay identical, no leaks)"
)
PY

echo "ci: multi-node kill/recovery soak (routed fleet, kill + auto-replace per round)"
python - <<'PY'
import asyncio

from repro.graphdb import generators
from repro.service import AsyncResilienceServer, ThreadExchange, resilience_serve

database = generators.random_labelled_graph(5, 14, "abcdexy", seed=3)
workload = ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a"] * 2
reference = resilience_serve(workload, database, parallel=False)


async def soak():
    exchange = ThreadExchange(nodes=2, max_workers=2)
    async with AsyncResilienceServer(exchange, database=database) as server:

        async def collect(iterator):
            return sorted([o async for o in iterator], key=lambda o: o.index)

        kills = 0
        for round_number in range(3):
            iterators = [await server.submit(workload) for _ in range(2)]
            if round_number:
                # Kill the node that owns the database while its round is in
                # flight; the exchange must fail over (and, next round,
                # auto-replace the corpse) without losing an outcome.
                exchange.manager.kill(exchange.route_for(database))
                kills += 1
            for outcomes in await asyncio.gather(*(collect(it) for it in iterators)):
                assert outcomes == reference, f"round {round_number} diverged after kill"
        metrics = server.metrics()
        delivered = sum(metrics.outcome_counts().values())
        assert delivered == 6 * len(workload), f"outcome loss across kills: {delivered}"
        assert kills == 2 and all(metrics.to_prometheus().splitlines()), "exposition emits"
        alive = sum(1 for snapshot in metrics.nodes if snapshot.alive)
        assert alive >= 1, "a replacement node must be serving after the kills"
        print(
            f"ci: kill/recovery soak ok (6 workloads, {delivered} outcomes, "
            f"{kills} kills, {alive}/{len(metrics.nodes)} nodes alive)"
        )


asyncio.run(soak())
PY

echo "ci: async soak (3 workloads x 2 rounds, one warm pool) + metrics endpoint scrape"
python - <<'PY'
import asyncio
import json
import urllib.request

from repro.graphdb import generators
from repro.service import AsyncResilienceServer, ResilienceServer, resilience_serve

database = generators.random_labelled_graph(5, 14, "abcdexy", seed=3)
workload = ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a"] * 2
reference = resilience_serve(workload, database, parallel=False)


async def soak():
    async with AsyncResilienceServer(ResilienceServer(database, max_workers=2)) as server:

        async def collect(iterator):
            return sorted([o async for o in iterator], key=lambda o: o.index)

        pids = None
        for round_number in range(2):
            iterators = [await server.submit(workload) for _ in range(3)]
            for outcomes in await asyncio.gather(*(collect(it) for it in iterators)):
                assert outcomes == reference, f"round {round_number} diverged from serial"
            round_pids = server.worker_pids()
            assert round_pids, "concurrent workloads must share a real pool"
            if pids is not None:
                assert round_pids == pids, "the warm pool must not re-fork across rounds"
            pids = round_pids
        assert server.server.pool_stats().pools_created == 1, "exactly one pool forked"

        metrics = server.metrics()
        assert metrics.cache.result_hits > 0, "round 2 must hit the result-level cache"
        endpoint = server.metrics_endpoint(port=0)
        with urllib.request.urlopen(endpoint.url, timeout=10) as response:
            scraped = json.loads(response.read())
        assert scraped == json.loads(server.metrics().to_json()), (
            "scraped metrics diverged from the programmatic snapshot"
        )
        assert scraped["cache"]["result_hits"] == metrics.cache.result_hits
        assert scraped["admission"]["admitted"] == {"0": 6}
        ok = scraped["outcomes"]["ok"]
        assert ok == 6 * len(workload), f"outcome loss: {ok}"
        print(
            f"ci: async soak ok (6 workloads, {ok} outcomes, "
            f"{metrics.cache.result_hits} result hits, scrape == snapshot)"
        )


asyncio.run(soak())
PY

echo "ci: conformance suite with the reference flow solver forced"
REPRO_FLOW_SOLVER=reference python -m pytest -q tests/test_conformance.py

echo "ci: conformance suite, on-disk analysis store cold then warm"
CONFORMANCE_STORE="$(mktemp -d)"
trap 'rm -rf "$CONFORMANCE_STORE"' EXIT
REPRO_ANALYSIS_STORE="$CONFORMANCE_STORE" python -m pytest -q tests/test_conformance.py
REPRO_ANALYSIS_STORE="$CONFORMANCE_STORE" python -m pytest -q tests/test_conformance.py
python - "$CONFORMANCE_STORE" <<'PY'
import sys

from repro.graphdb import generators
from repro.resilience import AnalysisStore, LanguageCache, resilience_many

directory = sys.argv[1]
database = generators.random_labelled_graph(5, 14, "abxy", seed=3)
queries = ["ax*b", "ab|bc", "(ab)*a", "a(ba)*", "ab|ba", "aa", "ε|a"]

store = AnalysisStore(directory)
cache = LanguageCache(store=store)
results = resilience_many(queries, database, cache=cache)
stats = store.stats()
assert stats.hits > 0, f"warm pass must hit the persisted store (stats: {stats})"
assert cache.stats.classifications == 0, "warm pass must not re-classify anything"
fresh = resilience_many(queries, database)
assert results == fresh, "store-served results diverged from fresh computation"
print(f"ci: analysis store warm pass ok ({stats.hits} hits, 0 classifications)")
PY

echo "ci: warm CLI then fresh-process serve conformance"
WARM_STORE="$(mktemp -d)"
trap 'rm -rf "$CONFORMANCE_STORE" "$WARM_STORE"' EXIT
python -m repro.service.warm \
  --analysis-store "$WARM_STORE/analysis" \
  --result-store "$WARM_STORE/result" \
  --trace-seed 7 --trace-requests 16 > "$WARM_STORE/warm.json"
python - "$WARM_STORE" <<'PY'
import json
import sys
from pathlib import Path

from repro.resilience import AnalysisStore, LanguageCache, ResultStore
from repro.service import resilience_serve
from repro.traffic import TrafficProfile, generate_traffic

root = Path(sys.argv[1])
warm = json.loads((root / "warm.json").read_text())
assert warm["classifications"] > 0 and warm["results_written"] > 0, warm

# A fresh cache in a process that never classified anything: every request in
# the warmed trace must be served from the stores, outcome-identical to an
# uncached serial reference.
trace = generate_traffic(TrafficProfile(seed=7, requests=16))
analysis_store = AnalysisStore(root / "analysis")
result_store = ResultStore(root / "result")
cache = LanguageCache(store=analysis_store, result_store=result_store)
for request in trace.requests:
    database = trace.databases[request.database_key]
    warmed = resilience_serve(request.workload, database, parallel=False, cache=cache)
    reference = resilience_serve(
        request.workload, database, parallel=False,
        cache=LanguageCache(canonical=False),
    )
    assert warmed == reference, f"warmed serve diverged on {request.database_key}"
assert cache.stats.classifications == 0, "warmed serve must not classify"
assert analysis_store.stats().hits > 0 and result_store.stats().hits > 0
print(
    f"ci: warm CLI conformance ok ({analysis_store.stats().hits} analysis hits, "
    f"{result_store.stats().hits} result hits, 0 classifications)"
)
PY

echo "ci: benchmark smoke pass (includes bench_resilience_serve + bench_flow_core)"
python tools/bench_smoke.py "$@"

if [ -f BENCH_flow.json ]; then
  echo "ci: flow benchmark regression guard (BENCH_flow.json)"
  python - <<'PY'
import json
from pathlib import Path

data = json.loads(Path("BENCH_flow.json").read_text())
for key in ("rows", "min_cut_speedup", "build_speedup", "serve_p50_us", "serve_p50_speedup"):
    assert key in data, f"BENCH_flow.json missing {key!r}"
for row in data["rows"]:
    assert row["min_cut_us"]["fast"] > 0 and row["min_cut_us"]["reference"] > 0, row
# Loose smoke-safe floor: the array solver must clearly beat the reference
# even on a loaded runner (steady-state measurements put it >= 3x; the strict
# bar is asserted by bench_flow_core.py itself outside smoke mode).
assert data["min_cut_speedup"] >= 1.5, data["min_cut_speedup"]
assert data["serve_p50_speedup"] >= 1.0, data["serve_p50_speedup"]
mode = "smoke" if data.get("smoke") else "full"
print(
    f"ci: flow bench ok ({mode}: min-cut x{data['min_cut_speedup']:.2f}, "
    f"build x{data['build_speedup']:.2f}, serve p50 x{data['serve_p50_speedup']:.2f})"
)
PY
else
  echo "ci: BENCH_flow.json missing (flow benchmark did not run?)" >&2
  exit 1
fi

if [ -f BENCH_async.json ]; then
  echo "ci: async benchmark artefact check (BENCH_async.json)"
  python - <<'PY'
import json
from pathlib import Path

data = json.loads(Path("BENCH_async.json").read_text())
for key in ("admission_overhead", "merged_stream_p50_ms", "direct_serve_iter_ms", "async_submit_ms"):
    assert key in data, f"BENCH_async.json missing {key!r}"
    assert data[key] > 0, f"BENCH_async.json {key!r} not positive: {data[key]}"
# Loose smoke-safe ceiling; the strict 10% bar is asserted by
# bench_async_serve.py itself outside smoke mode.
assert data["admission_overhead"] <= 2.0, data["admission_overhead"]
mode = "smoke" if data.get("smoke") else "full"
print(
    f"ci: async bench ok ({mode}: overhead x{data['admission_overhead']:.3f}, "
    f"merged p50 {data['merged_stream_p50_ms']:.1f}ms)"
)
PY
else
  echo "ci: BENCH_async.json missing (async benchmark did not run?)" >&2
  exit 1
fi

if [ -f BENCH_distributed.json ]; then
  echo "ci: distributed benchmark artefact check (BENCH_distributed.json)"
  python - <<'PY'
import json
from pathlib import Path

data = json.loads(Path("BENCH_distributed.json").read_text())
for key in ("routing_overhead", "direct_serve_iter_ms", "routed_submit_ms", "nodes"):
    assert key in data, f"BENCH_distributed.json missing {key!r}"
    assert data[key] > 0, f"BENCH_distributed.json {key!r} not positive: {data[key]}"
# Loose smoke-safe ceiling; the strict 15% bar is asserted by
# bench_distributed.py itself outside smoke mode.
assert data["routing_overhead"] <= 2.0, data["routing_overhead"]
mode = "smoke" if data.get("smoke") else "full"
print(
    f"ci: distributed bench ok ({mode}: {data['nodes']} nodes, "
    f"routing overhead x{data['routing_overhead']:.3f})"
)
PY
else
  echo "ci: BENCH_distributed.json missing (distributed benchmark did not run?)" >&2
  exit 1
fi

if [ -f BENCH_soak.json ]; then
  echo "ci: soak benchmark artefact check (BENCH_soak.json)"
  python - <<'PY'
import json
from pathlib import Path

data = json.loads(Path("BENCH_soak.json").read_text())
for key in (
    "by_status", "latency_ms", "admission_rejects", "kills",
    "recovery_rounds_max", "throughput_rps", "violations", "leaks",
):
    assert key in data, f"BENCH_soak.json missing {key!r}"
assert data["violations"] == 0, f"soak ran with violations: {data['violations']}"
assert data["leaks"] == 0, f"soak leaked resources: {data['leaks']}"
assert data["kills"] >= 1, "the soak must include a scheduled node kill"
assert data["recovery_rounds_max"] <= data["recovery_rounds_bound"], data
assert data["throughput_rps"] > 0, data["throughput_rps"]
assert data["replay_by_status_identical"] is True, "soak replay diverged"
ok = data["latency_ms"].get("ok", {})
assert ok.get("count", 0) > 0 and ok.get("p99", 0) >= ok.get("p50", 0), ok

http = data.get("http")
assert http is not None, "BENCH_soak.json missing the paced HTTP trajectory"
for key in (
    "pace", "by_status", "network_faults", "degraded_serves", "kills",
    "recovery_rounds_max", "throughput_rps", "violations", "leaks",
):
    assert key in http, f"BENCH_soak.json http section missing {key!r}"
assert http["pace"] > 0, "the HTTP trajectory must replay paced (open-loop)"
assert http["violations"] == 0, f"http soak ran with violations: {http['violations']}"
assert http["leaks"] == 0, f"http soak leaked resources: {http['leaks']}"
assert http["network_faults"] >= 4, "all four network chaos kinds must fire"
assert http["kills"] >= 1, "the http soak must include a scheduled node kill"
assert http["recovery_rounds_max"] <= http["recovery_rounds_bound"], http
assert http["parity_checked"] == http["requests"], http
assert http["replay_by_status_identical"] is True, "http soak replay diverged"

mode = "smoke" if data.get("smoke") else "full"
print(
    f"ci: soak bench ok ({mode}: {data['requests']} requests, "
    f"{data['throughput_rps']:.0f} outcomes/s, ok p50 {ok['p50']:.0f}ms "
    f"p99 {ok['p99']:.0f}ms, recovery {data['recovery_rounds_max']} round(s); "
    f"http: {http['network_faults']} network faults, pace {http['pace']})"
)
PY
else
  echo "ci: BENCH_soak.json missing (soak benchmark did not run?)" >&2
  exit 1
fi

if [ -f BENCH_cache.json ]; then
  echo "ci: cache-tier benchmark artefact check (BENCH_cache.json)"
  python - <<'PY'
import json
from pathlib import Path

data = json.loads(Path("BENCH_cache.json").read_text())
for key in ("warm_pass", "cold", "warmed_store", "in_session", "eviction"):
    assert key in data, f"BENCH_cache.json missing {key!r}"
cold, warmed, session = data["cold"], data["warmed_store"], data["in_session"]
# The acceptance observable: a fresh process serving from warmed stores never
# classifies and reports store hits.
assert cold["classifications"] > 0, cold
assert warmed["classifications"] == 0, "warmed serve re-classified"
assert warmed["analysis_store_hits"] > 0 and warmed["result_store_hits"] > 0, warmed
assert session["classifications"] == 0, session
assert session["hit_rate"] >= warmed["hit_rate"] >= cold["hit_rate"], (
    cold["hit_rate"], warmed["hit_rate"], session["hit_rate"],
)
eviction = data["eviction"]
assert eviction["evictions"] > 0, eviction
assert eviction["final_entries"] <= 4 * eviction["max_entries"], eviction
assert eviction["by_status_identical"] is True, "bounded serve diverged"
mode = "smoke" if data.get("smoke") else "full"
print(
    f"ci: cache bench ok ({mode}: warmed hit rate {warmed['hit_rate']:.2f} "
    f"with 0 classifications, {warmed['analysis_store_hits']} analysis + "
    f"{warmed['result_store_hits']} result store hits, "
    f"{eviction['evictions']} evictions bounded at {eviction['final_entries']} entries)"
)
PY
else
  echo "ci: BENCH_cache.json missing (cache-tier benchmark did not run?)" >&2
  exit 1
fi

echo "ci: all green"
