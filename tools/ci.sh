#!/usr/bin/env bash
# Single CI entry point: tier-1 tests plus the benchmark smoke pass.
#
#   tools/ci.sh            # run everything
#   tools/ci.sh -k mincut  # extra args are forwarded to bench_smoke.py
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="$PWD/src${PYTHONPATH:+:$PYTHONPATH}"

echo "ci: tier-1 test suite"
python -m pytest -x -q

echo "ci: parallel serving parity check (batch + streamed)"
python - <<'PY'
from repro.graphdb import generators
from repro.service import QuerySpec, ResilienceServer, Workload, resilience_serve

database = generators.random_labelled_graph(5, 14, "abcdexy", seed=3)
workload = Workload.coerce(
    ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a", QuerySpec("aa", max_nodes=1)] * 3
)
serial = resilience_serve(workload, database, parallel=False)
parallel = resilience_serve(workload, database, max_workers=2)
assert serial == parallel, "parallel serve diverged from serial results"
with ResilienceServer(database, max_workers=2) as server:
    batch = server.serve(workload)
    streamed = sorted(server.serve_iter(workload), key=lambda outcome: outcome.index)
    assert server.worker_pids(), "warm pool expected after serving"
assert batch == serial, "warm-pool serve diverged from serial results"
assert streamed == serial, "re-sorted serve_iter() diverged from the batch result"
print(f"ci: resilience serve parity ok ({len(serial)} outcomes, 2 workers, batch+stream)")
PY

echo "ci: conformance suite, on-disk analysis store cold then warm"
CONFORMANCE_STORE="$(mktemp -d)"
trap 'rm -rf "$CONFORMANCE_STORE"' EXIT
REPRO_ANALYSIS_STORE="$CONFORMANCE_STORE" python -m pytest -q tests/test_conformance.py
REPRO_ANALYSIS_STORE="$CONFORMANCE_STORE" python -m pytest -q tests/test_conformance.py
python - "$CONFORMANCE_STORE" <<'PY'
import sys

from repro.graphdb import generators
from repro.resilience import AnalysisStore, LanguageCache, resilience_many

directory = sys.argv[1]
database = generators.random_labelled_graph(5, 14, "abxy", seed=3)
queries = ["ax*b", "ab|bc", "(ab)*a", "a(ba)*", "ab|ba", "aa", "ε|a"]

store = AnalysisStore(directory)
cache = LanguageCache(store=store)
results = resilience_many(queries, database, cache=cache)
stats = store.stats()
assert stats.hits > 0, f"warm pass must hit the persisted store (stats: {stats})"
assert cache.stats.classifications == 0, "warm pass must not re-classify anything"
fresh = resilience_many(queries, database)
assert results == fresh, "store-served results diverged from fresh computation"
print(f"ci: analysis store warm pass ok ({stats.hits} hits, 0 classifications)")
PY

echo "ci: benchmark smoke pass (includes bench_resilience_serve)"
python tools/bench_smoke.py "$@"

echo "ci: all green"
