#!/usr/bin/env bash
# Single CI entry point: tier-1 tests plus the benchmark smoke pass.
#
#   tools/ci.sh            # run everything
#   tools/ci.sh -k mincut  # extra args are forwarded to bench_smoke.py
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="$PWD/src${PYTHONPATH:+:$PYTHONPATH}"

echo "ci: tier-1 test suite"
python -m pytest -x -q

echo "ci: parallel serving parity check"
python - <<'PY'
from repro.graphdb import generators
from repro.service import QuerySpec, Workload, resilience_serve

database = generators.random_labelled_graph(5, 14, "abcdexy", seed=3)
workload = Workload.coerce(
    ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a", QuerySpec("aa", max_nodes=1)] * 3
)
serial = resilience_serve(workload, database, parallel=False)
parallel = resilience_serve(workload, database, max_workers=2)
assert serial == parallel, "parallel serve diverged from serial results"
print(f"ci: resilience_serve parity ok ({len(serial)} outcomes, 2 workers)")
PY

echo "ci: benchmark smoke pass (includes bench_resilience_serve)"
python tools/bench_smoke.py "$@"

echo "ci: all green"
