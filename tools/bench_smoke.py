#!/usr/bin/env python
"""Smoke-run every benchmark in fast mode so perf harnesses cannot silently rot.

Each ``benchmarks/bench_*.py`` file is executed in its own pytest process with
``--benchmark-disable`` (pytest-benchmark then calls every benchmarked callable
exactly once instead of timing it), so a full smoke pass costs seconds, not
minutes.  Any collection error, import error or assertion failure fails the
smoke run, which makes benchmark bit-rot visible in CI even though benchmarks
are not part of the tier-1 test suite.

Usage::

    python tools/bench_smoke.py            # run every benchmark
    python tools/bench_smoke.py -k mincut  # only files whose name matches
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

# Benchmarks a full (unfiltered) smoke pass must always include: these are the
# only CI coverage of their subsystem's end-to-end path (the service benchmark
# exercises the process-pool serving path; the async benchmark exercises the
# admission-controlled front-end and emits BENCH_async.json; the distributed
# benchmark exercises the fingerprint-routed exchange and emits
# BENCH_distributed.json; the soak benchmark drives the chaos soak harness
# end to end and emits BENCH_soak.json; the flow-core benchmark emits the
# BENCH_flow.json artefact ci.sh's regression guard reads; the cache-tier
# benchmark proves the warm CLI → fresh-process serve path and emits
# BENCH_cache.json), so their absence is an error, not a silently smaller
# run.
REQUIRED_BENCHMARKS = frozenset(
    {
        "bench_resilience_serve.py",
        "bench_async_serve.py",
        "bench_distributed.py",
        "bench_soak.py",
        "bench_flow_core.py",
        "bench_cache_tier.py",
    }
)


def smoke_command(bench_file: Path) -> list[str]:
    return [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        "--benchmark-disable",
        str(bench_file),
    ]


def run_one(bench_file: Path, env: dict[str, str]) -> tuple[bool, float, str]:
    start = time.perf_counter()
    completed = subprocess.run(
        smoke_command(bench_file),
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    output = (completed.stdout or "") + (completed.stderr or "")
    return completed.returncode == 0, elapsed, output


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-k", "--keyword", default="", help="only run benchmark files whose name contains this"
    )
    args = parser.parse_args(argv)

    bench_files = sorted(BENCH_DIR.glob("bench_*.py"))
    if args.keyword:
        bench_files = [path for path in bench_files if args.keyword in path.name]
    if not bench_files:
        print("bench-smoke: no benchmark files matched", file=sys.stderr)
        return 2
    if not args.keyword:
        missing = REQUIRED_BENCHMARKS - {path.name for path in bench_files}
        if missing:
            print(
                "bench-smoke: required benchmark(s) missing: " + ", ".join(sorted(missing)),
                file=sys.stderr,
            )
            return 2

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    # Tell benchmarks they run in the smoke pass: timing assertions (e.g. the
    # serve speedup bar) must not turn CI red on a loaded runner.
    env["REPRO_BENCH_SMOKE"] = "1"

    failures: list[Path] = []
    for bench_file in bench_files:
        ok, elapsed, output = run_one(bench_file, env)
        status = "ok" if ok else "FAIL"
        print(f"bench-smoke: {bench_file.name:45s} {status:4s} ({elapsed:.1f}s)")
        if not ok:
            failures.append(bench_file)
            tail = output.strip().splitlines()[-25:]
            print("\n".join("    " + line for line in tail))

    print(
        f"bench-smoke: {len(bench_files) - len(failures)}/{len(bench_files)} benchmark files passed"
    )
    if failures:
        print(
            "bench-smoke: FAILED: " + ", ".join(path.name for path in failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
