"""Dev tool: search for a generic case-2 four-legged gadget wiring (Figure 6).

A wiring spec describes heads (receiving alpha'- and/or gamma'-paths, with
x-edges into V nodes) and V nodes (with beta'- and/or delta'-exits).  The
in/out blocks are heads whose first path letter comes from the completion.

We search for a wiring that verifies for several case-2 witnesses.
"""

from __future__ import annotations

import itertools
import random
import sys

from repro.languages import Language
from repro.languages.four_legged import FourLeggedWitness
from repro.hardness.gadgets import GadgetBuilder, PreGadget
from repro.hardness.verification import verify_gadget


def build_from_wiring(witness: FourLeggedWitness, wiring: dict) -> PreGadget | None:
    """Build a pre-gadget from a wiring spec; returns None if label constraint fails."""
    body = witness.body
    alpha_p, beta_p, gamma_p, delta_p = witness.alpha, witness.beta, witness.gamma, witness.delta
    in_type = wiring["in"][0]
    out_type = wiring["out"][0]
    label_in = alpha_p[0] if in_type == "A" else gamma_p[0]
    label_out = alpha_p[0] if out_type == "A" else gamma_p[0]
    if label_in != label_out:
        return None
    builder = GadgetBuilder()

    def v_node(i):
        return f"V{i}"

    # V exits
    for i, (has_beta, has_delta) in enumerate(wiring["vs"]):
        if has_beta:
            builder.add_word_path(v_node(i), beta_p, builder.fresh_node("b"))
        if has_delta:
            builder.add_word_path(v_node(i), delta_p, builder.fresh_node("d"))

    # heads
    for j, (recv_alpha, recv_gamma, targets) in enumerate(wiring["heads"]):
        head = f"H{j}"
        if recv_alpha:
            builder.add_word_path(builder.fresh_node("pa"), alpha_p, head)
        if recv_gamma:
            builder.add_word_path(builder.fresh_node("pg"), gamma_p, head)
        for t in targets:
            builder.add_edge(head, body, v_node(t))

    # in block
    in_word = alpha_p if in_type == "A" else gamma_p
    builder.add_word_path("t_in", in_word[1:], "HIN")
    for t in wiring["in"][1]:
        builder.add_edge("HIN", body, v_node(t))
    out_word = alpha_p if out_type == "A" else gamma_p
    builder.add_word_path("t_out", out_word[1:], "HOUT")
    for t in wiring["out"][1]:
        builder.add_edge("HOUT", body, v_node(t))

    return builder.build("t_in", "t_out", label_in, name="search")


WITNESSES = [
    # axb | cxd | cxb  (distinct letters)
    (Language.from_regex("axb|cxd|cxb"), FourLeggedWitness("x", "a", "b", "c", "d")),
    # aaaa (all letters equal)
    (Language.from_regex("aaaa"), FourLeggedWitness("a", "a", "aa", "aa", "a")),
    # a slightly longer-legs case-2 language: ayxb | cxd | cxb ... need valid stable case-2 witness
]


def check_wiring(wiring: dict, verbose: bool = False):
    results = []
    for language, witness in WITNESSES:
        gadget = build_from_wiring(witness, wiring)
        if gadget is None:
            return None
        v = verify_gadget(language, gadget)
        results.append(v)
        if verbose:
            print(f"  {language}: valid={v.valid} len={v.path_length} ({v.reason})")
        if not v.valid:
            return results
    return results


def random_wiring(rng: random.Random) -> dict:
    num_vs = rng.randint(3, 6)
    num_heads = rng.randint(2, 5)
    vs = []
    for _ in range(num_vs):
        vs.append((rng.random() < 0.6, rng.random() < 0.6))
    heads = []
    for _ in range(num_heads):
        recv_alpha = rng.random() < 0.6
        recv_gamma = rng.random() < 0.6
        if not recv_alpha and not recv_gamma:
            recv_gamma = True
        k = rng.randint(1, 2)
        targets = rng.sample(range(num_vs), min(k, num_vs))
        heads.append((recv_alpha, recv_gamma, targets))
    in_type = rng.choice(["A", "G"])
    out_type = in_type
    in_targets = rng.sample(range(num_vs), 1)
    out_targets = rng.sample(range(num_vs), 1)
    return {"vs": vs, "heads": heads, "in": (in_type, in_targets), "out": (out_type, out_targets)}


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    tries = int(sys.argv[2]) if len(sys.argv) > 2 else 20000
    rng = random.Random(seed)
    found = []
    for attempt in range(tries):
        wiring = random_wiring(rng)
        results = check_wiring(wiring)
        if results and all(r.valid for r in results):
            print("FOUND", wiring)
            for r in results:
                print("   path_len", r.path_length, "matches", r.num_matches)
            found.append(wiring)
            if len(found) >= 5:
                break
    if not found:
        print("no wiring found in", tries, "tries")


if __name__ == "__main__":
    main()
