"""repro -- reference implementation of *Resilience for Regular Path Queries:
Towards a Complexity Classification* (PODS 2025).

The package exposes three layers:

* :mod:`repro.languages` -- formal languages, automata, and the language classes
  of the paper (local, star-free, four-legged, bipartite chain, one-dangling, ...);
* :mod:`repro.graphdb`, :mod:`repro.rpq`, :mod:`repro.flow` -- the graph-database,
  regular-path-query and network-flow substrates;
* :mod:`repro.resilience`, :mod:`repro.hardness`, :mod:`repro.classify` -- the
  paper's contribution: resilience algorithms for the tractable classes, the
  hardness-gadget machinery, and the complexity classifier of Figure 1.

Quickstart::

    from repro import Language, GraphDatabase, resilience

    query = Language.from_regex("ax*b")
    database = GraphDatabase.from_edges([
        ("s", "a", "u"), ("u", "x", "v"), ("v", "x", "w"), ("w", "b", "t"),
    ])
    result = resilience(query, database)
    print(result.value, result.contingency_set)
"""

from .exceptions import (
    GadgetError,
    GadgetNotAvailableError,
    InfeasibleError,
    LanguageError,
    NotApplicableError,
    NotFiniteError,
    NotLocalError,
    RegexSyntaxError,
    ReproError,
    SearchBudgetExceeded,
)
from .graphdb import BagGraphDatabase, Fact, GraphDatabase
from .languages import EpsilonNFA, Language
from .resilience import ResilienceResult, resilience, resilience_many
from .rpq import RPQ
from .service import QueryOutcome, QuerySpec, Workload, resilience_serve

__version__ = "1.0.0"

__all__ = [
    "BagGraphDatabase",
    "EpsilonNFA",
    "Fact",
    "GadgetError",
    "GadgetNotAvailableError",
    "GraphDatabase",
    "InfeasibleError",
    "Language",
    "LanguageError",
    "NotApplicableError",
    "NotFiniteError",
    "NotLocalError",
    "QueryOutcome",
    "QuerySpec",
    "RPQ",
    "RegexSyntaxError",
    "ReproError",
    "ResilienceResult",
    "SearchBudgetExceeded",
    "Workload",
    "resilience",
    "resilience_many",
    "resilience_serve",
    "__version__",
]
