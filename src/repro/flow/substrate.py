"""Per-database flow substrates: the database-only halves of product networks.

Every flow-tractable resilience algorithm builds a product of the database
with a query structure (an RO-epsilon-NFA for Theorem 3.13, a BCL word
structure for Proposition 7.6).  The database half of that product — dense
node ids, per-label fact arcs with multiplicities, per-letter-pair fact
adjacency — does not depend on the query at all, so it is compiled **once per
database** and cached on the :class:`~repro.graphdb.index.DatabaseIndex`
(``index.substrates``), where `resilience_many`, the
:class:`~repro.service.server.ResilienceServer` workers and the benchmark
drivers all share it.  Per-query compilation then only wires automaton states
(or word positions) on top of the substrate's int arrays and emits a
:class:`~repro.flow.compiled.CompiledFlowGraph` directly — no
:class:`~repro.flow.network.FlowNetwork`, no tuple nodes, no ``repr``
sorting.

Node-id layout of the compiled product graphs (both shapes):

* id ``0`` is the source, id ``1`` the target;
* Theorem 3.13 product: database node ``i`` × automaton state ``j`` (states
  densely numbered in sorted-by-repr order) is id ``2 + j * num_db_nodes + i``
  — state-major, so wiring a whole state costs one addition per database node
  and no multiplication;
* Proposition 7.6 product: fact ``f``'s start vertex is ``2 + 2f`` and its
  end vertex ``2 + 2f + 1``.

The compiled graphs are value- and cut-identical to the object networks the
retained builders (:func:`~repro.resilience.local_flow.build_product_network`,
:func:`~repro.resilience.bcl_flow.build_bcl_network`) produce — pinned by the
differential tests and the conformance CI.
"""

from __future__ import annotations

from ..exceptions import NotLocalError
from ..graphdb.index import DatabaseIndex
from .compiled import CompiledFlowGraph, FlowGraphBuilder

_SOURCE_ID = 0
_TARGET_ID = 1


class ProductSubstrate:
    """Database half of the Theorem 3.13 product network, in columnar form.

    Attributes:
        num_db_nodes: number of dense database node ids.
        label_arcs: label -> ``(sources, targets, caps_interleaved, facts)``
            columns, one entry per fact with that label: ``sources`` /
            ``targets`` are dense node ids, ``caps_interleaved`` alternates
            the fact's multiplicity with the backward arc's 0 (ready for
            :meth:`~repro.flow.compiled.FlowGraphBuilder.extend_raw`), and
            ``facts`` are the key objects.
        graphs_compiled: how many per-query product graphs were compiled on
            top of this substrate (observability: > 1 proves substrate reuse).
        graph_hits: how many compilations were answered from the per-automaton
            compiled-graph cache instead (same query class, same database —
            the graph is a pure function of both, so repeats are solve-only).
    """

    __slots__ = ("num_db_nodes", "label_arcs", "graphs_compiled", "graph_hits", "_graphs")

    def __init__(self, index: DatabaseIndex) -> None:
        node_ids = index.node_ids
        facts = index.facts
        multiplicities = index.multiplicities
        self.num_db_nodes = len(index.nodes)
        self.label_arcs: dict[str, tuple[tuple, tuple, tuple, tuple]] = {}
        for label, fact_ids in index.facts_by_label.items():
            label_facts = tuple(facts[fact_id] for fact_id in fact_ids)
            sources = tuple(node_ids[fact.source] for fact in label_facts)
            targets = tuple(node_ids[fact.target] for fact in label_facts)
            caps_interleaved = tuple(
                value
                for fact_id in fact_ids
                for value in (
                    1 if multiplicities is None else multiplicities[fact_id],
                    0,
                )
            )
            self.label_arcs[label] = (sources, targets, caps_interleaved, label_facts)
        self.graphs_compiled = 0
        self.graph_hits = 0
        self._graphs: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProductSubstrate({self.num_db_nodes} nodes, "
            f"{len(self.label_arcs)} labels, {self.graphs_compiled} compiles)"
        )


class BclSubstrate:
    """Database half of the Proposition 7.6 BCL network.

    The per-fact finite arcs come straight from the index; the ∞ wiring
    between consecutive word letters depends only on the *letter pair*, so
    :meth:`pair_arcs` memoizes each pair's fact-adjacency — two BCL queries on
    one database whose words share a letter pair share the computed arcs.
    """

    __slots__ = ("_index", "_pairs", "graphs_compiled", "graph_hits", "_graphs")

    def __init__(self, index: DatabaseIndex) -> None:
        self._index = index
        self._pairs: dict[tuple[str, str], tuple[tuple[int, int], ...]] = {}
        self.graphs_compiled = 0
        self.graph_hits = 0
        self._graphs: dict = {}

    def pair_arcs(self, first: str, second: str) -> tuple[tuple[int, int], ...]:
        """``(fact_id, next_fact_id)`` pairs for consecutive letters, memoized.

        A pair ``(f, g)`` means fact ``f`` carries ``first`` and fact ``g``
        leaves ``f``'s target carrying ``second``.
        """
        key = (first, second)
        cached = self._pairs.get(key)
        if cached is None:
            index = self._index
            facts = index.facts
            outgoing = index.outgoing_by_label
            rows = []
            for fact_id in index.facts_by_label.get(first, ()):
                successors = outgoing.get((facts[fact_id].target, second))
                if successors:
                    rows.extend((fact_id, next_id) for next_id in successors)
            cached = tuple(rows)
            self._pairs[key] = cached
        return cached

    @property
    def memoized_pairs(self) -> int:
        """Number of distinct letter pairs whose adjacency has been computed."""
        return len(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BclSubstrate({len(self._index)} facts, {len(self._pairs)} pairs, "
            f"{self.graphs_compiled} compiles)"
        )


def product_substrate(index: DatabaseIndex) -> ProductSubstrate:
    """Return the (cached) Theorem 3.13 substrate of a database index."""
    substrate = index.substrates.get("product")
    if substrate is None:
        substrate = ProductSubstrate(index)
        index.substrates["product"] = substrate
    return substrate


def bcl_substrate(index: DatabaseIndex) -> BclSubstrate:
    """Return the (cached) Proposition 7.6 substrate of a database index."""
    substrate = index.substrates.get("bcl")
    if substrate is None:
        substrate = BclSubstrate(index)
        index.substrates["bcl"] = substrate
    return substrate


def compile_product_graph(read_once_automaton, index: DatabaseIndex) -> CompiledFlowGraph:
    """Compile the Theorem 3.13 product network ``N_{D,A}`` straight to arrays.

    Mirrors :func:`~repro.resilience.local_flow.build_product_network` exactly
    — same finite arcs (one per fact whose label the automaton reads, keyed by
    the fact), same ∞ wiring (epsilon transitions per database node, source
    to every initial pair, every final pair to target) — but emits a
    :class:`CompiledFlowGraph` over the cached substrate instead of an object
    network.
    """
    if not read_once_automaton.is_read_once():
        raise NotLocalError("the automaton passed to the Theorem 3.13 reduction must be read-once")
    from ..languages.automata import compile_automaton

    substrate = product_substrate(index)
    # The graph is a pure function of (automaton, database): repeats of a
    # query class on a warm database skip straight to the solver.  Automata
    # are small frozen dataclasses, so hashing one costs microseconds.
    cached = substrate._graphs.get(read_once_automaton)
    if cached is not None:
        substrate.graph_hits += 1
        return cached
    substrate.graphs_compiled += 1
    plan = compile_automaton(read_once_automaton)
    # repro: allow[det-repr-sort] -- canonical state numbering: automaton
    # states are frozen value types whose reprs are address-free
    states = sorted(read_once_automaton.states, key=repr)
    num_db_nodes = substrate.num_db_nodes
    # State-major product ids: state j occupies the contiguous id block
    # ``2 + j * num_db_nodes .. 2 + (j + 1) * num_db_nodes - 1``.
    state_offset = {
        state: 2 + position * num_db_nodes for position, state in enumerate(states)
    }
    builder = FlowGraphBuilder(2 + num_db_nodes * len(states), integral_hint=True)

    extend_raw = builder.extend_raw
    for label, pairs in plan.transitions_by_label.items():
        columns = substrate.label_arcs.get(label)
        if columns is None:
            continue
        (q_source, q_target) = pairs[0]  # read-once: exactly one per label
        source_offset = state_offset[q_source]
        target_offset = state_offset[q_target]
        sources, targets, caps_interleaved, label_facts = columns
        extend_raw(
            [
                node
                for source, target in zip(sources, targets)
                for node in (target_offset + target, source_offset + source)
            ],
            caps_interleaved,
            label_facts,
        )
    extend_infinite = builder.extend_infinite
    # repro: allow[det-repr-sort] -- canonical edge order over frozen value types
    for q_source, _, q_target in sorted(read_once_automaton.epsilon_transitions, key=repr):
        source_offset = state_offset[q_source]
        target_offset = state_offset[q_target]
        extend_infinite(
            (source_offset + node, target_offset + node) for node in range(num_db_nodes)
        )
    # repro: allow[det-repr-sort] -- canonical edge order over frozen value types
    for state in sorted(read_once_automaton.initial, key=repr):
        offset = state_offset[state]
        extend_infinite((_SOURCE_ID, offset + node) for node in range(num_db_nodes))
    # repro: allow[det-repr-sort] -- canonical edge order over frozen value types
    for state in sorted(read_once_automaton.final, key=repr):
        offset = state_offset[state]
        extend_infinite((offset + node, _TARGET_ID) for node in range(num_db_nodes))
    graph = builder.build(_SOURCE_ID, _TARGET_ID, trim=True)
    substrate._graphs[read_once_automaton] = graph
    return graph


def compile_bcl_graph(
    structure, index: DatabaseIndex, removed_fact_ids: frozenset[int] = frozenset()
) -> CompiledFlowGraph:
    """Compile the Proposition 7.6 network straight to arrays.

    ``removed_fact_ids`` holds the facts the preprocessing step removes
    unconditionally (one-letter words of the language): instead of building a
    copy of the database without them — which would defeat the per-database
    substrate — their arcs and attachments are simply skipped, which yields
    the identical network.
    """
    if index.multiplicities is None:  # pragma: no cover - bcl runs on bag views
        raise ValueError("the BCL reduction requires a bag database index")
    substrate = bcl_substrate(index)
    cache_key = (structure, removed_fact_ids)
    cached = substrate._graphs.get(cache_key)
    if cached is not None:
        substrate.graph_hits += 1
        return cached
    substrate.graphs_compiled += 1
    multiplicities = index.multiplicities
    facts = index.facts
    num_facts = len(facts)
    builder = FlowGraphBuilder(2 + 2 * num_facts, integral_hint=True)
    removed = removed_fact_ids

    add = builder.add
    add_infinite = builder.add_infinite
    # One finite-capacity edge start(f) -> end(f) per surviving fact.
    for fact_id in range(num_facts):
        if fact_id not in removed:
            base = 2 + 2 * fact_id
            add(base, base + 1, multiplicities[fact_id], facts[fact_id])

    # ∞ wiring between consecutive letters of each word (forward words in
    # word order, reversed words the other way).
    for word in sorted(structure.forward_words):
        for position in range(len(word) - 1):
            for fact_id, next_id in substrate.pair_arcs(word[position], word[position + 1]):
                if fact_id not in removed and next_id not in removed:
                    add_infinite(2 + 2 * fact_id + 1, 2 + 2 * next_id)
    for word in sorted(structure.reversed_words):
        for position in range(len(word) - 1):
            for fact_id, next_id in substrate.pair_arcs(word[position], word[position + 1]):
                if fact_id not in removed and next_id not in removed:
                    add_infinite(2 + 2 * next_id + 1, 2 + 2 * fact_id)

    # Source / target attachments on endpoint letters.
    for letter in sorted(structure.source_letters):
        for fact_id in index.facts_by_label.get(letter, ()):
            if fact_id not in removed:
                add_infinite(_SOURCE_ID, 2 + 2 * fact_id)
    for letter in sorted(structure.target_letters):
        for fact_id in index.facts_by_label.get(letter, ()):
            if fact_id not in removed:
                add_infinite(2 + 2 * fact_id + 1, _TARGET_ID)
    graph = builder.build(_SOURCE_ID, _TARGET_ID, trim=True)
    substrate._graphs[cache_key] = graph
    return graph
