"""Array-native flow core: compiled residual graphs and a fast Dinic solver.

The object layer (:class:`~repro.flow.network.FlowNetwork` of tuple-keyed nodes
and frozen :class:`~repro.flow.network.FlowEdge` dataclasses, solved by the
pure-Python :func:`~repro.flow.mincut.min_cut`) is the semantics of this
package; it is kept as the differential reference.  This module is the hot
path: a :class:`CompiledFlowGraph` stores the residual graph as flat ``int``
arrays in CSR form — dense node ids, per-node contiguous arc ranges, explicit
reverse-arc indices — and :func:`min_cut_compiled` runs Dinic with a true
blocking-flow DFS directly over those arrays.

Representation invariants:

* **Dense node ids.**  Nodes are ``0 .. num_nodes-1``; callers (the reduction
  compilers in :mod:`repro.flow.substrate`) assign ids arithmetically, so no
  tuples are ever hashed or sorted while solving.
* **CSR arcs.**  Residual arcs are numbered by *position*: node ``v``'s arcs
  occupy ``adj_start[v] .. adj_start[v+1] - 1`` of the flat ``arc_head`` /
  ``arc_capacity`` / ``arc_rev`` arrays, so the solver's cursors are plain
  array indices and an arc id needs no indirection to find its capacity.
  ``arc_rev[p]`` is the position of arc ``p``'s reverse arc; edge ``e``'s
  forward arc sits at ``forward_pos[e]``.
* **Exact arithmetic.**  When every positive finite capacity is integral (the
  resilience reductions only produce integer multiplicities), capacities are
  stored as Python ints and the whole computation is exact; the final value is
  snapped to ``float`` exactly as the reference solver does.  Fractional
  capacities are kept as given — no rounding is ever applied.
* **∞ sentinel.**  Infinite capacities are stored as the explicit sentinel
  ``math.inf``; an augmenting path whose bottleneck is the sentinel proves no
  finite cut exists, and the solver returns infinity without ever doing
  ``inf - inf`` arithmetic.
* **Canonical cuts.**  After any exact maximum flow, the set of nodes
  reachable from the source in the residual graph is the unique
  inclusion-minimal min-cut source side — it does not depend on augmentation
  order.  Both solvers therefore return the *same* cut edges on the same
  network, which is what lets the serving layer force either solver and get
  byte-identical outcomes (pinned by the conformance suite and ``tools/ci.sh``).

:func:`fast_min_cut` is a drop-in replacement for
:func:`~repro.flow.mincut.min_cut` on a :class:`FlowNetwork`;
:func:`solve_min_cut` is the reductions' entry point on an already-compiled
graph, honouring the ``REPRO_FLOW_SOLVER`` environment variable
(``"fast"`` — the default — or ``"reference"``).
"""

from __future__ import annotations

import math
import os
from collections import deque
from dataclasses import dataclass

from ..exceptions import ReproError
from .mincut import MinCutResult, min_cut
from .network import FlowNetwork, Node

INFINITY = math.inf

#: Environment variable selecting the min-cut solver used by the resilience
#: reductions: ``"fast"`` (array Dinic, default) or ``"reference"`` (the
#: retained object-layer :func:`~repro.flow.mincut.min_cut`).
FLOW_SOLVER_ENV = "REPRO_FLOW_SOLVER"

_SOLVERS = ("fast", "reference")


def default_flow_solver() -> str:
    """Return the solver selected by ``REPRO_FLOW_SOLVER`` (default ``"fast"``)."""
    mode = os.environ.get(FLOW_SOLVER_ENV, "fast")
    if mode not in _SOLVERS:
        raise ReproError(
            f"unknown flow solver {mode!r} in ${FLOW_SOLVER_ENV} (expected one of {_SOLVERS})"
        )
    return mode


class CompiledFlowGraph:
    """An immutable residual flow graph compiled to flat CSR arrays.

    Attributes:
        num_nodes: number of dense node ids (``0 .. num_nodes-1``).
        source, target: dense ids of the source and target.
        num_edges: number of *edges* (each edge owns a forward and a backward
            residual arc).
        adj_start: CSR offsets (length ``num_nodes + 1``): node ``v``'s arcs
            are positions ``adj_start[v] .. adj_start[v+1] - 1``.
        arc_head: head node of the arc at each position (length ``2 * num_edges``).
        arc_capacity: capacity at each position — exact ints (or raw floats
            for fractional networks) for finite forward arcs, the ``math.inf``
            sentinel for infinite ones, ``0`` for backward arcs.
        arc_rev: position of each arc's reverse arc.
        forward_pos: position of each edge's forward arc (length ``num_edges``).
        arc_key: per-edge key (length ``num_edges``): the
            :class:`~repro.graphdb.database.Fact` a finite product arc encodes,
            ``None`` for structural (infinite) arcs.
        integral: whether every positive finite capacity is integral (the
            solver then runs in exact integer arithmetic).
    """

    __slots__ = (
        "num_nodes",
        "source",
        "target",
        "num_edges",
        "adj_start",
        "arc_head",
        "arc_capacity",
        "arc_rev",
        "forward_pos",
        "arc_key",
        "integral",
    )

    def __init__(
        self,
        num_nodes: int,
        source: int,
        target: int,
        adj_start: list[int],
        arc_head: list[int],
        arc_capacity: list,
        arc_rev: list[int],
        forward_pos: list[int],
        arc_key: list,
        integral: bool,
    ) -> None:
        self.num_nodes = num_nodes
        self.source = source
        self.target = target
        self.num_edges = len(arc_key)
        self.adj_start = adj_start
        self.arc_head = arc_head
        self.arc_capacity = arc_capacity
        self.arc_rev = arc_rev
        self.forward_pos = forward_pos
        self.arc_key = arc_key
        self.integral = integral

    def edge_endpoints(self, edge: int) -> tuple[int, int]:
        """Return ``(tail, head)`` node ids of edge ``edge``."""
        position = self.forward_pos[edge]
        return self.arc_head[self.arc_rev[position]], self.arc_head[position]

    def edge_capacity(self, edge: int):
        """Return the (original) capacity of edge ``edge``."""
        return self.arc_capacity[self.forward_pos[edge]]

    def to_network(self) -> FlowNetwork:
        """Materialize the object-layer :class:`FlowNetwork` of this graph.

        Used by the ``"reference"`` solver mode: the retained
        :func:`~repro.flow.mincut.min_cut` then runs on exactly the network
        this graph encodes, so the two solvers are differential twins.
        """
        network = FlowNetwork(source=self.source, target=self.target)
        arc_head = self.arc_head
        arc_rev = self.arc_rev
        capacities = self.arc_capacity
        for edge, position in enumerate(self.forward_pos):
            network.add_edge(
                arc_head[arc_rev[position]],
                arc_head[position],
                capacities[position],
                key=self.arc_key[edge],
            )
        return network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "int" if self.integral else "float"
        return (
            f"CompiledFlowGraph({self.num_nodes} nodes, {self.num_edges} edges, "
            f"{kind} capacities)"
        )


class FlowGraphBuilder:
    """Accumulates edges into the flat arrays of a :class:`CompiledFlowGraph`.

    Callers address nodes by dense int ids (``0 .. num_nodes-1``).  Zero (and
    negative) capacity edges are dropped on the spot: they can never carry
    flow nor appear in a cut, and skipping them keeps the solver's arrays free
    of dead weight — mirroring the reference solver, which never hands them to
    Dinic either.

    During accumulation the edge at index ``e`` is stored interleaved:
    ``_raw_target[2e]`` is its head, ``_raw_target[2e + 1]`` its tail, and
    ``_raw_capacity[2e]`` / ``_raw_capacity[2e + 1]`` its forward / backward
    (always 0) capacity; :meth:`build` rearranges the arcs into CSR order.
    """

    __slots__ = ("num_nodes", "integral_hint", "_raw_target", "_raw_capacity", "_raw_key")

    def __init__(self, num_nodes: int, *, integral_hint: bool = False) -> None:
        self.num_nodes = num_nodes
        # Compilers whose capacities are integer multiplicities by construction
        # (the resilience reductions) set the hint so build() skips the per-arc
        # integrality scan and conversion.
        self.integral_hint = integral_hint
        self._raw_target: list[int] = []
        self._raw_capacity: list = []
        self._raw_key: list = []

    def add(self, source: int, target: int, capacity, key=None) -> None:
        """Add one finite-capacity edge (zero-capacity edges are dropped)."""
        if capacity <= 0:
            return
        self._raw_target.append(target)
        self._raw_target.append(source)
        self._raw_capacity.append(capacity)
        self._raw_capacity.append(0)
        self._raw_key.append(key)

    def add_infinite(self, source: int, target: int, key=None) -> None:
        """Add one ∞-capacity (structural) edge."""
        self._raw_target.append(target)
        self._raw_target.append(source)
        self._raw_capacity.append(INFINITY)
        self._raw_capacity.append(0)
        self._raw_key.append(key)

    def extend_infinite(self, pairs) -> None:
        """Bulk-add ∞-capacity edges from ``(source, target)`` pairs.

        The compilers' structural wiring (epsilon transitions, source/target
        attachments) is thousands of edges per graph; three C-level extends
        beat one Python call per edge.
        """
        interleaved = [node for source, target in pairs for node in (target, source)]
        count = len(interleaved) // 2
        self._raw_target.extend(interleaved)
        self._raw_capacity.extend((INFINITY, 0) * count)
        self._raw_key.extend((None,) * count)

    def extend_raw(self, targets_interleaved, capacities_interleaved, keys) -> None:
        """Bulk-add pre-interleaved arc columns (the substrate compilers' path).

        ``targets_interleaved`` alternates forward-arc head and tail (i.e.
        ``[head_0, tail_0, head_1, tail_1, ...]``), ``capacities_interleaved``
        alternates forward capacity and the backward 0, and ``keys`` holds one
        key per edge.  The caller guarantees positive capacities.
        """
        self._raw_target.extend(targets_interleaved)
        self._raw_capacity.extend(capacities_interleaved)
        self._raw_key.extend(keys)

    def build(self, source: int, target: int, *, trim: bool = False) -> CompiledFlowGraph:
        """Freeze the accumulated edges into a CSR :class:`CompiledFlowGraph`.

        With ``trim=True`` the graph is restricted to its *useful* core first:
        nodes reachable from the source and co-reachable to the target along
        forward edges (the flow-network analogue of automaton trimming,
        Definition C.3).  Trimming never changes the max-flow value nor the
        canonical cut edges — flow decomposes into source→target paths, which
        live entirely inside the useful core, and a dropped edge is never
        saturated, hence never crosses the residual-reachability cut — it only
        shrinks the arrays the solver sweeps each phase.  The reduction
        compilers trim; :func:`compile_network` does not (its drop-in contract
        includes the reference's full ``source_side``).
        """
        raw_target = self._raw_target
        raw_capacity = self._raw_capacity
        raw_key = self._raw_key
        num_nodes = self.num_nodes
        if self.integral_hint:
            integral = True
        else:
            integral = all(
                # repro: allow[exact-float-cast] -- integrality scan only: it
                # classifies capacities; no result value flows from this float
                capacity == INFINITY or float(capacity).is_integer()
                for capacity in raw_capacity[::2]
            )
            if integral:
                raw_capacity = [
                    INFINITY if capacity == INFINITY else int(capacity)
                    for capacity in raw_capacity
                ]
        if trim:
            raw_target, raw_capacity, raw_key = self._trim(
                source, target, raw_target, raw_capacity, raw_key
            )
        num_arcs = len(raw_target)
        # Tail of arc ``a`` is the head of its pair partner: swap the
        # interleaved halves with C-level slice assignments.
        raw_tail = raw_target[:]
        raw_tail[0::2] = raw_target[1::2]
        raw_tail[1::2] = raw_target[0::2]
        # Counting sort into CSR position order.
        counts = [0] * (num_nodes + 1)
        for tail in raw_tail:
            counts[tail + 1] += 1
        adj_start = counts
        for node in range(1, num_nodes + 1):
            adj_start[node] += adj_start[node - 1]
        cursor = adj_start[:-1]
        arc_head = [0] * num_arcs
        arc_capacity: list = [0] * num_arcs
        arc_rev = [0] * num_arcs
        forward_pos = [0] * (num_arcs // 2)
        for edge in range(num_arcs // 2):
            forward = 2 * edge
            backward = forward + 1
            tail = raw_tail[forward]
            head = raw_target[forward]
            forward_at = cursor[tail]
            cursor[tail] = forward_at + 1
            backward_at = cursor[head]
            cursor[head] = backward_at + 1
            arc_head[forward_at] = head
            arc_head[backward_at] = tail
            arc_capacity[forward_at] = raw_capacity[forward]
            arc_rev[forward_at] = backward_at
            arc_rev[backward_at] = forward_at
            forward_pos[edge] = forward_at
        return CompiledFlowGraph(
            num_nodes,
            source,
            target,
            adj_start,
            arc_head,
            arc_capacity,
            arc_rev,
            forward_pos,
            raw_key,
            integral,
        )

    @staticmethod
    def _trim(
        source: int, target: int, raw_target: list[int], raw_capacity: list, raw_key: list
    ) -> tuple[list[int], list, list]:
        """Drop every edge with a useless endpoint (see :meth:`build`)."""
        heads = raw_target[0::2]
        tails = raw_target[1::2]
        successors: dict[int, list[int]] = {}
        predecessors: dict[int, list[int]] = {}
        for tail, head in zip(tails, heads):
            successors.setdefault(tail, []).append(head)
            predecessors.setdefault(head, []).append(tail)

        def closure(start: int, adjacency: dict[int, list[int]]) -> set[int]:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbour in adjacency.get(node, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            return seen

        useful = closure(source, successors) & closure(target, predecessors)
        kept = [
            edge
            for edge, (tail, head) in enumerate(zip(tails, heads))
            if tail in useful and head in useful
        ]
        if len(kept) == len(raw_key):
            return raw_target, raw_capacity, raw_key
        new_target: list[int] = []
        new_capacity: list = []
        for edge in kept:
            forward = 2 * edge
            new_target.append(raw_target[forward])
            new_target.append(raw_target[forward + 1])
            new_capacity.append(raw_capacity[forward])
            new_capacity.append(0)
        return new_target, new_capacity, [raw_key[edge] for edge in kept]


@dataclass(frozen=True)
class CompiledCut:
    """A min-cut of a :class:`CompiledFlowGraph`.

    Attributes:
        value: minimum cut cost (``math.inf`` when no finite cut exists;
            a float of an exact int for integral graphs).
        cut_edges: edge ids of one minimum cut, ascending (empty when the
            value is 0 or infinite).
        cut_keys: the keys of those edges, aligned with ``cut_edges``.
        source_side: dense ids of the nodes reachable from the source in the
            final residual graph (empty for infinite cuts).
    """

    value: float
    cut_edges: tuple[int, ...]
    cut_keys: tuple
    source_side: frozenset[int]

    @property
    def is_infinite(self) -> bool:
        return self.value == INFINITY


_INFINITE_CUT = CompiledCut(INFINITY, (), (), frozenset())


def min_cut_compiled(graph: CompiledFlowGraph) -> CompiledCut:
    """Solve MinCut on a compiled graph with an array-native Dinic.

    Value-identical to running the reference :func:`~repro.flow.mincut.min_cut`
    on :meth:`CompiledFlowGraph.to_network`, and cut-identical too whenever the
    arithmetic is exact (integral capacities, or floats without rounding): the
    residual-reachable source side of an exact max flow is canonical.
    """
    source, target = graph.source, graph.target
    if source == target:
        return CompiledCut(INFINITY, (), (), frozenset({source}))
    num_nodes = graph.num_nodes
    adj_start = graph.adj_start
    arc_head = graph.arc_head
    arc_rev = graph.arc_rev
    caps = list(graph.arc_capacity)

    total = 0
    while True:
        # BFS phase: level graph over positive-residual arcs.  Expansion stops
        # at the target's level — deeper nodes cannot lie on a shortest
        # augmenting path, so leaving them at level -1 only prunes the DFS.
        level = [-1] * num_nodes
        level[source] = 0
        queue = deque((source,))
        target_level = -1
        while queue:
            node = queue.popleft()
            next_level = level[node] + 1
            if next_level == target_level:
                break
            for position in range(adj_start[node], adj_start[node + 1]):
                if caps[position] > 0:
                    head = arc_head[position]
                    if level[head] < 0:
                        level[head] = next_level
                        if head == target:
                            target_level = next_level
                        else:
                            queue.append(head)
        if target_level < 0:
            break

        # Blocking-flow phase: one iterative DFS whose per-node cursors are
        # absolute positions into the CSR arrays.
        cursor = adj_start[:-1]
        path: list[int] = []
        node = source
        while True:
            if node == target:
                bottleneck = INFINITY
                first_min = -1
                for index, position in enumerate(path):
                    capacity = caps[position]
                    if capacity < bottleneck:
                        bottleneck = capacity
                        first_min = index
                if bottleneck == INFINITY:
                    # An all-∞ augmenting path: no finite cut exists.  Return
                    # before touching capacities (inf - inf is undefined).
                    return _INFINITE_CUT
                for position in path:
                    caps[position] -= bottleneck
                    caps[arc_rev[position]] += bottleneck
                total += bottleneck
                # Retreat to the first saturated arc (its capacity equalled
                # the bottleneck, so the subtraction zeroed it exactly) and
                # keep extending from its tail.
                node = arc_head[arc_rev[path[first_min]]]
                del path[first_min:]
                continue
            tail = node
            position = cursor[tail]
            end = adj_start[tail + 1]
            advanced = False
            next_level = level[tail] + 1
            while position < end:
                if caps[position] > 0:
                    head = arc_head[position]
                    if level[head] == next_level:
                        path.append(position)
                        node = head
                        advanced = True
                        break
                position += 1
            cursor[tail] = position
            if advanced:
                continue
            # Dead end: prune the node from the level graph and retreat.
            if not path:
                break
            level[node] = -1
            position = path.pop()
            node = arc_head[arc_rev[position]]
            cursor[node] += 1

    # Cut recovery: residual reachability from the source (canonical).
    seen = bytearray(num_nodes)
    seen[source] = 1
    stack = [source]
    while stack:
        node = stack.pop()
        for position in range(adj_start[node], adj_start[node + 1]):
            if caps[position] > 0:
                head = arc_head[position]
                if not seen[head]:
                    seen[head] = 1
                    stack.append(head)
    original = graph.arc_capacity
    cut_edges = []
    for edge, position in enumerate(graph.forward_pos):
        if seen[arc_head[arc_rev[position]]] and not seen[arc_head[position]]:
            if original[position] > 0:
                cut_edges.append(edge)
    # repro: allow[exact-float-cast] -- sanctioned result snap: integral optima
    # are reported as floats exactly as the reference solver formats them
    value = float(total) if graph.integral else total
    return CompiledCut(
        value,
        tuple(cut_edges),
        tuple(graph.arc_key[edge] for edge in cut_edges),
        frozenset(node for node in range(num_nodes) if seen[node]),
    )


def solve_min_cut(graph: CompiledFlowGraph, solver: str | None = None) -> CompiledCut:
    """Solve a compiled graph with the selected solver.

    ``solver`` overrides the ``REPRO_FLOW_SOLVER`` environment default.  The
    ``"reference"`` mode materializes the graph back into a
    :class:`FlowNetwork` and runs the retained object-layer
    :func:`~repro.flow.mincut.min_cut` — on exact-arithmetic graphs both modes
    return identical values *and* identical cut edges (canonical cuts), which
    the conformance CI asserts byte-for-byte.
    """
    mode = solver if solver is not None else default_flow_solver()
    if mode == "fast":
        return min_cut_compiled(graph)
    if mode != "reference":
        raise ReproError(f"unknown flow solver {mode!r} (expected one of {_SOLVERS})")
    # Map the cut back by edge identity: FlowEdge equality is by value, and
    # parallel edges of a product network can be value-equal.
    network = graph.to_network()
    result = min_cut(network)
    if result.value == INFINITY:
        return _INFINITE_CUT
    edge_ids = {id(edge): index for index, edge in enumerate(network.edges)}  # repro: allow[det-id] -- identity map from edge objects to their positions; ids are keys, never ordered or emitted
    cut_edges = tuple(edge_ids[id(edge)] for edge in result.cut_edges)
    return CompiledCut(
        result.value,
        cut_edges,
        tuple(edge.key for edge in result.cut_edges),
        frozenset(result.source_side),
    )


def compile_network(network: FlowNetwork) -> tuple[CompiledFlowGraph, list[Node]]:
    """Compile an object-layer :class:`FlowNetwork` into a flat graph.

    Nodes get dense ids by first appearance (source, target, then edge
    endpoints in edge order) — never by sorting reprs.  Edge keys are the
    original :class:`~repro.flow.network.FlowEdge` objects so results can be
    mapped back losslessly.  Returns the graph and the id → node table.
    """
    index_of: dict[Node, int] = {}
    order: list[Node] = []

    def node_id(node: Node) -> int:
        identifier = index_of.get(node)
        if identifier is None:
            identifier = len(order)
            index_of[node] = identifier
            order.append(node)
        return identifier

    node_id(network.source)
    node_id(network.target)
    edges = network.edges
    endpoints = [(node_id(edge.source), node_id(edge.target)) for edge in edges]
    builder = FlowGraphBuilder(len(order))
    for (source, target), edge in zip(endpoints, edges):
        if edge.capacity == INFINITY:
            builder.add_infinite(source, target, key=edge)
        else:
            builder.add(source, target, edge.capacity, key=edge)
    graph = builder.build(index_of[network.source], index_of[network.target])
    return graph, order


def fast_min_cut(network: FlowNetwork) -> MinCutResult:
    """Array-native drop-in replacement for :func:`~repro.flow.mincut.min_cut`.

    Compiles the network once and solves it with :func:`min_cut_compiled`.
    On exact-arithmetic networks (integral capacities, or floats that add and
    subtract without rounding) the returned :class:`MinCutResult` is equal to
    the reference solver's field for field — same value, same cut edges in
    the same order, same source side — because the residual-reachable min cut
    is canonical.  Pinned by the hypothesis differential suite.
    """
    if network.source == network.target:
        return MinCutResult(INFINITY, (), frozenset({network.source}), INFINITY)
    graph, nodes = compile_network(network)
    cut = min_cut_compiled(graph)
    if cut.value == INFINITY:
        return MinCutResult(INFINITY, (), frozenset(), INFINITY)
    return MinCutResult(
        cut.value,
        cut.cut_keys,  # keys are the FlowEdge objects themselves
        frozenset(nodes[identifier] for identifier in cut.source_side),
        cut.value,
    )
