"""Network-flow substrate: object-layer flow networks (the differential
reference) and the array-native compiled core the reductions run on.

See ``src/repro/flow/README.md`` for the compiled-graph layout, the exactness
invariants and the substrate lifecycle.
"""

from .compiled import (
    FLOW_SOLVER_ENV,
    CompiledCut,
    CompiledFlowGraph,
    FlowGraphBuilder,
    compile_network,
    default_flow_solver,
    fast_min_cut,
    min_cut_compiled,
    solve_min_cut,
)
from .mincut import INFINITY, MinCutResult, min_cut, min_cut_value
from .network import FlowEdge, FlowNetwork
from .substrate import (
    BclSubstrate,
    ProductSubstrate,
    bcl_substrate,
    compile_bcl_graph,
    compile_product_graph,
    product_substrate,
)

__all__ = [
    "FLOW_SOLVER_ENV",
    "INFINITY",
    "BclSubstrate",
    "CompiledCut",
    "CompiledFlowGraph",
    "FlowEdge",
    "FlowGraphBuilder",
    "FlowNetwork",
    "MinCutResult",
    "ProductSubstrate",
    "bcl_substrate",
    "compile_bcl_graph",
    "compile_network",
    "compile_product_graph",
    "default_flow_solver",
    "fast_min_cut",
    "min_cut",
    "min_cut_compiled",
    "min_cut_value",
    "product_substrate",
    "solve_min_cut",
]
