"""Network-flow substrate: flow networks and Dinic max-flow / min-cut."""

from .mincut import INFINITY, MinCutResult, min_cut, min_cut_value
from .network import FlowEdge, FlowNetwork

__all__ = ["FlowEdge", "FlowNetwork", "INFINITY", "MinCutResult", "min_cut", "min_cut_value"]
