"""Maximum flow / minimum cut via Dinic's algorithm.

The implementation supports ``+infinity`` capacities exactly: an augmenting path
whose bottleneck is infinite proves that no finite cut exists, in which case the
minimum cut value is ``math.inf`` and no cut edge set is returned.

When every finite capacity is integral (the resilience reductions only produce
integer multiplicities), capacities are converted to Python ints so the whole
computation runs in exact integer arithmetic and the resulting value is snapped
to a float of that integer.  Networks with genuinely fractional capacities are
returned as-is: no ``isclose``-style rounding is applied, since it could snap a
genuinely fractional optimum to a nearby integer on large networks.

The min-cut *edges* are recovered from the residual graph after computing a
maximum flow: they are the edges leaving the set of nodes still reachable from
the source, and their keys let callers map the cut back to database facts.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from .network import FlowEdge, FlowNetwork, Node

INFINITY = math.inf


@dataclass
class MinCutResult:
    """The result of a MinCut computation.

    Attributes:
        value: the cost of a minimum cut (``math.inf`` when no finite cut exists).
        cut_edges: the edges of one minimum cut (empty when ``value`` is 0 or infinite).
        source_side: the nodes reachable from the source in the final residual graph.
        max_flow: the value of the maximum flow (equals ``value``).
    """

    value: float
    cut_edges: tuple[FlowEdge, ...]
    source_side: frozenset[Node]
    max_flow: float

    @property
    def cut_keys(self) -> tuple[object, ...]:
        """The keys of the cut edges (used to map cuts back to facts)."""
        return tuple(edge.key for edge in self.cut_edges)


class _Arc:
    __slots__ = ("target", "capacity", "reverse_index", "edge")

    def __init__(self, target: int, capacity: float, reverse_index: int, edge: FlowEdge | None) -> None:
        self.target = target
        self.capacity = capacity
        self.reverse_index = reverse_index
        self.edge = edge


class _Dinic:
    """Dinic's blocking-flow algorithm on an adjacency-list residual graph.

    The blocking-flow phase is iterative (explicit stack) so that large product
    networks do not hit Python's recursion limit.
    """

    def __init__(self, num_nodes: int) -> None:
        self.graph: list[list[_Arc]] = [[] for _ in range(num_nodes)]

    def add_edge(self, source: int, target: int, capacity: float, edge: FlowEdge | None) -> None:
        forward = _Arc(target, capacity, len(self.graph[target]), edge)
        backward = _Arc(source, 0, len(self.graph[source]), None)
        self.graph[source].append(forward)
        self.graph[target].append(backward)

    def _bfs_levels(self, source: int, target: int) -> list[int] | None:
        levels = [-1] * len(self.graph)
        levels[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for arc in self.graph[node]:
                if arc.capacity > 0 and levels[arc.target] < 0:
                    levels[arc.target] = levels[node] + 1
                    queue.append(arc.target)
        return levels if levels[target] >= 0 else None

    def _augment_once(self, source: int, target: int, levels: list[int], iters: list[int]) -> float:
        """Find one augmenting path in the level graph and push flow along it.

        Returns the amount pushed (0 when no augmenting path remains,
        ``INFINITY`` when an all-infinite path is found).
        """
        path: list[_Arc] = []
        node = source
        while True:
            if node == target:
                bottleneck = min((arc.capacity for arc in path), default=INFINITY)
                if bottleneck == INFINITY:
                    return INFINITY
                for arc in path:
                    arc.capacity -= bottleneck
                    self.graph[arc.target][arc.reverse_index].capacity += bottleneck
                return bottleneck
            advanced = False
            while iters[node] < len(self.graph[node]):
                arc = self.graph[node][iters[node]]
                if arc.capacity > 0 and levels[node] < levels[arc.target]:
                    path.append(arc)
                    node = arc.target
                    advanced = True
                    break
                iters[node] += 1
            if advanced:
                continue
            # Dead end: retreat one step (and make sure we do not retry this arc).
            if not path:
                return 0
            dead = node
            levels[dead] = -1
            arc = path.pop()
            node = self.graph[dead][arc.reverse_index].target
            iters[node] += 1

    def max_flow(self, source: int, target: int) -> float:
        # ``total`` stays an exact int when every capacity is an int.
        total = 0
        while True:
            levels = self._bfs_levels(source, target)
            if levels is None:
                return total
            iters = [0] * len(self.graph)
            while True:
                pushed = self._augment_once(source, target, levels, iters)
                if pushed == INFINITY:
                    return INFINITY
                if pushed == 0:
                    break
                total += pushed

    def reachable_from(self, source: int) -> set[int]:
        seen = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            for arc in self.graph[node]:
                if arc.capacity > 0 and arc.target not in seen:
                    seen.add(arc.target)
                    stack.append(arc.target)
        return seen


def min_cut(network: FlowNetwork) -> MinCutResult:
    """Solve the MinCut problem on a flow network.

    Returns the minimum cost of a cut, one witnessing set of cut edges, and the
    source side of the cut.  When the source and target are connected through
    infinite-capacity edges only, the value is ``math.inf`` and no cut is returned.
    """
    if network.source == network.target:
        return MinCutResult(INFINITY, (), frozenset({network.source}), INFINITY)
    # Dense node ids by first appearance (source, target, then edge endpoints
    # in edge order): one pass over the edges instead of materializing and
    # repr-sorting the O(E) ``nodes`` property — repr is arbitrarily expensive
    # for rich node objects, and sorting buys nothing (the cut recovered from
    # residual reachability is canonical whatever the node order).
    edges = network.edges
    index_of: dict[Node, int] = {network.source: 0}
    index_of.setdefault(network.target, len(index_of))
    nodes: list[Node] = list(index_of)
    for edge in edges:
        for node in (edge.source, edge.target):
            if node not in index_of:
                index_of[node] = len(nodes)
                nodes.append(node)
    solver = _Dinic(len(nodes))
    # When every finite capacity is integral, run the whole computation in
    # exact integer arithmetic; the resulting flow value is then an exact
    # integer and snapping is lossless.  Mixed or fractional capacities go
    # through float arithmetic and are reported unsnapped: rounding with
    # ``math.isclose`` can mis-round a genuinely fractional optimum.
    integral = all(
        # repro: allow[exact-float-cast] -- integrality scan only: it
        # classifies capacities ahead of the sanctioned result snap below
        edge.capacity == INFINITY or float(edge.capacity).is_integer()
        for edge in edges
        if edge.capacity > 0
    )
    for edge in edges:
        if edge.capacity <= 0:
            continue
        capacity = edge.capacity
        if integral and capacity != INFINITY:
            capacity = int(capacity)
        solver.add_edge(index_of[edge.source], index_of[edge.target], capacity, edge)
    value = solver.max_flow(0, index_of[network.target])
    if value == INFINITY:
        return MinCutResult(INFINITY, (), frozenset(), INFINITY)
    reachable_indices = solver.reachable_from(0)
    reachable = frozenset(nodes[index] for index in reachable_indices)
    cut_edges = tuple(
        edge
        for edge in edges
        if edge.capacity > 0 and edge.source in reachable and edge.target not in reachable
    )
    if integral:
        # repro: allow[exact-float-cast] -- sanctioned result snap: mirrors
        # the reference solver's float output format for integral optima
        value = float(value)
    return MinCutResult(value, cut_edges, reachable, value)


def min_cut_value(network: FlowNetwork) -> float:
    """Return only the minimum cut value of a network."""
    return min_cut(network).value
