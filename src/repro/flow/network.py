"""Flow networks (Section 2 of the paper).

A flow network is a directed graph with a source, a target, and a capacity for
each edge; capacities may be ``+infinity`` (represented exactly by
``math.inf``).  A *cut* is a set of edges whose removal disconnects the target
from the source; the MinCut problem asks for a cut of minimum total capacity.

Parallel edges are supported, and every edge can carry an arbitrary *key*
(e.g. the database fact it encodes) so that cuts can be mapped back to
contingency sets by the resilience algorithms.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

INFINITY = math.inf

Node = Hashable


@dataclass(frozen=True)
class FlowEdge:
    """One directed edge of a flow network."""

    source: Node
    target: Node
    capacity: float
    key: object = None

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacities must be non-negative")


@dataclass
class FlowNetwork:
    """A flow network ``(V, t_source, t_target, E, c)``."""

    source: Node
    target: Node
    edges: list[FlowEdge] = field(default_factory=list)

    def add_edge(self, source: Node, target: Node, capacity: float, key: object = None) -> FlowEdge:
        """Add an edge and return it.  Zero-capacity edges are kept (they never matter)."""
        edge = FlowEdge(source, target, capacity, key)
        self.edges.append(edge)
        return edge

    def add_edges(self, edges: Iterable[tuple[Node, Node, float]]) -> None:
        for source, target, capacity in edges:
            self.add_edge(source, target, capacity)

    @property
    def nodes(self) -> frozenset[Node]:
        result: set[Node] = {self.source, self.target}
        for edge in self.edges:
            result.add(edge.source)
            result.add(edge.target)
        return frozenset(result)

    @property
    def size(self) -> int:
        """``|N| = |V| + |E|`` as in the paper."""
        return len(self.nodes) + len(self.edges)

    def cost(self, edges: Iterable[FlowEdge]) -> float:
        """Return the total capacity of a set of edges."""
        return sum(edge.capacity for edge in edges)

    def is_cut(self, cut_edges: Iterable[FlowEdge]) -> bool:
        """Return whether removing the given edges disconnects target from source."""
        removed = set(cut_edges)
        adjacency: dict[Node, list[Node]] = {}
        for edge in self.edges:
            if edge in removed or edge.capacity == 0:
                continue
            adjacency.setdefault(edge.source, []).append(edge.target)
        seen = {self.source}
        stack = [self.source]
        while stack:
            node = stack.pop()
            if node == self.target:
                return False
            for successor in adjacency.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return True

    def __repr__(self) -> str:
        return f"FlowNetwork({len(self.nodes)} nodes, {len(self.edges)} edges)"
