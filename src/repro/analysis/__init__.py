"""Project-specific static analysis: invariants as machine-checked rules.

See ``README.md`` in this package for the rule catalogue, the pragma
convention, and the baseline workflow.  The public surface:

- :func:`analyze_source` — analyze one module's source text.
- :func:`analyze_paths` — analyze files/directories (what the CLI runs).
- :func:`default_checkers` / :func:`rule_catalogue` — the rule registry.
- :class:`Finding` / :class:`Checker` — the extension points.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .checkers import checkers_for_rules, default_checkers, rule_catalogue
from .cli import analyze_paths, iter_python_files, main
from .core import Checker, Finding, ModuleContext, analyze_source

__all__ = [
    "Checker",
    "Finding",
    "ModuleContext",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "checkers_for_rules",
    "default_checkers",
    "iter_python_files",
    "load_baseline",
    "main",
    "rule_catalogue",
    "write_baseline",
]
