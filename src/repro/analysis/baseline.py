"""Committed JSON baseline for grandfathered findings.

The baseline lets a new rule land with its historical debt recorded
instead of fixed-or-pragma'd in the same change.  Entries are keyed by
``(rule, path, snippet)`` — the stripped text of the offending line —
so they survive line-number drift but expire when the offending code is
edited.  A baseline entry that matches no current finding is *stale*
and reported so the file shrinks monotonically; this repo's baseline
ships empty and is expected to stay that way.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from .core import Finding

BaselineKey = tuple[str, str, str]


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    new: list[Finding]
    suppressed: list[Finding]
    stale: list[BaselineKey] = field(default_factory=list)


def load_baseline(path: str) -> Counter:
    """Load a baseline file into a key -> count multiset."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    counts: Counter = Counter()
    for entry in payload.get("entries", ()):
        key = (entry["rule"], entry["path"], entry["snippet"])
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(findings: list[Finding], path: str) -> None:
    """Write the given findings out as a fresh baseline."""
    counts: Counter = Counter(finding.baseline_key() for finding in findings)
    entries = [
        {"rule": rule, "path": file_path, "snippet": snippet, "count": count}
        for (rule, file_path, snippet), count in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "entries": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(findings: list[Finding], baseline: Counter) -> BaselineResult:
    """Split findings into new vs baselined, and spot stale entries."""
    budget = Counter(baseline)
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget[key] > 0:
            budget[key] -= 1
            suppressed.append(finding)
        else:
            new.append(finding)
    stale = sorted(key for key, count in budget.items() if count > 0)
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)
