"""Human and JSON reporters for analysis results."""

from __future__ import annotations

import json
from collections import Counter

from .baseline import BaselineResult
from .core import Finding


def render_human(result: BaselineResult, *, files_scanned: int) -> str:
    """Compiler-style report: one line per finding, then a summary."""
    out: list[str] = []
    for finding in result.new:
        out.append(finding.render())
        if finding.snippet:
            out.append(f"    {finding.snippet}")
    for key in result.stale:
        rule, path, snippet = key
        out.append(f"{path}: stale baseline entry for {rule}: {snippet!r}")
    counts = Counter(finding.rule for finding in result.new)
    if counts:
        by_rule = ", ".join(f"{rule}={count}" for rule, count in sorted(counts.items()))
        out.append(
            f"{len(result.new)} finding(s) in {files_scanned} file(s) [{by_rule}]"
        )
    else:
        out.append(f"clean: 0 findings in {files_scanned} file(s)")
    if result.suppressed:
        out.append(f"({len(result.suppressed)} finding(s) covered by the baseline)")
    if result.stale:
        out.append(f"({len(result.stale)} stale baseline entr(y/ies))")
    return "\n".join(out)


def render_json(result: BaselineResult, *, files_scanned: int) -> str:
    payload = {
        "files_scanned": files_scanned,
        "findings": [finding.as_dict() for finding in result.new],
        "baselined": [finding.as_dict() for finding in result.suppressed],
        "stale_baseline": [
            {"rule": rule, "path": path, "snippet": snippet}
            for rule, path, snippet in result.stale
        ],
        "counts": dict(Counter(finding.rule for finding in result.new)),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_to_result(findings: list[Finding]) -> BaselineResult:
    """Wrap raw findings as a no-baseline result (for API callers)."""
    return BaselineResult(new=list(findings), suppressed=[])
