"""Command-line entry point: ``python -m repro.analysis <paths>``.

Exit codes are CI-friendly: 0 means clean (after pragmas and baseline),
1 means findings (or, under ``--strict``, stale baseline entries), and
2 means the invocation itself was wrong (bad path, bad rule id).
"""

from __future__ import annotations

import argparse
import os
import sys

from .baseline import BaselineResult, apply_baseline, load_baseline, write_baseline
from .checkers import checkers_for_rules, default_checkers, rule_catalogue
from .core import Finding, analyze_source
from .report import render_human, render_json

#: Baseline used when none is given explicitly and this file exists.
DEFAULT_BASELINE = os.path.join("tools", "analysis_baseline.json")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git", ".venv"}
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(os.path.normpath(p).replace(os.sep, "/") for p in out))


def analyze_paths(
    paths: list[str], *, rules: set[str] | None = None
) -> tuple[list[Finding], int]:
    """Analyze every python file under ``paths``.

    Returns ``(findings, files_scanned)``.  ``rules`` restricts the run
    to the checkers owning those rule ids.
    """
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for file_path in files:
        with open(file_path, encoding="utf-8") as handle:
            source = handle.read()
        if rules is None:
            checkers = default_checkers()
            per_file = analyze_source(source, file_path, checkers)
        else:
            checkers = checkers_for_rules(rules)
            per_file = analyze_source(
                source, file_path, checkers, report_unused_pragmas=False
            )
            per_file = [
                f
                for f in per_file
                if f.rule in rules or f.rule in {"parse-error", "pragma-syntax"}
            ]
        findings.extend(per_file)
    return findings, len(files)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Single-walk AST invariant analyzer for this repository.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or dirs")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (CI gate mode)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report everything",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover current findings, then exit clean",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, (checker, description) in sorted(rule_catalogue().items()):
            print(f"{rule:24} [{checker}] {description}")
        return EXIT_CLEAN

    rules: set[str] | None = None
    if args.select:
        rules = {rule.strip() for rule in args.select.split(",") if rule.strip()}
        unknown = rules - set(rule_catalogue())
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return EXIT_USAGE

    try:
        findings, files_scanned = analyze_paths(list(args.paths), rules=rules)
    except FileNotFoundError as error:
        print(f"no such path: {error}", file=sys.stderr)
        return EXIT_USAGE

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(findings, target)
        print(f"baseline updated: {len(findings)} finding(s) -> {target}")
        return EXIT_CLEAN

    if baseline_path is not None and not args.no_baseline:
        result = apply_baseline(findings, load_baseline(baseline_path))
    else:
        result = BaselineResult(new=findings, suppressed=[])

    renderer = render_json if args.fmt == "json" else render_human
    print(renderer(result, files_scanned=files_scanned))

    if result.new:
        return EXIT_FINDINGS
    if args.strict and result.stale:
        return EXIT_FINDINGS
    return EXIT_CLEAN
