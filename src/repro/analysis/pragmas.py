"""Inline suppression pragmas: ``# repro: allow[rule] -- reason``.

A pragma suppresses matching findings on its own line and on the line
directly below it (so it can trail the offending statement or sit on its
own line above).  Several rules may be listed, comma-separated; ``*``
allows everything.  The reason after ``--`` is mandatory: a suppression
without a recorded justification is itself a finding, as is a pragma
that looks like one but does not parse.  Unused pragmas are reported by
the driver on full runs so stale suppressions rot visibly.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Rule id for pragmas that do not parse or lack a reason.
PRAGMA_SYNTAX_RULE = "pragma-syntax"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)
_LOOKS_LIKE_PRAGMA_RE = re.compile(r"#\s*repro:")


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int
    rules: frozenset[str]
    reason: str
    used: bool = field(default=False, compare=False)

    def allows(self, rule: str) -> bool:
        return rule in self.rules or "*" in self.rules


def scan_pragmas(source: str, path: str):
    """Extract pragmas from comments; malformed ones become findings.

    Returns ``(pragmas, findings)`` where ``pragmas`` maps line number to
    :class:`Pragma` and ``findings`` is a list of
    :class:`~repro.analysis.core.Finding` for malformed pragmas.
    """
    from .core import Finding

    pragmas: dict[int, Pragma] = {}
    findings: list[Finding] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _LOOKS_LIKE_PRAGMA_RE.search(comment):
            continue
        line = token.start[0]
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        match = _PRAGMA_RE.search(comment)
        if match is None:
            findings.append(
                Finding(
                    PRAGMA_SYNTAX_RULE,
                    path,
                    line,
                    token.start[1],
                    "malformed pragma; expected `# repro: allow[rule] -- reason`",
                    snippet,
                )
            )
            continue
        rules = frozenset(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        reason = match.group("reason")
        if not rules or not reason:
            findings.append(
                Finding(
                    PRAGMA_SYNTAX_RULE,
                    path,
                    line,
                    token.start[1],
                    "pragma needs a non-empty rule list and a `-- reason`",
                    snippet,
                )
            )
            continue
        pragmas[line] = Pragma(line=line, rules=rules, reason=reason)
    return pragmas, findings
