"""Error-discipline rules: failures surface structurally, never silently.

The serving stack's contract is that worker failures become structured
``error`` outcomes, admission failures become typed rejections, and
programmer errors raise from the :class:`~repro.exceptions.ReproError`
taxonomy — so operators can tell "the query failed" from "the service
is broken" from "the caller misused the API".  A bare ``except:``, a
broad handler whose body only swallows, or a bare ``RuntimeError``
punches a hole in that contract.
"""

from __future__ import annotations

import ast

from ..core import Checker, ModuleContext

_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _only_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body discards the error without a trace.

    Bodies consisting solely of ``pass``/``continue``/``break`` or a
    bare/constant ``return`` count as swallowing; any real statement —
    logging, counters, re-raise, a computed return — does not.
    """
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Return):
            if stmt.value is None or isinstance(stmt.value, ast.Constant):
                continue
            return False
        return False
    return True


class ErrorDisciplineChecker(Checker):
    name = "error-discipline"
    rules = {
        "err-bare-except": (
            "bare except: catches SystemExit/KeyboardInterrupt too; "
            "name the exception type"
        ),
        "err-swallowed-except": (
            "broad except whose body silently discards the error; log it, "
            "convert it to a structured outcome, or pragma why not"
        ),
        "err-bare-runtime": (
            "bare RuntimeError where the ReproError taxonomy applies; "
            "raise a ReproError subclass instead"
        ),
    }

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, module: ModuleContext
    ) -> None:
        if node.type is None:
            module.report("err-bare-except", node, "bare except:")
            if _only_swallows(node):
                module.report(
                    "err-swallowed-except", node, "bare except swallows the error"
                )
            return
        broad = (
            isinstance(node.type, ast.Name) and node.type.id in _BROAD_TYPES
        )
        if broad and _only_swallows(node):
            module.report(
                "err-swallowed-except",
                node,
                f"except {node.type.id} discards the error without a trace",
            )

    def visit_Raise(self, node: ast.Raise, module: ModuleContext) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id == "RuntimeError":
            module.report(
                "err-bare-runtime",
                node,
                "bare RuntimeError raised; use the ReproError taxonomy",
            )
