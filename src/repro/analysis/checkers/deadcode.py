"""Dead-code rules: unused imports and unreferenced private symbols.

``dead-import`` flags module-level imports never referenced in the
module.  Names listed in ``__all__`` and the explicit re-export idiom
(``from x import y as y``) are exempt, as are names referenced only
inside string annotations (which are parsed and mined for identifiers).

``dead-symbol`` flags module-level ``_private`` functions, classes and
constants that nothing in their own module references — by convention a
leading underscore promises "module-internal", so an unreferenced one
is dead weight (a deliberately-exported private needs a pragma).
"""

from __future__ import annotations

import ast

from ..core import Checker, ModuleContext


class DeadCodeChecker(Checker):
    name = "dead-code"
    rules = {
        "dead-import": "module-level import never used in this module",
        "dead-symbol": (
            "module-level _private symbol never referenced in its module"
        ),
    }

    def begin(self, module: ModuleContext) -> None:
        # local name -> import node, for module-level imports only.
        self._imports: dict[str, ast.stmt] = {}
        self._reexports: set[str] = set()
        # name -> def node for module-level _private symbols.
        self._private_defs: dict[str, ast.AST] = {}
        self._used: set[str] = set()
        self._dunder_all: set[str] = set()

    # -------------------------------------------------------------- gathering

    def visit_Import(self, node: ast.Import, module: ModuleContext) -> None:
        if not module.at_module_level():
            return
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self._imports[local] = node

    def visit_ImportFrom(self, node: ast.ImportFrom, module: ModuleContext) -> None:
        if not module.at_module_level() or node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self._imports[local] = node
            if alias.asname == alias.name:
                self._reexports.add(local)

    def visit_Name(self, node: ast.Name, module: ModuleContext) -> None:
        if isinstance(node.ctx, ast.Load):
            self._used.add(node.id)

    def visit_Constant(self, node: ast.Constant, module: ModuleContext) -> None:
        # String annotations ("asyncio.Queue") hide identifier uses; any
        # parseable string constant contributes its names.  Over-counting a
        # docstring word as a "use" only ever silences a finding, never
        # fabricates one, so the trade is safe.
        if not isinstance(node.value, str) or len(node.value) > 200:
            return
        text = node.value.strip()
        if not text:
            return
        try:
            parsed = ast.parse(text, mode="eval")
        except (SyntaxError, ValueError):
            return
        for sub in ast.walk(parsed):
            if isinstance(sub, ast.Name):
                self._used.add(sub.id)

    def visit_Assign(self, node: ast.Assign, module: ModuleContext) -> None:
        if not module.at_module_level():
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                if target.id == "__all__":
                    self._collect_all(node.value)
                elif self._is_private(target.id):
                    self._private_defs.setdefault(target.id, target)

    def visit_FunctionDef(self, node: ast.FunctionDef, module: ModuleContext) -> None:
        if module.at_module_level() and self._is_private(node.name):
            self._private_defs.setdefault(node.name, node)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, module: ModuleContext
    ) -> None:
        if module.at_module_level() and self._is_private(node.name):
            self._private_defs.setdefault(node.name, node)

    def visit_ClassDef(self, node: ast.ClassDef, module: ModuleContext) -> None:
        if module.at_module_level() and self._is_private(node.name):
            self._private_defs.setdefault(node.name, node)

    # -------------------------------------------------------------- reporting

    def end(self, module: ModuleContext) -> None:
        for local, node in self._imports.items():
            if (
                local in self._used
                or local in self._reexports
                or local in self._dunder_all
                or local.startswith("_")
            ):
                continue
            module.report("dead-import", node, f"import of {local!r} is unused")
        for name, node in self._private_defs.items():
            # A def's own Name-load uses elsewhere keep it; definition sites
            # are Store contexts so they never self-count.
            if name in self._used or name in self._dunder_all:
                continue
            module.report(
                "dead-symbol", node, f"module-private {name!r} is never referenced"
            )

    # ---------------------------------------------------------------- helpers

    @staticmethod
    def _is_private(name: str) -> bool:
        return name.startswith("_") and not name.startswith("__")

    def _collect_all(self, value: ast.expr) -> None:
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    self._dunder_all.add(element.value)
