"""Checker registry: the default rule set, and lookup by rule id."""

from __future__ import annotations

from ..core import Checker
from .concurrency import ConcurrencyChecker
from .deadcode import DeadCodeChecker
from .determinism import DeterminismChecker
from .errors import ErrorDisciplineChecker
from .exactness import ExactnessChecker
from .ipc import IpcChecker

_CHECKER_TYPES: tuple[type[Checker], ...] = (
    DeterminismChecker,
    ExactnessChecker,
    ConcurrencyChecker,
    IpcChecker,
    ErrorDisciplineChecker,
    DeadCodeChecker,
)


def default_checkers() -> list[Checker]:
    """Fresh instances of every registered checker."""
    return [checker_type() for checker_type in _CHECKER_TYPES]


def rule_catalogue() -> dict[str, tuple[str, str]]:
    """rule id -> (checker name, description) for every known rule."""
    catalogue: dict[str, tuple[str, str]] = {}
    for checker_type in _CHECKER_TYPES:
        for rule, description in checker_type.rules.items():
            catalogue[rule] = (checker_type.name, description)
    return catalogue


def checkers_for_rules(rules: set[str]) -> list[Checker]:
    """Instances of just the checkers owning any of the given rule ids."""
    return [
        checker_type()
        for checker_type in _CHECKER_TYPES
        if rules & set(checker_type.rules)
    ]


__all__ = [
    "ConcurrencyChecker",
    "DeadCodeChecker",
    "DeterminismChecker",
    "ErrorDisciplineChecker",
    "ExactnessChecker",
    "IpcChecker",
    "checkers_for_rules",
    "default_checkers",
    "rule_catalogue",
]
