"""Determinism rules: no hash-order or wall-clock data in deterministic paths.

The conformance harness pins every cache/execution/distribution variant
to be outcome-identical with the uncached serial reference, which only
holds if the core engine is a pure function of its inputs.  These rules
flag the classic leaks: iterating a set into an ordered sink, sorting by
``repr`` (memory addresses leak into default object reprs), reading the
wall clock or an unseeded RNG, and using ``id()`` where its value could
reach an ordering or an output.

``repr``-keyed sorting *is* the repo's canonicalization idiom for
value-semantics objects (frozen dataclasses, frozensets) — but only in
the canonicalization layers, where every repr is address-free by
construction.  Those directories are whitelisted below; everywhere else
in the deterministic scope a repr sort needs a pragma arguing why the
reprs involved are value-based.
"""

from __future__ import annotations

import ast

from ..core import Checker, ModuleContext

#: Modules whose outputs must be pure functions of their inputs.
DETERMINISTIC_SCOPE = (
    "repro/flow/",
    "repro/resilience/",
    "repro/languages/",
    "repro/graphdb/",
    "repro/classify/",
    "repro/hardness/",
    "repro/rpq/",
    # The traffic generator must be bit-replayable from its seed; the soak
    # runner around it is intentionally out of scope (it measures wall time).
    "repro/traffic/generator",
)

#: Canonicalization layers where sorting by ``repr`` is the blessed idiom:
#: every sorted element is a frozen value type whose repr is address-free.
REPR_SORT_WHITELIST = (
    "repro/languages/",
    "repro/hardness/",
    "repro/graphdb/",
)

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Order-sensitive sinks: materializing a set through these bakes hash
#: order into a sequence.
_ORDERED_SINKS = frozenset({"list", "tuple", "enumerate", "reversed", "iter", "next"})

_SORT_CALLS = frozenset({"sorted", "min", "max"})


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-certain unordered expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _key_is_repr(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "key" and isinstance(keyword.value, ast.Name):
            if keyword.value.id in {"repr", "str"}:
                return True
    return False


class DeterminismChecker(Checker):
    name = "determinism"
    scope = DETERMINISTIC_SCOPE
    rules = {
        "det-set-iter": (
            "iteration over a set/frozenset expression feeds an ordered "
            "consumer; wrap it in sorted(...) or keep it order-insensitive"
        ),
        "det-repr-sort": (
            "repr/str-keyed sort outside the canonicalization whitelist; "
            "default reprs embed memory addresses"
        ),
        "det-wallclock": (
            "wall-clock or unseeded randomness in a deterministic path"
        ),
        "det-id": (
            "id() in a deterministic path; addresses vary run to run"
        ),
    }

    def visit_For(self, node: ast.For, module: ModuleContext) -> None:
        if _is_set_expr(node.iter):
            module.report(
                "det-set-iter",
                node.iter,
                "for-loop over an unordered set expression",
            )

    def visit_comprehension(
        self, node: ast.comprehension, module: ModuleContext
    ) -> None:
        if _is_set_expr(node.iter):
            module.report(
                "det-set-iter",
                node.iter,
                "comprehension over an unordered set expression",
            )

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        resolved = module.resolve(node.func)
        if resolved is None:
            self._check_method_call(node, module)
            return
        if resolved in _WALLCLOCK_CALLS:
            module.report("det-wallclock", node, f"call to {resolved}()")
            return
        if resolved == "random" or resolved.startswith("random."):
            # A seeded random.Random(seed) instance is deterministic by
            # construction; everything else from the random module is not.
            if not (resolved == "random.Random" and (node.args or node.keywords)):
                module.report("det-wallclock", node, f"call to {resolved}()")
            return
        if resolved == "id":
            module.report("det-id", node, "id() value used in a deterministic path")
            return
        if resolved in _SORT_CALLS and _key_is_repr(node):
            if not module.in_scope(*REPR_SORT_WHITELIST):
                module.report(
                    "det-repr-sort",
                    node,
                    f"{resolved}(..., key=repr) outside the canonicalization "
                    "whitelist",
                )
            return
        if resolved in _ORDERED_SINKS and node.args and _is_set_expr(node.args[0]):
            module.report(
                "det-set-iter",
                node,
                f"{resolved}() materializes an unordered set expression",
            )

    def _check_method_call(self, node: ast.Call, module: ModuleContext) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr == "sort" and _key_is_repr(node):
            if not module.in_scope(*REPR_SORT_WHITELIST):
                module.report(
                    "det-repr-sort",
                    node,
                    ".sort(key=repr) outside the canonicalization whitelist",
                )
        elif attr == "join" and node.args and _is_set_expr(node.args[0]):
            module.report(
                "det-set-iter", node, ".join() over an unordered set expression"
            )
