"""Concurrency rules: async loops stay unblocked, shared state stays locked.

``conc-blocking-async`` flags synchronous blocking calls made directly
inside an ``async def`` body — ``time.sleep``, sync HTTP/socket
connects, subprocess waits, bare ``.join()`` — which stall the event
loop the front-end promises to keep responsive (the sanctioned escape
hatch is ``run_in_executor``, which these rules do not match).

``conc-unlocked-write`` encodes the drain-thread lock discipline from
``async_server.py`` and the exchange machinery: in a class that owns a
``threading.Lock``/``RLock``/``Condition``, any attribute written under
``with self._lock`` is *guarded*; writing a guarded attribute outside
the lock is a race unless it happens in ``__init__`` (no concurrency
yet) or in a method named ``*_locked`` (the repo's convention for
"caller holds the lock").
"""

from __future__ import annotations

import ast

from ..core import Checker, ModuleContext

_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "urllib.request.urlopen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.waitpid",
        "http.client.HTTPConnection",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: Blocking attribute calls when invoked with no positional arguments:
#: thread/process ``.join()`` and unbounded ``Queue.get()`` (``str.join``
#: and ``dict.get`` always take a positional argument, so they never match).
_BLOCKING_NOARG_METHODS = frozenset({"join", "get"})

_LOCK_FACTORIES = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_self_attrs(node: ast.stmt) -> list[tuple[str, ast.AST]]:
    """``self.X = ...`` / ``self.X += ...`` targets within one statement."""
    out: list[tuple[str, ast.AST]] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return out
    for target in targets:
        if isinstance(target, ast.Tuple):
            elements = target.elts
        else:
            elements = [target]
        for element in elements:
            attr = _self_attr(element)
            if attr is not None:
                out.append((attr, element))
    return out


class ConcurrencyChecker(Checker):
    name = "concurrency"
    rules = {
        "conc-blocking-async": (
            "synchronous blocking call directly inside async def; "
            "use run_in_executor"
        ),
        "conc-unlocked-write": (
            "write to a lock-guarded attribute without holding the lock "
            "(outside __init__ and *_locked methods)"
        ),
    }

    _UNLOCKED_WRITE_SCOPE = ("repro/service/",)

    # ------------------------------------------------------- blocking-in-async

    def begin(self, module: ModuleContext) -> None:
        self._awaited: set[int] = set()

    def visit_Await(self, node: ast.Await, module: ModuleContext) -> None:
        # The Await parent is visited before its Call child, so awaited
        # calls can be excluded from the blocking check: an awaited
        # coroutine (asyncio.Queue.get, Task.join, ...) yields the loop.
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        if not module.in_async_function() or id(node) in self._awaited:
            return
        resolved = module.resolve(node.func)
        if resolved in _BLOCKING_CALLS:
            module.report(
                "conc-blocking-async", node, f"blocking call {resolved}() in async def"
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_NOARG_METHODS
            and not node.args
        ):
            module.report(
                "conc-blocking-async",
                node,
                f"blocking .{node.func.attr}() with no timeout in async def",
            )

    # ------------------------------------------------------- unlocked writes

    def visit_ClassDef(self, node: ast.ClassDef, module: ModuleContext) -> None:
        if not module.in_scope(*self._UNLOCKED_WRITE_SCOPE):
            return
        lock_attrs = self._lock_attrs(node, module)
        if not lock_attrs:
            return
        # (method, write node, attr, under_lock) for every self.X write.
        writes: list[tuple[ast.AST, ast.AST, str, bool]] = []
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._collect_writes(method, method, lock_attrs, False, writes)
        guarded = {attr for _, _, attr, under in writes if under}
        for method, write, attr, under in writes:
            if under or attr not in guarded:
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            module.report(
                "conc-unlocked-write",
                write,
                f"self.{attr} is written under {node.name}'s lock elsewhere "
                f"but written here ({method.name}) without it",
            )

    def _lock_attrs(self, node: ast.ClassDef, module: ModuleContext) -> set[str]:
        """Attributes holding a Lock/RLock/Condition (or dataclass field)."""
        locks: set[str] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                resolved = module.resolve(stmt.value.func)
                if resolved in _LOCK_FACTORIES:
                    for target in stmt.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            locks.add(attr)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.value, ast.Call
            ):
                # dataclass idiom: _lock: Lock = field(default_factory=Lock)
                for keyword in stmt.value.keywords:
                    if keyword.arg == "default_factory":
                        resolved = module.resolve(keyword.value)
                        if resolved in _LOCK_FACTORIES and isinstance(
                            stmt.target, ast.Name
                        ):
                            locks.add(stmt.target.id)
        return locks

    def _collect_writes(
        self,
        method: ast.AST,
        node: ast.AST,
        lock_attrs: set[str],
        under: bool,
        writes: list,
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = under or any(
                _self_attr(item.context_expr) in lock_attrs for item in node.items
            )
            for child in node.body:
                self._collect_writes(method, child, lock_attrs, holds, writes)
            return
        if isinstance(node, ast.stmt):
            for attr, target in _assigned_self_attrs(node):
                if attr not in lock_attrs:
                    writes.append((method, target, attr, under))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Nested defs run on their own schedule; analyzed separately
                # would need call-site context, so stay out of their bodies.
                continue
            self._collect_writes(method, child, lock_attrs, under, writes)
