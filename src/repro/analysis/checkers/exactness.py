"""Exactness rules: the flow core computes in exact integer arithmetic.

Capacities are Python ints (or the ``math.inf`` sentinel, which compares
exactly); the only sanctioned float is the final result snap that
mirrors the reference solver's output format.  Any float literal, true
division, tolerance comparison, or ``float()`` coercion inside
``repro/flow/`` is therefore either a bug or one of the handful of
documented formatting sites — which carry pragmas spelling out why they
cannot perturb the arithmetic.
"""

from __future__ import annotations

import ast

from ..core import Checker, ModuleContext


class ExactnessChecker(Checker):
    name = "exactness"
    scope = ("repro/flow/",)
    rules = {
        "exact-float-literal": (
            "float literal in the exact-arithmetic flow core"
        ),
        "exact-div": (
            "true division in the flow core; use // for exact arithmetic"
        ),
        "exact-isclose": (
            "tolerance comparison in the flow core; exact values compare with =="
        ),
        "exact-float-cast": (
            "float() coercion in the flow core outside the sanctioned "
            "result-formatting sites"
        ),
    }

    def visit_Constant(self, node: ast.Constant, module: ModuleContext) -> None:
        if isinstance(node.value, float):
            module.report(
                "exact-float-literal", node, f"float literal {node.value!r}"
            )

    def visit_BinOp(self, node: ast.BinOp, module: ModuleContext) -> None:
        if isinstance(node.op, ast.Div):
            module.report("exact-div", node, "true division (/) yields a float")

    def visit_AugAssign(self, node: ast.AugAssign, module: ModuleContext) -> None:
        if isinstance(node.op, ast.Div):
            module.report("exact-div", node, "/= yields a float")

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        resolved = module.resolve(node.func)
        if resolved == "math.isclose":
            module.report("exact-isclose", node, "math.isclose() comparison")
        elif resolved == "float":
            module.report("exact-float-cast", node, "float() coercion")
