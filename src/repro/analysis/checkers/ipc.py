"""IPC-safety rules: everything crossing a process boundary must pickle.

Worker pools are fed with module-level functions only — a lambda, a
closure, or a locally-defined class in a dispatch path dies at pickle
time on spawn-method platforms and, worse, *works by accident* under
fork until the first pool recycle.  ``ipc-cache-pickle`` encodes the
cache-dropping discipline :meth:`GraphDatabase.__getstate__` set: a
class in the pickle-crossing layers (``graphdb``, ``languages``) that
accumulates derived index/cache state must say what happens to that
state at the boundary by defining ``__getstate__`` or ``__reduce__``
(or carry a pragma arguing why shipping it is intended, as
:class:`Language` does for its memoized derivations).
"""

from __future__ import annotations

import ast
import re

from ..core import Checker, ModuleContext

_DISPATCH_METHODS = frozenset(
    {"submit", "map", "apply_async", "apply", "imap", "imap_unordered", "starmap"}
)

_DISPATCH_KEYWORDS = frozenset({"initializer", "target", "func", "callback"})

#: Attribute names that smell like derived/cache state on a pickled type.
_CACHE_ATTR_RE = re.compile(
    r"(cache|index|memo|substrate|fingerprint|infix|adjacency|_graphs|_pairs)",
)

_PICKLE_HOOKS = frozenset(
    {"__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__"}
)


class IpcChecker(Checker):
    name = "ipc-safety"
    rules = {
        "ipc-lambda-dispatch": (
            "lambda or nested function handed to a pool/thread dispatch "
            "call; only module-level callables cross the pickle boundary"
        ),
        "ipc-local-class": (
            "class defined inside a function in a dispatch path; local "
            "classes cannot be pickled"
        ),
        "ipc-cache-pickle": (
            "index/cache-carrying class in a pickle-crossing layer without "
            "__getstate__/__reduce__ declaring its boundary behavior"
        ),
    }

    _DISPATCH_SCOPE = ("repro/service/",)
    _PICKLED_SCOPE = ("repro/graphdb/", "repro/languages/")

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        if not module.in_scope(*self._DISPATCH_SCOPE):
            return
        is_dispatch = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_METHODS
        )
        if is_dispatch:
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    module.report(
                        "ipc-lambda-dispatch",
                        arg,
                        f"lambda passed to .{node.func.attr}()",
                    )
        for keyword in node.keywords:
            if keyword.arg in _DISPATCH_KEYWORDS and isinstance(
                keyword.value, ast.Lambda
            ):
                module.report(
                    "ipc-lambda-dispatch",
                    keyword.value,
                    f"lambda passed as {keyword.arg}=",
                )

    def visit_ClassDef(self, node: ast.ClassDef, module: ModuleContext) -> None:
        if module.func_stack and module.in_scope(*self._DISPATCH_SCOPE):
            module.report(
                "ipc-local-class",
                node,
                f"class {node.name} defined inside "
                f"{module.func_stack[-1].name}()",
            )
        if module.in_scope(*self._PICKLED_SCOPE) and not module.func_stack:
            self._check_cache_pickle(node, module)

    def _check_cache_pickle(self, node: ast.ClassDef, module: ModuleContext) -> None:
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if methods & _PICKLE_HOOKS:
            return
        cache_attrs: list[tuple[str, ast.AST]] = []
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _CACHE_ATTR_RE.search(target.attr)
                ):
                    cache_attrs.append((target.attr, target))
        if cache_attrs:
            names = ", ".join(sorted({name for name, _ in cache_attrs}))
            module.report(
                "ipc-cache-pickle",
                node,
                f"class {node.name} carries derived state ({names}) but "
                "defines no __getstate__/__reduce__",
            )
