"""Single-walk AST analysis core: findings, checkers, and the driver.

The framework parses each source file exactly once and walks its AST
exactly once.  Checkers register interest in node types by defining
``visit_<NodeType>`` methods; the driver dispatches every node to every
interested checker during the same traversal, so adding a checker never
adds a pass.  The driver also maintains the shared context checkers need
(function/class nesting, an import-alias table for resolving dotted call
targets) so individual rules stay small and purely local.

Findings are value objects keyed for the baseline by ``(rule, path,
snippet)`` — the stripped source text of the offending line — so a
baselined finding survives unrelated edits that shift line numbers, but
dies with the line that caused it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .pragmas import Pragma, scan_pragmas

#: Rule id used for files that fail to parse.
PARSE_ERROR_RULE = "parse-error"
#: Rule id for pragmas that suppressed nothing.
PRAGMA_UNUSED_RULE = "pragma-unused"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str

    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class Checker:
    """Base class for pluggable rules.

    Subclasses set :attr:`name`, :attr:`rules` (rule id -> one-line
    description) and optionally :attr:`scope` — path fragments that must
    appear in a module's path for the checker to run at all.  Node
    handlers are methods named ``visit_<NodeType>`` taking ``(node,
    module)``; :meth:`begin` / :meth:`end` bracket each module for rules
    that need whole-module state (e.g. dead imports).
    """

    name: str = "checker"
    rules: dict[str, str] = {}
    scope: tuple[str, ...] = ()

    def applies_to(self, module: ModuleContext) -> bool:
        return not self.scope or module.in_scope(*self.scope)

    def begin(self, module: ModuleContext) -> None:
        pass

    def end(self, module: ModuleContext) -> None:
        pass


class ModuleContext:
    """Everything checkers may consult while one module is walked."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        pragmas: dict[int, Pragma],
    ) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.pragmas = pragmas
        self.findings: list[Finding] = []
        self.func_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self.class_stack: list[ast.ClassDef] = []
        #: local name -> dotted origin, e.g. ``monotonic`` -> ``time.monotonic``.
        self.imports: dict[str, str] = {}

    # ------------------------------------------------------------- predicates

    def in_scope(self, *fragments: str) -> bool:
        return any(fragment in self.path for fragment in fragments)

    def at_module_level(self) -> bool:
        return not self.func_stack and not self.class_stack

    def in_async_function(self) -> bool:
        """True when the *nearest* enclosing function is ``async def``."""
        return bool(self.func_stack) and isinstance(
            self.func_stack[-1], ast.AsyncFunctionDef
        )

    # ------------------------------------------------------------- resolution

    def record_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports[local] = origin
        else:
            if node.module is None or node.level:
                return  # relative imports resolve inside the package, not stdlib
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.imports[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a name/attribute chain, through import aliases.

        ``from time import monotonic`` makes ``monotonic()`` resolve to
        ``time.monotonic``; an unimported bare name resolves to itself
        (which is how builtins like ``float`` and ``id`` surface).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    # -------------------------------------------------------------- reporting

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self._suppressed(rule, line):
            return
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings.append(Finding(rule, self.path, line, col, message, snippet))

    def _suppressed(self, rule: str, line: int) -> bool:
        """A pragma applies on the finding's line, the line above, or at the
        top of a contiguous comment block directly above (so a pragma can
        open a multi-line justification)."""
        candidates = [line, line - 1]
        cursor = line - 1
        while 0 < cursor <= len(self.lines) and self.lines[
            cursor - 1
        ].lstrip().startswith("#"):
            candidates.append(cursor)
            cursor -= 1
        for candidate in candidates:
            pragma = self.pragmas.get(candidate)
            if pragma is not None and pragma.allows(rule):
                pragma.used = True
                return True
        return False


def _build_dispatch(
    checkers: list[Checker],
) -> dict[type, list]:
    dispatch: dict[type, list] = {}
    for checker in checkers:
        for attr in dir(checker):
            if not attr.startswith("visit_"):
                continue
            node_type = getattr(ast, attr[len("visit_") :], None)
            if node_type is None:
                raise TypeError(f"{checker.name}: unknown AST node in {attr}")
            dispatch.setdefault(node_type, []).append(getattr(checker, attr))
    return dispatch


def _walk(node: ast.AST, module: ModuleContext, dispatch: dict[type, list]) -> None:
    if isinstance(node, (ast.Import, ast.ImportFrom)):
        module.record_import(node)
    for handler in dispatch.get(type(node), ()):
        handler(node, module)
    is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    is_class = isinstance(node, ast.ClassDef)
    if is_func:
        module.func_stack.append(node)
    elif is_class:
        module.class_stack.append(node)
    try:
        for child in ast.iter_child_nodes(node):
            _walk(child, module, dispatch)
    finally:
        if is_func:
            module.func_stack.pop()
        elif is_class:
            module.class_stack.pop()


def analyze_source(
    source: str,
    path: str,
    checkers: list[Checker] | None = None,
    *,
    report_unused_pragmas: bool = True,
) -> list[Finding]:
    """Analyze one module's source, returning sorted findings.

    ``path`` is the (posix) path used both for scope matching and in the
    findings themselves.  ``checkers`` defaults to the full registry;
    pass a subset to run specific rules (unused-pragma reporting is then
    suppressed automatically, since a pragma for an unselected rule is
    not evidence of rot).
    """
    if checkers is None:
        from .checkers import default_checkers

        checkers = default_checkers()
        full_run = True
    else:
        full_run = False

    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        line = error.lineno or 1
        return [
            Finding(
                PARSE_ERROR_RULE,
                path,
                line,
                (error.offset or 1) - 1,
                f"could not parse: {error.msg}",
                "",
            )
        ]

    pragmas, pragma_findings = scan_pragmas(source, path)
    module = ModuleContext(path, source, tree, pragmas)
    active = [checker for checker in checkers if checker.applies_to(module)]
    dispatch = _build_dispatch(active)
    for checker in active:
        checker.begin(module)
    _walk(tree, module, dispatch)
    for checker in active:
        checker.end(module)

    findings = module.findings + pragma_findings
    if report_unused_pragmas and full_run:
        for pragma in pragmas.values():
            if not pragma.used:
                snippet = (
                    module.lines[pragma.line - 1].strip()
                    if 0 < pragma.line <= len(module.lines)
                    else ""
                )
                findings.append(
                    Finding(
                        PRAGMA_UNUSED_RULE,
                        path,
                        pragma.line,
                        0,
                        "pragma suppressed nothing; remove it or fix its rule list",
                        snippet,
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
