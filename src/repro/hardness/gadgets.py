"""Hardness pre-gadgets, completions and graph encodings (Definitions 4.3--4.5).

A *pre-gadget* is a database with two distinguished in/out elements (never heads
of facts) and a label; its *completion* adds two fresh endpoint facts.  The
*encoding* of a directed graph glues one copy of the pre-gadget per edge,
identifying the in/out elements with per-vertex facts.  When the completion's
hypergraph of matches condenses to an odd path between the endpoint facts, the
pre-gadget is a *gadget* and the encoding reduces minimum vertex cover to
resilience (Proposition 4.11).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..exceptions import GadgetError
from ..graphdb.database import Fact, GraphDatabase, Node


@dataclass(frozen=True)
class PreGadget:
    """A pre-gadget ``(D, t_in, t_out, a)`` (Definition 4.3).

    Attributes:
        database: the gadget database ``D``.
        in_element: the in-element ``t_in``.
        out_element: the out-element ``t_out``.
        label: the letter used by the two completion facts.
        name: a human-readable name for reporting.
    """

    database: GraphDatabase
    in_element: Node
    out_element: Node
    label: str
    name: str = ""

    def validate(self) -> None:
        """Check the structural requirements of Definition 4.3.

        Raises:
            GadgetError: if a requirement is violated.
        """
        if self.in_element == self.out_element:
            raise GadgetError("the in-element and out-element must be distinct")
        for fact in self.database.facts:
            if fact.target == self.in_element:
                raise GadgetError(f"the in-element occurs as the head of {fact}")
            if fact.target == self.out_element:
                raise GadgetError(f"the out-element occurs as the head of {fact}")

    @property
    def in_fact(self) -> Fact:
        """The endpoint fact ``F_in`` added by the completion."""
        return Fact(("completion", "s_in"), self.label, self.in_element)

    @property
    def out_fact(self) -> Fact:
        """The endpoint fact ``F_out`` added by the completion."""
        return Fact(("completion", "s_out"), self.label, self.out_element)

    def completion(self) -> GraphDatabase:
        """Return the completion ``D'`` of the pre-gadget (Definition 4.3)."""
        self.validate()
        return self.database.add([self.in_fact, self.out_fact])

    def __repr__(self) -> str:
        label = self.name or "pre-gadget"
        return f"PreGadget({label!r}, {len(self.database)} facts, label={self.label!r})"


@dataclass
class GadgetBuilder:
    """A small helper to assemble gadget databases from word-labelled paths.

    Nodes are arbitrary strings; :meth:`add_word_path` adds a fresh path of edges
    spelling a word between two existing (or new) nodes, merging the endpoints
    when the word is empty.
    """

    facts: set[Fact] = field(default_factory=set)
    merges: dict[Node, Node] = field(default_factory=dict)
    _counter: int = 0

    def _resolve(self, node: Node) -> Node:
        while node in self.merges:
            node = self.merges[node]
        return node

    def fresh_node(self, prefix: str = "n") -> str:
        self._counter += 1
        return f"{prefix}#{self._counter}"

    def add_edge(self, source: Node, label: str, target: Node) -> None:
        self.facts.add(Fact(self._resolve(source), label, self._resolve(target)))

    def add_word_path(self, source: Node, word: str, target: Node) -> None:
        """Add a path spelling ``word`` from ``source`` to ``target``.

        When ``word`` is empty the two nodes are merged (``target`` becomes an
        alias of ``source``), following the drawing convention of the paper's
        generic gadget figures.
        """
        source = self._resolve(source)
        target = self._resolve(target)
        if not word:
            if source != target:
                self.merges[target] = source
                # Re-resolve previously added facts that mention the target.
                self.facts = {
                    Fact(self._resolve(fact.source), fact.label, self._resolve(fact.target))
                    for fact in self.facts
                }
            return
        previous = source
        for index, letter in enumerate(word):
            nxt = target if index == len(word) - 1 else self.fresh_node()
            self.add_edge(previous, letter, nxt)
            previous = nxt

    def build(self, in_element: Node, out_element: Node, label: str, name: str = "") -> PreGadget:
        return PreGadget(
            GraphDatabase(self.facts),
            self._resolve(in_element),
            self._resolve(out_element),
            label,
            name,
        )


def encode_graph(
    pre_gadget: PreGadget, edges: Sequence[tuple[Node, Node]], vertices: Iterable[Node] = ()
) -> tuple[GraphDatabase, dict[Node, Fact]]:
    """Encode a directed graph with a pre-gadget (Definition 4.5).

    Args:
        pre_gadget: the pre-gadget to use.
        edges: the directed edges of the graph (an arbitrary orientation of the
            undirected input graph of the vertex-cover reduction).
        vertices: optional additional isolated vertices.

    Returns:
        the encoding database and the per-vertex endpoint facts ``s_u -a-> t_u``.
    """
    pre_gadget.validate()
    vertex_set: list[Node] = []
    seen: set[Node] = set()
    for vertex in list(vertices) + [v for edge in edges for v in edge]:
        if vertex not in seen:
            seen.add(vertex)
            vertex_set.append(vertex)

    facts: set[Fact] = set()
    vertex_fact: dict[Node, Fact] = {}
    for vertex in vertex_set:
        fact = Fact(("vc", "s", vertex), pre_gadget.label, ("vc", "t", vertex))
        vertex_fact[vertex] = fact
        facts.add(fact)

    for index, (tail, head) in enumerate(edges):
        mapping: dict[Node, Node] = {}
        for node in pre_gadget.database.nodes:
            if node == pre_gadget.in_element:
                mapping[node] = ("vc", "t", tail)
            elif node == pre_gadget.out_element:
                mapping[node] = ("vc", "t", head)
            else:
                mapping[node] = ("copy", index, node)
        copy = pre_gadget.database.rename_nodes(mapping)
        facts |= copy.facts
    return GraphDatabase(facts), vertex_fact
