"""Concrete hardness gadgets from the paper's figures.

Each function returns a :class:`~repro.hardness.gadgets.PreGadget` whose
completion condenses to an odd path for the corresponding language; every gadget
in this module is machine-verified by the test suite through
:mod:`repro.hardness.verification` (this mirrors the sanity-check tool the
authors describe in Section 4.3).
"""

from __future__ import annotations

from ..graphdb.database import Fact, GraphDatabase
from .gadgets import PreGadget


def gadget_for_aa() -> PreGadget:
    """The gadget of Figure 3b / Proposition 4.1 for the language ``aa``.

    Pre-gadget facts (all labelled ``a``)::

        t_in -> 1 -> 2 -> 3       t_out -> 2
    """
    facts = [
        Fact("t_in", "a", "1"),
        Fact("1", "a", "2"),
        Fact("2", "a", "3"),
        Fact("t_out", "a", "2"),
    ]
    return PreGadget(GraphDatabase(facts), "t_in", "t_out", "a", name="Figure 3b (aa)")


def gadget_for_aaa() -> PreGadget:
    """The gadget of Figure 10 / Claim 6.11 for languages containing ``aaa``.

    The database is the same as the ``aa`` gadget of Figure 3b (as the paper
    notes); only the matches differ.
    """
    gadget = gadget_for_aa()
    return PreGadget(gadget.database, "t_in", "t_out", "a", name="Figure 10 (aaa)")


def gadget_for_axb_cxd() -> PreGadget:
    """The gadget of Figure 4a / Proposition 4.13 for the language ``axb|cxd``."""
    facts = [
        Fact("t_in", "x", "1"),
        Fact("1", "b", "2"),
        Fact("1", "d", "3"),
        Fact("5", "a", "4"),
        Fact("4", "x", "1"),
        Fact("6", "c", "4"),
        Fact("8", "c", "7"),
        Fact("7", "x", "1"),
        Fact("7", "x", "9"),
        Fact("9", "d", "10"),
        Fact("9", "b", "11"),
        Fact("13", "a", "12"),
        Fact("14", "c", "12"),
        Fact("12", "x", "9"),
        Fact("12", "x", "15"),
        Fact("15", "b", "16"),
        Fact("t_out", "x", "15"),
    ]
    return PreGadget(GraphDatabase(facts), "t_in", "t_out", "a", name="Figure 4a (axb|cxd)")


def gadget_for_aba_bab() -> PreGadget:
    """The gadget of Figure 9 / Claim 6.10 for languages containing ``aba`` and ``bab``."""
    facts = [
        Fact("t_in", "b", "1"),
        Fact("5", "b", "1"),
        Fact("1", "a", "2"),
        Fact("2", "b", "3"),
        Fact("3", "a", "4"),
        Fact("4", "b", "6"),
        Fact("8", "b", "7"),
        Fact("7", "a", "4"),
        Fact("t_out", "b", "7"),
    ]
    return PreGadget(GraphDatabase(facts), "t_in", "t_out", "a", name="Figure 9 (aba & bab)")


def gadget_for_aab(a_letter: str = "a", b_letter: str = "b") -> PreGadget:
    """The gadget of Figure 11 / Claim 6.14 for languages containing ``aab`` with ``a != b``."""
    if a_letter == b_letter:
        raise ValueError("Claim 6.14 requires two distinct letters")
    facts = [
        Fact("t_in", a_letter, "1"),
        Fact("1", b_letter, "2"),
        Fact("3", a_letter, "1"),
        Fact("t_out", a_letter, "3"),
        Fact("3", b_letter, "4"),
    ]
    return PreGadget(GraphDatabase(facts), "t_in", "t_out", a_letter, name="Figure 11 (aab)")


def gadget_for_ab_bc_ca() -> PreGadget:
    """The gadget of Figure 13 / Proposition 7.4 for the language ``ab|bc|ca``."""
    facts = [
        Fact("t_in", "b", "1"),
        Fact("1", "c", "2"),
        Fact("2", "a", "3"),
        Fact("3", "b", "4"),
        Fact("4", "c", "5"),
        Fact("t_out", "b", "4"),
    ]
    return PreGadget(GraphDatabase(facts), "t_in", "t_out", "a", name="Figure 13 (ab|bc|ca)")


def gadget_for_abcd_be_ef() -> PreGadget:
    """The gadget of Figure 15 / Proposition 7.11 for the language ``abcd|be|ef``."""
    facts = [
        Fact("t_in", "b", "1"),
        Fact("1", "c", "2"),
        Fact("2", "d", "3"),
        Fact("1", "e", "4"),
        Fact("4", "f", "5"),
        Fact("6", "a", "7"),
        Fact("7", "b", "8"),
        Fact("8", "e", "4"),
        Fact("8", "c", "9"),
        Fact("9", "d", "10"),
        Fact("t_out", "b", "11"),
        Fact("11", "c", "9"),
    ]
    return PreGadget(GraphDatabase(facts), "t_in", "t_out", "a", name="Figure 15 (abcd|be|ef)")


def gadget_for_abcd_bef() -> PreGadget:
    """The gadget of Figure 16 / Proposition 7.11 for the language ``abcd|bef``.

    The paper notes that the same database as Figure 15 works for both languages.
    """
    base = gadget_for_abcd_be_ef()
    return PreGadget(base.database, base.in_element, base.out_element, base.label, name="Figure 16 (abcd|bef)")


NAMED_GADGETS = {
    "aa": gadget_for_aa,
    "aaa": gadget_for_aaa,
    "axb|cxd": gadget_for_axb_cxd,
    "aba|bab": gadget_for_aba_bab,
    "aab": gadget_for_aab,
    "ab|bc|ca": gadget_for_ab_bc_ca,
    "abcd|be|ef": gadget_for_abcd_be_ef,
    "abcd|bef": gadget_for_abcd_bef,
}
