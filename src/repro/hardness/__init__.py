"""Hardness machinery: gadgets, hypergraphs of matches, condensation, machine
verification, the vertex-cover reduction, and the constructive hardness drivers
of Theorems 5.3 and 6.1."""

from .construct import (
    HardnessCertificate,
    four_legged_hardness_gadget,
    hardness_gadget,
    repeated_letter_hardness_gadget,
)
from .gadgets import GadgetBuilder, PreGadget, encode_graph
from .hypergraph import Hypergraph, condense, is_odd_path, minimum_hitting_set
from .reductions import ReductionInstance, build_reduction, check_reduction
from .verification import GadgetVerification, require_verified, verify_gadget
from .vertex_cover import minimum_vertex_cover, subdivide, vertex_cover_number

__all__ = [
    "GadgetBuilder",
    "GadgetVerification",
    "HardnessCertificate",
    "Hypergraph",
    "PreGadget",
    "ReductionInstance",
    "build_reduction",
    "check_reduction",
    "condense",
    "encode_graph",
    "four_legged_hardness_gadget",
    "hardness_gadget",
    "is_odd_path",
    "minimum_hitting_set",
    "minimum_vertex_cover",
    "repeated_letter_hardness_gadget",
    "require_verified",
    "subdivide",
    "vertex_cover_number",
    "verify_gadget",
]
