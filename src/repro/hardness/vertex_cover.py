"""Minimum vertex cover and the subdivision lemma (Section 4.1 of the paper).

The hardness reductions of the paper go through the minimum vertex cover
problem; this module provides an exact branch-and-bound vertex-cover solver (for
validating reductions on small graphs) together with graph subdivisions and the
identity of Proposition 4.2: for odd ``l``, the vertex cover number of an
``l``-subdivision of ``G`` is ``vc(G) + m (l - 1) / 2``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def _normalize(edges: Iterable[Edge]) -> list[frozenset]:
    normalized: list[frozenset] = []
    seen: set[frozenset] = set()
    for left, right in edges:
        if left == right:
            raise ValueError("self-loops are not allowed in vertex-cover instances")
        edge = frozenset((left, right))
        if edge not in seen:
            seen.add(edge)
            normalized.append(edge)
    return normalized


def is_vertex_cover(edges: Iterable[Edge], cover: Iterable[Vertex]) -> bool:
    """Return whether ``cover`` touches every edge."""
    cover_set = set(cover)
    return all(set(edge) & cover_set for edge in _normalize(edges))


def minimum_vertex_cover(edges: Sequence[Edge]) -> frozenset:
    """Return a minimum vertex cover of an undirected graph (exact branch and bound).

    The classical branching rule is used: pick an uncovered edge ``{u, v}`` and
    branch on putting ``u`` or ``v`` in the cover; degree-1 vertices are handled
    by always covering their neighbour.
    """
    normalized = _normalize(edges)
    best: list[frozenset] = [frozenset({v for edge in normalized for v in edge})]

    def branch(remaining: list[frozenset], chosen: frozenset) -> None:
        if len(chosen) >= len(best[0]):
            return
        uncovered = [edge for edge in remaining if not edge & chosen]
        if not uncovered:
            best[0] = chosen
            return
        # Lower bound: a greedy matching of the uncovered edges.
        matched: set[Vertex] = set()
        matching_size = 0
        for edge in uncovered:
            if not edge & matched:
                matched |= edge
                matching_size += 1
        if len(chosen) + matching_size >= len(best[0]):
            return
        # Branch on the endpoints of the edge with the highest-degree endpoint.
        degrees: dict[Vertex, int] = {}
        for edge in uncovered:
            for vertex in edge:
                degrees[vertex] = degrees.get(vertex, 0) + 1
        edge = max(uncovered, key=lambda e: max(degrees[v] for v in e))
        left, right = sorted(edge, key=repr)
        if degrees[right] > degrees[left]:
            left, right = right, left
        branch(uncovered, chosen | {left})
        branch(uncovered, chosen | {right})

    branch(normalized, frozenset())
    return best[0]


def vertex_cover_number(edges: Sequence[Edge]) -> int:
    """Return the vertex cover number of an undirected graph."""
    return len(minimum_vertex_cover(edges))


def subdivide(edges: Sequence[Edge], length: int) -> list[Edge]:
    """Return an ``length``-subdivision of the graph: each edge becomes a path of ``length`` edges.

    Fresh internal vertices are named ``("sub", edge_index, position)``.
    """
    if length < 1:
        raise ValueError("the subdivision length must be at least 1")
    result: list[Edge] = []
    for index, (left, right) in enumerate(edges):
        if length == 1:
            result.append((left, right))
            continue
        previous: Vertex = left
        for position in range(1, length):
            middle: Vertex = ("sub", index, position)
            result.append((previous, middle))
            previous = middle
        result.append((previous, right))
    return result


def subdivision_vertex_cover_number(edges: Sequence[Edge], length: int) -> int:
    """Return ``vc(G) + m (length - 1) / 2`` as predicted by Proposition 4.2 (odd ``length``)."""
    if length % 2 != 1:
        raise ValueError("Proposition 4.2 requires an odd subdivision length")
    num_edges = len(_normalize(edges))
    return vertex_cover_number(edges) + num_edges * (length - 1) // 2
