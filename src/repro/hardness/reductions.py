"""The vertex-cover-to-resilience reduction (Proposition 4.11).

Given a verified gadget for a language ``L`` and an undirected graph ``G``, the
encoding of (an arbitrary orientation of) ``G`` with the gadget has resilience
``vc(G) + m (l - 1) / 2`` in set semantics, where ``m`` is the number of edges
of ``G`` and ``l`` is the (odd) length of the gadget's condensed path.  This
module builds the encoding, predicts the resilience through the vertex-cover
solver, and can cross-check the prediction against the exact resilience
algorithm (the numerical validation used by the hardness benchmarks).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from collections.abc import Sequence

from ..exceptions import SearchBudgetExceeded
from ..graphdb.database import GraphDatabase
from ..languages.core import Language
from ..resilience.exact import resilience_exact
from . import vertex_cover
from .gadgets import PreGadget, encode_graph
from .verification import GadgetVerification, require_verified


@dataclass
class ReductionInstance:
    """One instance of the vertex-cover reduction.

    Attributes:
        language: the query language.
        gadget: the verified gadget used.
        graph_edges: the undirected input graph.
        encoding: the encoded database ``Xi``.
        subdivision_length: the odd length ``l`` of the gadget's condensed path.
        vertex_cover_number: ``vc(G)`` computed exactly.
        predicted_resilience: ``vc(G) + m (l - 1) / 2``.
    """

    language: Language
    gadget: PreGadget
    graph_edges: tuple[tuple[object, object], ...]
    encoding: GraphDatabase
    subdivision_length: int
    vertex_cover_number: int
    predicted_resilience: int


def build_reduction(
    language: Language,
    gadget: PreGadget,
    graph_edges: Sequence[tuple[object, object]],
    *,
    verification: GadgetVerification | None = None,
) -> ReductionInstance:
    """Encode an undirected graph with a gadget and predict the resilience of the encoding."""
    if verification is None:
        verification = require_verified(language, gadget)
    assert verification.path_length is not None
    encoding, _ = encode_graph(gadget, list(graph_edges))
    cover = vertex_cover.vertex_cover_number(graph_edges)
    length = verification.path_length
    predicted = cover + len(_dedupe(graph_edges)) * (length - 1) // 2
    return ReductionInstance(
        language=language,
        gadget=gadget,
        graph_edges=tuple(graph_edges),
        encoding=encoding,
        subdivision_length=length,
        vertex_cover_number=cover,
        predicted_resilience=predicted,
    )


def _dedupe(edges: Sequence[tuple[object, object]]) -> list[frozenset]:
    seen: set[frozenset] = set()
    result = []
    for left, right in edges:
        edge = frozenset((left, right))
        if edge not in seen:
            seen.add(edge)
            result.append(edge)
    return result


def check_reduction(instance: ReductionInstance, *, max_nodes: int | None = 10_000_000) -> bool:
    """Cross-check the predicted resilience of an encoding against the exact algorithm.

    This is the numerical validation that the reduction of Proposition 4.11 is
    correct on a concrete graph; it is feasible for small graphs only (the exact
    algorithm is exponential -- which is the point of the reduction).

    ``max_nodes`` is a wall-clock guard, not a correctness bound.  The compiled
    overlay search explores branch-and-bound nodes roughly five times faster
    than the seed implementation and its (now deterministic) witness-walk
    tie-breaking can produce a differently-shaped search tree, so the default
    budget is scaled up to keep the effective time limit comparable.

    A budget overrun means the check is *inconclusive* and is reported as
    ``False`` (the prediction was not confirmed) with a :class:`RuntimeWarning`
    naming the tripped budget, so an ``assert check_reduction(...)`` failure is
    distinguishable from a genuinely refuted prediction.  Only
    :class:`~repro.exceptions.SearchBudgetExceeded` is treated this way; any
    other error from the exact search propagates unchanged.
    """
    try:
        result = resilience_exact(
            instance.language, instance.encoding, semantics="set", max_nodes=max_nodes
        )
    except SearchBudgetExceeded as error:
        warnings.warn(
            f"check_reduction inconclusive, not refuted: {error} "
            f"(nodes_explored={error.nodes_explored})",
            RuntimeWarning,
            stacklevel=2,
        )
        return False
    return result.value == instance.predicted_resilience
