"""Machine verification of hardness gadgets (reproduction of the authors' artifact, Section 4.3).

Given a pre-gadget and a query language, the verifier:

1. checks the structural pre-gadget conditions of Definition 4.3;
2. builds the completion and exhaustively enumerates the matches of the query on it;
3. builds the hypergraph of matches, applies the condensation rules (protecting
   the two endpoint facts), and checks that the result is an odd path from
   ``F_in`` to ``F_out`` (Definition 4.9).

A successfully verified gadget, combined with Proposition 4.11, is a
machine-checked NP-hardness certificate for the resilience of the language.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import GadgetError
from ..graphdb.database import Fact, GraphDatabase
from ..languages.core import Language
from ..rpq import matching
from . import hypergraph as hg
from .gadgets import PreGadget


@dataclass
class GadgetVerification:
    """The outcome of verifying a gadget against a query language.

    Attributes:
        valid: whether the pre-gadget is a gadget for the language (Definition 4.9).
        reason: human-readable explanation when invalid.
        path_length: the (odd) number of hyperedges of the condensed path when valid.
        num_matches: the number of matches of the language on the completion.
        condensed: the condensed hypergraph (for reporting / figures).
        completion: the completed gadget database.
        in_fact / out_fact: the endpoint facts of the completion.
        trace: the condensation steps applied.
    """

    valid: bool
    reason: str
    path_length: int | None
    num_matches: int
    condensed: hg.Hypergraph | None
    completion: GraphDatabase | None
    in_fact: Fact | None
    out_fact: Fact | None
    trace: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


def matches_of_completion(
    language: Language, pre_gadget: PreGadget, max_walk_length: int | None = None
) -> tuple[GraphDatabase, set[frozenset[Fact]]]:
    """Return the completion database and the matches of the language on it."""
    completion = pre_gadget.completion()
    matches = matching.enumerate_matches(language, completion, max_walk_length=max_walk_length)
    return completion, matches


def verify_gadget(
    language: Language,
    pre_gadget: PreGadget,
    *,
    max_walk_length: int | None = None,
) -> GadgetVerification:
    """Verify that a pre-gadget is a hardness gadget for a language (Definition 4.9)."""
    try:
        pre_gadget.validate()
    except GadgetError as error:
        return GadgetVerification(False, f"pre-gadget condition violated: {error}", None, 0, None, None, None, None)

    completion, matches = matches_of_completion(language, pre_gadget, max_walk_length)
    in_fact, out_fact = pre_gadget.in_fact, pre_gadget.out_fact

    if frozenset() in matches:
        return GadgetVerification(
            False,
            "the empty match (epsilon in the language) makes every database satisfy the query",
            None,
            len(matches),
            None,
            completion,
            in_fact,
            out_fact,
        )
    if not matches:
        return GadgetVerification(
            False, "the completion has no match at all", None, 0, None, completion, in_fact, out_fact
        )

    graph = hg.Hypergraph.from_matches(completion.facts, matches)
    trace = hg.CondensationTrace()
    condensed = hg.condense(graph, protected=[in_fact, out_fact], trace=trace)
    length = hg.odd_path_length(condensed, in_fact, out_fact)
    if length is None:
        return GadgetVerification(
            False,
            "the condensed hypergraph of matches is not an odd path between the endpoint facts",
            None,
            len(matches),
            condensed,
            completion,
            in_fact,
            out_fact,
            trace.steps,
        )
    return GadgetVerification(
        True,
        "gadget verified",
        length,
        len(matches),
        condensed,
        completion,
        in_fact,
        out_fact,
        trace.steps,
    )


def require_verified(language: Language, pre_gadget: PreGadget, **kwargs) -> GadgetVerification:
    """Verify a gadget and raise :class:`GadgetError` when it is invalid."""
    verification = verify_gadget(language, pre_gadget, **kwargs)
    if not verification.valid:
        raise GadgetError(
            f"gadget {pre_gadget.name or '<unnamed>'} is not valid for {language}: {verification.reason}"
        )
    return verification


def describe_condensed_path(verification: GadgetVerification) -> list[str]:
    """Return the condensed path as a list of printable fact names (for reports)."""
    if not verification.valid or verification.condensed is None:
        return []
    condensed = verification.condensed
    adjacency: dict[Fact, list[Fact]] = {node: [] for node in condensed.nodes}
    for edge in condensed.edges:
        left, right = tuple(edge)
        adjacency[left].append(right)
        adjacency[right].append(left)
    path = [verification.in_fact]
    previous = None
    current = verification.in_fact
    while current != verification.out_fact:
        nxt = [node for node in adjacency[current] if node != previous]
        previous, current = current, nxt[0]
        path.append(current)
    return [str(fact) for fact in path]
