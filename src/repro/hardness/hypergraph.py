"""Hypergraphs of matches and the condensation rules (Section 4.3 of the paper).

The hypergraph of matches ``H_{L,D}`` has the facts of the database as nodes and
the matches of the query as hyperedges; the resilience in set semantics is the
minimum hitting set of this hypergraph.  Two *condensation rules* simplify a
hypergraph without changing the minimum hitting-set size (Claim 4.8):

* edge domination: if ``e ⊆ e'`` with ``e ≠ e'``, drop ``e'``;
* node domination: if ``E(v) ⊆ E(v')`` with ``v ≠ v'``, drop ``v``
  (removing it from every hyperedge).

Gadget verification needs a condensation that keeps the two endpoint facts, so
:func:`condense` accepts a set of *protected* nodes that node domination never
removes (the rules are confluent up to isomorphism, see the paper, so protecting
the endpoints does not change whether an odd path can be reached).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

HyperNode = Hashable
HyperEdge = frozenset


@dataclass
class Hypergraph:
    """A hypergraph with hashable nodes and frozenset hyperedges."""

    nodes: frozenset[HyperNode]
    edges: frozenset[HyperEdge]

    def __post_init__(self) -> None:
        for edge in self.edges:
            if not edge <= self.nodes:
                raise ValueError("hyperedge uses unknown nodes")

    @classmethod
    def from_matches(cls, nodes: Iterable[HyperNode], matches: Iterable[Iterable[HyperNode]]) -> "Hypergraph":
        return cls(frozenset(nodes), frozenset(frozenset(match) for match in matches))

    def incident_edges(self, node: HyperNode) -> frozenset[HyperEdge]:
        """Return ``E(v)``: the hyperedges containing the node."""
        return frozenset(edge for edge in self.edges if node in edge)

    def incidence(self) -> dict[HyperNode, set[HyperEdge]]:
        result: dict[HyperNode, set[HyperEdge]] = {node: set() for node in self.nodes}
        for edge in self.edges:
            for node in edge:
                result[node].add(edge)
        return result

    def remove_edge(self, edge: HyperEdge) -> "Hypergraph":
        return Hypergraph(self.nodes, self.edges - {edge})

    def remove_node(self, node: HyperNode) -> "Hypergraph":
        return Hypergraph(
            frozenset(n for n in self.nodes if n != node),
            frozenset(frozenset(edge - {node}) for edge in self.edges),
        )

    def __repr__(self) -> str:
        return f"Hypergraph({len(self.nodes)} nodes, {len(self.edges)} hyperedges)"


@dataclass
class CondensationTrace:
    """A record of the condensation steps applied (for reporting and debugging)."""

    steps: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.steps.append(message)


def condense(
    hypergraph: Hypergraph,
    protected: Iterable[HyperNode] = (),
    trace: CondensationTrace | None = None,
) -> Hypergraph:
    """Apply the condensation rules until a fixpoint, never removing protected nodes.

    Edge domination is applied eagerly; node domination removes any node whose
    incident-edge set is contained in that of another node (ties broken by a
    deterministic order, protected nodes always kept).
    """
    protected_set = set(protected)
    current = hypergraph
    changed = True
    while changed:
        changed = False

        # Edge domination: drop strict supersets of other edges (and leave one
        # copy of duplicated edges, which frozenset storage already ensures).
        edges = sorted(current.edges, key=lambda edge: (len(edge), repr(sorted(edge, key=repr))))
        kept: list[HyperEdge] = []
        dropped: set[HyperEdge] = set()
        for edge in edges:
            if any(other < edge for other in kept):
                dropped.add(edge)
                continue
            kept.append(edge)
        if dropped:
            changed = True
            if trace is not None:
                for edge in dropped:
                    trace.note(f"edge-domination removed a hyperedge of size {len(edge)}")
            current = Hypergraph(current.nodes, frozenset(kept))

        # Node domination.
        incidence = current.incidence()
        ordered_nodes = sorted(current.nodes, key=repr)
        removed_node = None
        for node in ordered_nodes:
            if node in protected_set:
                continue
            node_edges = incidence[node]
            for other in ordered_nodes:
                if other == node:
                    continue
                if node_edges <= incidence[other]:
                    removed_node = node
                    break
            if removed_node is not None:
                break
        if removed_node is not None:
            changed = True
            if trace is not None:
                trace.note(f"node-domination removed {removed_node!r}")
            current = current.remove_node(removed_node)
    return current


def is_odd_path(hypergraph: Hypergraph, start: HyperNode, end: HyperNode) -> bool:
    """Return whether the hypergraph is an odd path from ``start`` to ``end`` (Definition 4.9).

    All hyperedges must have size two and, viewed as an undirected graph, the
    hypergraph must be a simple path from ``start`` to ``end`` with an odd number
    of edges covering every node.
    """
    if start == end:
        return False
    if start not in hypergraph.nodes or end not in hypergraph.nodes:
        return False
    if not hypergraph.edges:
        return False
    if any(len(edge) != 2 for edge in hypergraph.edges):
        return False
    adjacency: dict[HyperNode, set[HyperNode]] = {node: set() for node in hypergraph.nodes}
    for edge in hypergraph.edges:
        left, right = tuple(edge)
        adjacency[left].add(right)
        adjacency[right].add(left)
    # Degree conditions of a simple path.
    for node in hypergraph.nodes:
        degree = len(adjacency[node])
        if node in (start, end):
            if degree != 1:
                return False
        elif degree != 2:
            return False
    # Walk from start to end and check we traverse every edge exactly once.
    visited_nodes = {start}
    previous: HyperNode | None = None
    node = start
    steps = 0
    while node != end:
        candidates = [n for n in adjacency[node] if n != previous]
        if len(candidates) != 1:
            return False
        previous, node = node, candidates[0]
        steps += 1
        if node in visited_nodes:
            return False
        visited_nodes.add(node)
        if steps > len(hypergraph.edges):
            return False
    if visited_nodes != hypergraph.nodes:
        return False
    if steps != len(hypergraph.edges):
        return False
    return steps % 2 == 1


def odd_path_length(hypergraph: Hypergraph, start: HyperNode, end: HyperNode) -> int | None:
    """Return the number of edges of the odd path, or ``None`` if it is not an odd path."""
    if not is_odd_path(hypergraph, start, end):
        return None
    return len(hypergraph.edges)


def minimum_hitting_set(hypergraph: Hypergraph) -> frozenset[HyperNode]:
    """Return a minimum hitting set by branch and bound (exact, for small hypergraphs)."""
    edges = [edge for edge in hypergraph.edges]
    if any(not edge for edge in edges):
        raise ValueError("an empty hyperedge cannot be hit")
    best: list[frozenset[HyperNode]] = [frozenset(hypergraph.nodes)]

    def branch(remaining: list[HyperEdge], chosen: frozenset[HyperNode]) -> None:
        if len(chosen) >= len(best[0]):
            return
        uncovered = [edge for edge in remaining if not edge & chosen]
        if not uncovered:
            best[0] = chosen
            return
        edge = min(uncovered, key=len)
        for node in sorted(edge, key=repr):
            branch(uncovered, chosen | {node})

    branch(edges, frozenset())
    return best[0]


def minimum_hitting_set_size(hypergraph: Hypergraph) -> int:
    """Return the size of a minimum hitting set."""
    return len(minimum_hitting_set(hypergraph))
