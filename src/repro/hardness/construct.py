"""Generic gadget constructions and the hardness drivers of Theorems 5.3 and 6.1.

This module turns the constructive hardness proofs of the paper into executable
constructions:

* :func:`repeated_letter_chain_gadget` -- the chain gadgets of Figures 7 and 8
  (Lemma 6.6: word ``a gamma a delta`` with no infix of ``gamma a gamma`` in the
  language);
* :func:`four_legged_case1_gadget` / :func:`four_legged_case2_gadget` -- the
  generic gadgets of Figures 5 and 6 (Theorem 5.3), parameterised by a stable
  four-legged witness;
* :func:`nonoverlap_gadget` -- the gadget of Figure 12 (Claim 6.13: words
  ``a x eta y a`` and ``y a x`` with ``x, y != a``);
* :func:`four_legged_hardness_gadget` and :func:`repeated_letter_hardness_gadget`
  -- the drivers following the case analyses of Theorem 5.3 and Theorem 6.1;
* :func:`hardness_gadget` -- the master entry point returning a machine-verified
  :class:`HardnessCertificate` for any language covered by the paper's hardness
  results.

Every construction is verified against the concrete input language with
:func:`repro.hardness.verification.verify_gadget` before being returned, so a
returned certificate is always machine-checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import GadgetError, GadgetNotAvailableError
from ..languages.core import Language
from ..languages.four_legged import (
    FourLeggedWitness,
    find_stable_witness,
    find_witness,
    stabilize_witness,
)
from ..languages.words import maximal_gap_words
from .gadgets import GadgetBuilder, PreGadget
from .verification import GadgetVerification, verify_gadget

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..resilience.engine import LanguageCache


@dataclass
class HardnessCertificate:
    """A machine-checked NP-hardness certificate for a resilience problem.

    Attributes:
        language: the language the certificate is about.
        gadget_language: the language the gadget is verified against -- either
            ``language`` itself or its mirror (hardness transfers through
            Proposition 6.3).
        mirrored: whether the gadget is for the mirror language.
        gadget: the verified pre-gadget.
        verification: the verification outcome (odd-path length, match count...).
        provenance: which result of the paper produced the gadget.
    """

    language: Language
    gadget_language: Language
    mirrored: bool
    gadget: PreGadget
    verification: GadgetVerification
    provenance: str

    @property
    def path_length(self) -> int:
        assert self.verification.path_length is not None
        return self.verification.path_length


# --------------------------------------------------------------------------- Figures 7 and 8


def repeated_letter_chain_gadget(letter: str, gamma: str, delta: str) -> PreGadget:
    """Build the chain gadget of Lemma 6.6 for the word ``letter gamma letter delta``.

    Figure 7 is the case ``delta == ""`` and Figure 8 the case ``delta != ""``;
    both use the same chain of four internal ``letter``-edges separated by
    ``gamma``-paths, with a ``delta``-path hanging off after every ``letter``-edge.

    When ``gamma`` is empty (word ``a a delta``) the out-block cannot join the
    chain through a ``gamma``-path; it instead contributes its own
    ``letter``-edge into the last chain node so that the out match shares the
    final ``delta``-path (this keeps the odd-path property; for ``delta``
    empty as well the word is ``aa`` and the Figure 3b gadget applies instead).
    """
    builder = GadgetBuilder()
    if not gamma:
        if not delta:
            raise GadgetError(
                "the chain gadget needs gamma or delta to be non-empty; "
                "for the word 'aa' use the Figure 3b gadget"
            )
        previous = "t_in"
        last_node = previous
        for block in range(4):
            after = builder.fresh_node("h")
            builder.add_edge(previous, letter, after)
            builder.add_word_path(after, delta, builder.fresh_node("d"))
            previous = after
            last_node = after
        builder.add_edge("t_out", letter, last_node)
        return builder.build(
            "t_in", "t_out", letter, name=f"Lemma 6.6 chain ({letter}, '', {delta!r})"
        )
    chain_targets = []
    previous = "t_in"
    for block in range(4):
        before = builder.fresh_node("g")
        after = builder.fresh_node("h")
        builder.add_word_path(previous, gamma, before)
        builder.add_edge(before, letter, after)
        chain_targets.append((before, after))
        if delta:
            builder.add_word_path(after, delta, builder.fresh_node("d"))
        previous = after
    # The out-block joins the chain right before its last letter-edge.
    last_before, _ = chain_targets[-1]
    builder.add_word_path("t_out", gamma, last_before)
    return builder.build("t_in", "t_out", letter, name=f"Lemma 6.6 chain ({letter}, {gamma!r}, {delta!r})")


# --------------------------------------------------------------------------- Figure 5 (case 1)


def four_legged_case1_gadget(witness: FourLeggedWitness) -> PreGadget:
    """Build the generic case-1 gadget of Theorem 5.3 (Figure 5).

    Case 1 applies when the legs are stable and no infix of ``gamma' x beta'`` is
    in the language.  The construction generalizes the ``axb|cxd`` gadget of
    Figure 4a: words ``alpha'``, ``beta'``, ``gamma'``, ``delta'`` label paths in
    place of the single letters ``a``, ``b``, ``c``, ``d``.
    """
    body = witness.body
    alpha_p = witness.alpha
    beta_p = witness.beta
    gamma_p = witness.gamma
    delta_p = witness.delta
    label = alpha_p[0]
    alpha_rest = alpha_p[1:]

    builder = GadgetBuilder()

    def alpha_path_into(head: str, *, from_node: str | None = None) -> None:
        """Add a path spelling alpha' ending at ``head`` (optionally reusing its start)."""
        start = from_node if from_node is not None else builder.fresh_node("p")
        builder.add_word_path(start, alpha_p, head)

    def gamma_path_into(head: str) -> None:
        builder.add_word_path(builder.fresh_node("q"), gamma_p, head)

    def beta_path_from(tail: str) -> None:
        builder.add_word_path(tail, beta_p, builder.fresh_node("b"))

    def delta_path_from(tail: str) -> None:
        builder.add_word_path(tail, delta_p, builder.fresh_node("d"))

    # In-block: the completion fact provides the first letter of alpha'.
    builder.add_word_path("t_in", alpha_rest, "A1")
    builder.add_edge("A1", body, "V1")
    beta_path_from("V1")
    delta_path_from("V1")

    # Block A: alpha'- and gamma'-paths meeting at A2, then x into V1.
    alpha_path_into("A2")
    gamma_path_into("A2")
    builder.add_edge("A2", body, "V1")

    # Block B: a gamma'-path into A3, with x-edges into V1 and V2.
    gamma_path_into("A3")
    builder.add_edge("A3", body, "V1")
    builder.add_edge("A3", body, "V2")
    beta_path_from("V2")
    delta_path_from("V2")

    # Block C: alpha'- and gamma'-paths into A4, with x-edges into V2 and V3.
    alpha_path_into("A4")
    gamma_path_into("A4")
    builder.add_edge("A4", body, "V2")
    builder.add_edge("A4", body, "V3")
    beta_path_from("V3")

    # Out-block: the completion fact provides the first letter of alpha'.
    builder.add_word_path("t_out", alpha_rest, "A5")
    builder.add_edge("A5", body, "V3")

    return builder.build("t_in", "t_out", label, name=f"Theorem 5.3 case 1 ({witness.word_one}|{witness.word_two})")


# --------------------------------------------------------------------------- Figure 6 (case 2)


def four_legged_case2_gadget(witness: FourLeggedWitness) -> PreGadget:
    """Build the generic case-2 gadget of Theorem 5.3 (Figure 6).

    Case 2 applies when the legs are stable but some infix of ``gamma' x beta'``
    belongs to the language (every such infix must then contain ``c2 x b`` where
    ``c2`` is the last letter of ``gamma'`` and ``b`` the first letter of
    ``beta'``).

    The construction is a chain of seven condensed matches::

        F_in --[alpha'xbeta']-- b1 --[alpha'xbeta']-- x1 --[gamma'xdelta']-- c2_B
             --[gamma'xdelta']-- d2 --[gamma'xdelta']-- c2_H --[gamma'xbeta' core]-- b3
             --[alpha'xbeta']-- F_out

    built from: an in-block (completion alpha', x into V1), a shared head B
    receiving alpha' and gamma' with x-edges into V1 (beta'- and delta'-exits)
    and V2 (shared delta'-exit), a gamma'-only head H with x-edges into V2 and
    V3 (beta'-exit), and an out-block (completion alpha', x into V3).  The
    ``gamma' x beta'``-infix matches are all edge-dominated by the condensed
    ``{c2, x}`` and ``{x, b}`` matches except at V3, where they provide the
    seventh path edge -- this is exactly where case 2 differs from case 1.
    """
    body = witness.body
    alpha_p = witness.alpha
    beta_p = witness.beta
    gamma_p = witness.gamma
    delta_p = witness.delta
    label = alpha_p[0]
    alpha_rest = alpha_p[1:]

    builder = GadgetBuilder()

    def alpha_path_into(head: str) -> None:
        builder.add_word_path(builder.fresh_node("pa"), alpha_p, head)

    def gamma_path_into(head: str) -> None:
        builder.add_word_path(builder.fresh_node("pg"), gamma_p, head)

    def beta_path_from(tail: str) -> None:
        builder.add_word_path(tail, beta_p, builder.fresh_node("b"))

    def delta_path_from(tail: str) -> None:
        builder.add_word_path(tail, delta_p, builder.fresh_node("d"))

    # In-block: the completion fact supplies the first letter of alpha'.
    builder.add_word_path("t_in", alpha_rest, "HIN")
    builder.add_edge("HIN", body, "V1")
    beta_path_from("V1")
    delta_path_from("V1")

    # Shared head B (alpha' and gamma') with x-edges into V1 and V2.
    alpha_path_into("HB")
    gamma_path_into("HB")
    builder.add_edge("HB", body, "V1")
    builder.add_edge("HB", body, "V2")
    delta_path_from("V2")

    # Gamma'-only head H with x-edges into V2 (shared delta') and V3 (beta').
    gamma_path_into("HH")
    builder.add_edge("HH", body, "V2")
    builder.add_edge("HH", body, "V3")
    beta_path_from("V3")

    # Out-block: the completion fact supplies the first letter of alpha'.
    builder.add_word_path("t_out", alpha_rest, "HOUT")
    builder.add_edge("HOUT", body, "V3")

    return builder.build("t_in", "t_out", label, name=f"Theorem 5.3 case 2 ({witness.word_one}|{witness.word_two})")


# --------------------------------------------------------------------------- Figure 12


def nonoverlap_gadget(letter: str, x_letter: str, y_letter: str, eta: str) -> PreGadget:
    """Build the gadget of Claim 6.13 (Figure 12) for words ``a x eta y a`` and ``y a x``.

    Requires ``x != a`` and ``y != a`` (the other sub-cases of the claim reduce to
    the ``aab`` / ``aaa`` gadgets, possibly after mirroring).
    """
    if x_letter == letter or y_letter == letter:
        raise GadgetError("Claim 6.13's gadget requires x != a and y != a")
    builder = GadgetBuilder()

    def xey_segment(start: str, end: str) -> None:
        """Add a path spelling ``x eta y`` from ``start`` to ``end``."""
        middle_in = builder.fresh_node("e")
        middle_out = builder.fresh_node("f")
        builder.add_edge(start, x_letter, middle_in)
        builder.add_word_path(middle_in, eta, middle_out)
        builder.add_edge(middle_out, y_letter, end)

    # In-chain: (completion a) x eta y a into the loop node N.
    xey_segment("t_in", "in_y")
    builder.add_edge("in_y", letter, "N")

    # Loop block: N x eta y back onto N (through the back a-edge) and forward.
    xey_segment("N", "loop_y")
    builder.add_edge("loop_y", letter, "N")
    builder.add_edge("loop_y", letter, "u1")

    # Two plain units: a x eta y a chained forward.
    xey_segment("u1", "u1_y")
    builder.add_edge("u1_y", letter, "u2")
    xey_segment("u2", "u2_y")
    builder.add_edge("u2_y", letter, "u3")

    # Out-chain: (completion a) x eta y joining the last unit's y-target.
    builder.add_edge("t_out", x_letter, "out_x")
    builder.add_word_path("out_x", eta, "out_e")
    builder.add_edge("out_e", y_letter, "u2_y")

    return builder.build(
        "t_in", "t_out", letter, name=f"Claim 6.13 ({letter}{x_letter}{eta}{y_letter}{letter} & {y_letter}{letter}{x_letter})"
    )


# --------------------------------------------------------------------------- Theorem 5.3 driver


def _case1_applies(language: Language, witness: FourLeggedWitness) -> bool:
    """Return whether no infix of ``gamma' x beta'`` is in the language (case 1)."""
    word = witness.gamma + witness.body + witness.beta
    for start in range(len(word)):
        for end in range(start, len(word) + 1):
            if language.contains(word[start:end]):
                return False
    return True


def four_legged_hardness_gadget(
    language: Language, witness: FourLeggedWitness | None = None
) -> HardnessCertificate:
    """Build and verify a hardness gadget for a four-legged language (Theorem 5.3).

    Args:
        language: an infix-free four-legged language.
        witness: an optional four-legged witness (it will be stabilized); found
            automatically when omitted.

    Raises:
        GadgetNotAvailableError: if no witness exists or the construction cannot
            be verified for this language.
    """
    if witness is None:
        stable = find_stable_witness(language)
        if stable is None:
            raise GadgetNotAvailableError(f"{language} has no four-legged witness")
    else:
        stable = stabilize_witness(language, witness)

    if _case1_applies(language, stable):
        gadget = four_legged_case1_gadget(stable)
        provenance = "Theorem 5.3 (case 1, Figure 5)"
    else:
        gadget = four_legged_case2_gadget(stable)
        provenance = "Theorem 5.3 (case 2, Figure 6)"
    verification = verify_gadget(language, gadget)
    if not verification.valid:
        raise GadgetNotAvailableError(
            f"the {provenance} construction failed verification for {language}: {verification.reason}"
        )
    return HardnessCertificate(language, language, False, gadget, verification, provenance)


# --------------------------------------------------------------------------- Theorem 6.1 driver


def repeated_letter_hardness_gadget(language: Language) -> HardnessCertificate:
    """Build and verify a hardness gadget for a finite infix-free language with a
    repeated-letter word, following the case analysis of Theorem 6.1.

    The returned certificate may be for the mirror language (``mirrored=True``),
    in which case hardness transfers through Proposition 6.3.

    Raises:
        GadgetNotAvailableError: if the language has no repeated-letter word or a
            construction step cannot be verified.
    """
    if not language.is_finite():
        raise GadgetNotAvailableError("Theorem 6.1 only applies to finite languages")
    if not language.is_infix_free():
        raise GadgetNotAvailableError("Theorem 6.1 requires an infix-free language")
    decompositions = maximal_gap_words(language.words())
    if not decompositions:
        raise GadgetNotAvailableError(f"{language} has no word with a repeated letter")
    _, beta, letter, gamma, delta = sorted(decompositions)[0]

    if beta and delta:
        # Claim 6.5: the language is four-legged.
        witness = FourLeggedWitness(letter, beta + letter + gamma, delta, beta, gamma + letter + delta)
        certificate = four_legged_hardness_gadget(language, witness)
        return HardnessCertificate(
            language, language, False, certificate.gadget, certificate.verification,
            f"Theorem 6.1 via Claim 6.5 and {certificate.provenance}",
        )
    if beta and not delta:
        # Mirror the language so that the prefix before the first repeated letter is empty.
        mirrored = language.mirror()
        inner = _repeated_letter_beta_empty(mirrored, letter, gamma[::-1], beta[::-1])
        return HardnessCertificate(
            language, mirrored, True, inner.gadget, inner.verification,
            f"Theorem 6.1 (mirrored, Proposition 6.3) via {inner.provenance}",
        )
    return _repeated_letter_beta_empty(language, letter, gamma, delta)


def _repeated_letter_beta_empty(
    language: Language, letter: str, gamma: str, delta: str
) -> HardnessCertificate:
    """Handle the ``beta = epsilon`` case of Theorem 6.1 (word ``a gamma a delta``)."""
    if not gamma and not delta:
        # The word is ``aa``: use the Figure 3b gadget of Proposition 4.1.
        gadget = _relabelled_aa(letter)
        verification = verify_gadget(language, gadget)
        if not verification.valid:
            raise GadgetNotAvailableError(
                f"the Proposition 4.1 gadget failed verification for {language}: {verification.reason}"
            )
        return HardnessCertificate(
            language, language, False, gadget, verification,
            "Theorem 6.1 via Proposition 4.1 (Figure 3b)",
        )
    infix = _infix_of_gamma_a_gamma(language, letter, gamma)
    if infix is None:
        gadget = repeated_letter_chain_gadget(letter, gamma, delta)
        verification = verify_gadget(language, gadget)
        if not verification.valid:
            raise GadgetNotAvailableError(
                f"the Lemma 6.6 chain gadget failed verification for {language}: {verification.reason}"
            )
        figure = "Figure 7" if not delta else "Figure 8"
        return HardnessCertificate(
            language, language, False, gadget, verification, f"Theorem 6.1 via Lemma 6.6 ({figure})"
        )

    gamma_1, gamma_2 = infix
    if delta:
        # Claim 6.8: four-legged.
        witness = FourLeggedWitness(letter, gamma_1, gamma_2, letter + gamma, delta)
        certificate = four_legged_hardness_gadget(language, witness)
        return HardnessCertificate(
            language, language, False, certificate.gadget, certificate.verification,
            f"Theorem 6.1 via Claim 6.8 and {certificate.provenance}",
        )

    if len(gamma_1) + len(gamma_2) > len(gamma):
        return _overlapping_case(language, letter, gamma, gamma_1, gamma_2)
    return _non_overlapping_case(language, letter, gamma, gamma_1, gamma_2)


def _infix_of_gamma_a_gamma(language: Language, letter: str, gamma: str) -> tuple[str, str] | None:
    """Return ``(gamma_1, gamma_2)`` such that ``gamma_1 a gamma_2`` is in the language,
    with ``gamma_1`` a non-empty suffix and ``gamma_2`` a non-empty prefix of ``gamma``
    (Claim 6.7), or ``None`` when no infix of ``gamma a gamma`` is in the language."""
    word = gamma + letter + gamma
    middle = len(gamma)
    for start in range(len(word)):
        for end in range(start, len(word) + 1):
            candidate = word[start:end]
            if candidate and language.contains(candidate):
                if start <= middle < end:
                    gamma_1 = word[start:middle]
                    gamma_2 = word[middle + 1 : end]
                    if gamma_1 and gamma_2:
                        return gamma_1, gamma_2
                # Any infix in the language must cover the middle letter with
                # non-empty parts when the language is infix-free (Claim 6.7);
                # other infixes are ignored.
    return None


def _overlapping_case(
    language: Language, letter: str, gamma: str, gamma_1: str, gamma_2: str
) -> HardnessCertificate:
    """The overlapping case of Theorem 6.1: ``gamma = eta'' eta eta'`` with non-empty overlap."""
    overlap = len(gamma_1) + len(gamma_2) - len(gamma)
    eta = gamma_1[:overlap]
    eta_prime = gamma_1[overlap:]
    eta_second = gamma_2[: len(gamma_2) - overlap]

    if eta_prime:
        # Claim 6.9, first part.
        body = eta_prime[0]
        sigma = eta_prime[1:]
        witness = FourLeggedWitness(
            body, eta, sigma + letter + eta_second + eta, letter + eta_second + eta, sigma + letter
        )
        certificate = four_legged_hardness_gadget(language, witness)
        return HardnessCertificate(
            language, language, False, certificate.gadget, certificate.verification,
            f"Theorem 6.1 via Claim 6.9 and {certificate.provenance}",
        )
    if eta_second:
        # Claim 6.9, second part (eta' is empty).
        body = eta_second[0]
        sigma = eta_second[1:]
        witness = FourLeggedWitness(body, letter, sigma + eta + letter, eta + letter, sigma + eta)
        certificate = four_legged_hardness_gadget(language, witness)
        return HardnessCertificate(
            language, language, False, certificate.gadget, certificate.verification,
            f"Theorem 6.1 via Claim 6.9 and {certificate.provenance}",
        )

    # eta' = eta'' = epsilon, so eta has length 1 by maximality.
    eta_letter = eta[0] if eta else ""
    if eta_letter and eta_letter != letter:
        from .library import gadget_for_aba_bab

        gadget = _relabelled_aba_bab(letter, eta_letter)
        verification = verify_gadget(language, gadget)
        if not verification.valid:
            raise GadgetNotAvailableError(
                f"the Claim 6.10 gadget failed verification for {language}: {verification.reason}"
            )
        return HardnessCertificate(
            language, language, False, gadget, verification, "Theorem 6.1 via Claim 6.10 (Figure 9)"
        )
    from .library import gadget_for_aaa

    gadget = _relabelled_aaa(letter)
    verification = verify_gadget(language, gadget)
    if not verification.valid:
        raise GadgetNotAvailableError(
            f"the Claim 6.11 gadget failed verification for {language}: {verification.reason}"
        )
    return HardnessCertificate(
        language, language, False, gadget, verification, "Theorem 6.1 via Claim 6.11 (Figure 10)"
    )


def _non_overlapping_case(
    language: Language, letter: str, gamma: str, gamma_1: str, gamma_2: str
) -> HardnessCertificate:
    """The non-overlapping case of Theorem 6.1: ``gamma = gamma_2 eta gamma_1``."""
    if len(gamma_1) >= 2:
        # Claim 6.12, first part.
        chi = gamma_1[:-1]
        body = gamma_1[-1]
        eta = gamma[len(gamma_2) : len(gamma) - len(gamma_1)]
        witness = FourLeggedWitness(
            body, chi, letter + gamma_2, letter + gamma_2 + eta + chi, letter
        )
        certificate = four_legged_hardness_gadget(language, witness)
        return HardnessCertificate(
            language, language, False, certificate.gadget, certificate.verification,
            f"Theorem 6.1 via Claim 6.12 and {certificate.provenance}",
        )
    if len(gamma_2) >= 2:
        # Claim 6.12, second part.
        body = gamma_2[0]
        chi = gamma_2[1:]
        eta = gamma[len(gamma_2) : len(gamma) - len(gamma_1)]
        witness = FourLeggedWitness(body, letter, chi + eta + gamma_1 + letter, gamma_1 + letter, chi)
        certificate = four_legged_hardness_gadget(language, witness)
        return HardnessCertificate(
            language, language, False, certificate.gadget, certificate.verification,
            f"Theorem 6.1 via Claim 6.12 and {certificate.provenance}",
        )

    # |gamma_1| = |gamma_2| = 1: the language contains a x eta y a and y a x.
    x_letter = gamma_2
    y_letter = gamma_1
    eta = gamma[1 : len(gamma) - 1]
    return _claim_6_13(language, letter, x_letter, y_letter, eta)


def _claim_6_13(
    language: Language, letter: str, x_letter: str, y_letter: str, eta: str
) -> HardnessCertificate:
    """Handle Claim 6.13 (words ``a x eta y a`` and ``y a x``)."""
    if y_letter == letter:
        # The language contains a a x.
        return _aab_or_aaa(language, letter, x_letter, mirrored=False, via="Claim 6.13 (y = a)")
    if x_letter == letter:
        # The mirror language contains a a y.
        mirrored = language.mirror()
        inner = _aab_or_aaa(mirrored, letter, y_letter, mirrored=True, via="Claim 6.13 (x = a, mirrored)")
        return HardnessCertificate(
            language, mirrored, True, inner.gadget, inner.verification, inner.provenance
        )
    gadget = nonoverlap_gadget(letter, x_letter, y_letter, eta)
    verification = verify_gadget(language, gadget)
    if not verification.valid:
        raise GadgetNotAvailableError(
            f"the Claim 6.13 gadget (Figure 12) failed verification for {language}: {verification.reason}"
        )
    return HardnessCertificate(
        language, language, False, gadget, verification, "Theorem 6.1 via Claim 6.13 (Figure 12)"
    )


def _aab_or_aaa(
    language: Language, letter: str, other: str, *, mirrored: bool, via: str
) -> HardnessCertificate:
    """Use the Figure 11 (``aab``) or Figure 10 (``aaa``) gadget."""
    if other == letter:
        gadget = _relabelled_aaa(letter)
        provenance = f"Theorem 6.1 via {via} and Claim 6.11 (Figure 10)"
    else:
        gadget = _relabelled_aab(letter, other)
        provenance = f"Theorem 6.1 via {via} and Claim 6.14 (Figure 11)"
    verification = verify_gadget(language, gadget)
    if not verification.valid:
        raise GadgetNotAvailableError(
            f"the {provenance} gadget failed verification for {language}: {verification.reason}"
        )
    return HardnessCertificate(language, language, mirrored, gadget, verification, provenance)


def _relabelled_aa(letter: str) -> PreGadget:
    from .library import gadget_for_aa
    from ..graphdb.database import Fact, GraphDatabase

    base = gadget_for_aa()
    facts = [Fact(f.source, letter, f.target) for f in base.database.facts]
    return PreGadget(GraphDatabase(facts), base.in_element, base.out_element, letter, name=f"Figure 3b ({letter*2})")


def _relabelled_aaa(letter: str) -> PreGadget:
    from .library import gadget_for_aaa
    from ..graphdb.database import Fact, GraphDatabase

    base = gadget_for_aaa()
    facts = [Fact(f.source, letter, f.target) for f in base.database.facts]
    return PreGadget(GraphDatabase(facts), base.in_element, base.out_element, letter, name=f"Figure 10 ({letter*3})")


def _relabelled_aab(letter: str, other: str) -> PreGadget:
    from .library import gadget_for_aab
    from ..graphdb.database import Fact, GraphDatabase

    base = gadget_for_aab()
    mapping = {"a": letter, "b": other}
    facts = [Fact(f.source, mapping[f.label], f.target) for f in base.database.facts]
    return PreGadget(
        GraphDatabase(facts), base.in_element, base.out_element, letter, name=f"Figure 11 ({letter}{letter}{other})"
    )


def _relabelled_aba_bab(letter: str, other: str) -> PreGadget:
    from .library import gadget_for_aba_bab
    from ..graphdb.database import Fact, GraphDatabase

    base = gadget_for_aba_bab()
    mapping = {"a": letter, "b": other}
    facts = [Fact(f.source, mapping[f.label], f.target) for f in base.database.facts]
    return PreGadget(
        GraphDatabase(facts), base.in_element, base.out_element, letter,
        name=f"Figure 9 ({letter}{other}{letter} & {other}{letter}{other})",
    )


# --------------------------------------------------------------------------- master entry point


def hardness_gadget(
    language: Language, *, cache: "LanguageCache | None" = None
) -> HardnessCertificate:
    """Return a machine-verified hardness certificate for a language, if the paper provides one.

    The search order follows the paper: known concrete gadgets (Propositions 4.1,
    4.13, 7.4, 7.11 and the claims of Section 6), then the four-legged
    construction of Theorem 5.3, then the repeated-letter case analysis of
    Theorem 6.1 for finite languages.

    Args:
        language: the language whose hardness to certify.
        cache: optional shared :class:`~repro.resilience.engine.LanguageCache`
            — the language resolves through its canonical layer first, so a
            gadget search for a language the session (or, store-backed, a
            previous process) already analysed reuses the memoized infix-free
            sublanguage instead of re-deriving it.

    Raises:
        GadgetNotAvailableError: when the language is not covered by any hardness
            result of the paper (it may still be NP-hard -- the classification is
            not complete).
    """
    from .library import NAMED_GADGETS

    if cache is not None:
        language = cache.language(language)

    # Re-label through a copy: infix_free() is memoized on the language
    # instance, so assigning its name in place would corrupt the shared cache.
    infix_free = language.infix_free().relabelled(language.name)

    if infix_free.is_finite():
        words = "|".join(sorted(infix_free.words()))
        factory = NAMED_GADGETS.get(words)
        if factory is not None:
            gadget = factory()
            verification = verify_gadget(infix_free, gadget)
            if verification.valid:
                return HardnessCertificate(
                    language, infix_free, False, gadget, verification, f"library gadget ({gadget.name})"
                )

    # Square letters: if xx is in IF(L), the Proposition 4.1 gadget relabelled to
    # x works verbatim (by infix-freeness no other x-only word is in IF(L)).
    for letter in sorted(infix_free.alphabet):
        if infix_free.contains(letter + letter):
            gadget = _relabelled_aa(letter)
            verification = verify_gadget(infix_free, gadget)
            if verification.valid:
                return HardnessCertificate(
                    language, infix_free, False, gadget, verification,
                    "Proposition 4.1 gadget on a square letter (cf. Proposition 5.7)",
                )

    witness = find_witness(infix_free) if infix_free.is_infix_free() else None
    if witness is not None:
        try:
            certificate = four_legged_hardness_gadget(infix_free, witness)
            return HardnessCertificate(
                language, infix_free, False, certificate.gadget, certificate.verification, certificate.provenance
            )
        except (GadgetError, GadgetNotAvailableError):
            pass

    if infix_free.is_finite() and infix_free.has_repeated_letter_word():
        certificate = repeated_letter_hardness_gadget(infix_free)
        return HardnessCertificate(
            language,
            certificate.gadget_language,
            certificate.mirrored,
            certificate.gadget,
            certificate.verification,
            certificate.provenance,
        )

    raise GadgetNotAvailableError(
        f"no hardness construction of the paper applies to {language}"
    )
