"""Copy-free fact indexes for graph databases.

The resilience engine's hot path (the exact branch-and-bound search) explores
thousands of sub-databases of one input database.  Materializing each
sub-database as a fresh :class:`~repro.graphdb.database.GraphDatabase` — and
re-deriving its node set and adjacency lists — dominates the running time.

A :class:`DatabaseIndex` is built once per database (and cached on it): it
assigns every fact a dense integer id, sorts facts and nodes deterministically
(by ``repr``), and precomputes adjacency lists keyed by node and by
``(node, label)``.  Search algorithms can then represent any sub-database as a
*removed-fact mask* (one byte per fact id) over the shared index instead of
copying facts around.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Hashable

Node = Hashable


# repro: allow[ipc-cache-pickle] -- never pickled directly: GraphDatabase's
# __getstate__ drops its index and workers rebuild it on first use
class DatabaseIndex:
    """An immutable index over the facts of one database.

    Attributes:
        facts: every fact, sorted by ``repr``; the position of a fact in this
            tuple is its *fact id*.
        fact_ids: the inverse mapping, fact -> fact id.
        nodes: the active domain, sorted by ``repr``.
        node_ids: the inverse mapping, node -> dense node id (its position in
            ``nodes``).  The flow compilers address nodes by these ids.
        outgoing_ids: node -> tuple of ids of the facts leaving it (in id order).
        incoming_ids: node -> tuple of ids of the facts entering it (in id order).
        facts_by_label: label -> tuple of ids of the facts carrying it.
        outgoing_by_label: ``(node, label)`` -> tuple of ids of the facts
            leaving ``node`` with label ``label``.
        multiplicities: per-fact-id multiplicity (``None`` for set databases).
        substrates: per-reduction-shape cache of compiled flow substrates (the
            database-only halves of the product networks; see
            :mod:`repro.flow.substrate`).  Built lazily, shared by every query
            answered against this index.
    """

    __slots__ = (
        "facts",
        "fact_ids",
        "nodes",
        "node_ids",
        "outgoing_ids",
        "incoming_ids",
        "facts_by_label",
        "outgoing_by_label",
        "multiplicities",
        "substrates",
    )

    def __init__(
        self,
        facts: Iterable,
        multiplicities: Mapping | None = None,
    ) -> None:
        self.facts = tuple(sorted(facts, key=repr))
        self.fact_ids = {fact: index for index, fact in enumerate(self.facts)}
        nodes: set[Node] = set()
        outgoing: dict[Node, list[int]] = {}
        incoming: dict[Node, list[int]] = {}
        by_label: dict[str, list[int]] = {}
        out_by_label: dict[tuple[Node, str], list[int]] = {}
        for index, fact in enumerate(self.facts):
            nodes.add(fact.source)
            nodes.add(fact.target)
            outgoing.setdefault(fact.source, []).append(index)
            incoming.setdefault(fact.target, []).append(index)
            by_label.setdefault(fact.label, []).append(index)
            out_by_label.setdefault((fact.source, fact.label), []).append(index)
        self.nodes = tuple(sorted(nodes, key=repr))
        self.node_ids = {node: index for index, node in enumerate(self.nodes)}
        self.substrates: dict = {}
        self.outgoing_ids = {node: tuple(ids) for node, ids in outgoing.items()}
        self.incoming_ids = {node: tuple(ids) for node, ids in incoming.items()}
        self.facts_by_label = {label: tuple(ids) for label, ids in by_label.items()}
        self.outgoing_by_label = {key: tuple(ids) for key, ids in out_by_label.items()}
        if multiplicities is None:
            self.multiplicities = None
        else:
            self.multiplicities = tuple(multiplicities[fact] for fact in self.facts)

    def __len__(self) -> int:
        return len(self.facts)

    def facts_of_ids(self, ids: Iterable[int]) -> list:
        """Return the facts with the given ids, in the given order."""
        return [self.facts[index] for index in ids]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bag" if self.multiplicities is not None else "set"
        return f"DatabaseIndex({len(self.facts)} facts, {len(self.nodes)} nodes, {kind})"
