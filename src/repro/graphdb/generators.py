"""Synthetic workload generators for graph databases.

The paper evaluates its algorithms on arbitrary graph databases; these
generators produce the instance families used by the test suite and the
benchmark harness:

* labelled random graphs (Erdős–Rényi style),
* word walks and word chains (databases made of concatenated walks),
* layered flow networks encoded as ``a x* b`` databases (the MinCut connection
  of the introduction),
* random undirected graphs (inputs to the vertex-cover reduction).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from .database import BagGraphDatabase, Fact, GraphDatabase


def random_labelled_graph(
    num_nodes: int,
    num_edges: int,
    alphabet: Sequence[str],
    seed: int = 0,
    *,
    allow_self_loops: bool = False,
) -> GraphDatabase:
    """Return a random graph database with ``num_edges`` distinct labelled edges."""
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(num_nodes)]
    facts: set[Fact] = set()
    attempts = 0
    max_attempts = 50 * max(num_edges, 1) + 100
    while len(facts) < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        if source == target and not allow_self_loops:
            continue
        label = rng.choice(list(alphabet))
        facts.add(Fact(source, label, target))
    return GraphDatabase(facts)


def random_bag_database(
    num_nodes: int,
    num_edges: int,
    alphabet: Sequence[str],
    seed: int = 0,
    max_multiplicity: int = 10,
) -> BagGraphDatabase:
    """Return a random bag database with multiplicities in ``1..max_multiplicity``."""
    rng = random.Random(seed)
    base = random_labelled_graph(num_nodes, num_edges, alphabet, seed)
    return BagGraphDatabase({fact: rng.randint(1, max_multiplicity) for fact in base.facts})


def word_walk(word: str, prefix: str = "w", start: object | None = None, end: object | None = None) -> GraphDatabase:
    """Return a database consisting of one walk labelled by ``word``.

    The intermediate nodes are named ``{prefix}0, {prefix}1, ...``; the first and
    last nodes can be overridden to glue walks together.
    """
    if not word:
        return GraphDatabase()
    nodes: list[object] = [f"{prefix}{index}" for index in range(len(word) + 1)]
    if start is not None:
        nodes[0] = start
    if end is not None:
        nodes[-1] = end
    facts = [Fact(nodes[index], letter, nodes[index + 1]) for index, letter in enumerate(word)]
    return GraphDatabase(facts)


def word_chain(words: Iterable[str], prefix: str = "c") -> GraphDatabase:
    """Return a database made of disjoint walks, one per word."""
    result = GraphDatabase()
    for index, word in enumerate(words):
        result = result.union(word_walk(word, prefix=f"{prefix}{index}_"))
    return result


def layered_flow_database(
    num_layers: int,
    layer_width: int,
    seed: int = 0,
    *,
    source_label: str = "a",
    edge_label: str = "x",
    sink_label: str = "b",
    edge_probability: float = 0.5,
    max_multiplicity: int = 5,
) -> BagGraphDatabase:
    """Return a layered flow network encoded as a database for the RPQ ``a x* b``.

    The database has a single source node with ``source_label`` edges into the
    first layer, ``edge_label`` edges between consecutive layers, and
    ``sink_label`` edges from the last layer to a sink node.  The resilience of
    ``a x* b`` on this database equals the minimum cut of the corresponding flow
    network (Section 1 of the paper).
    """
    rng = random.Random(seed)
    multiplicities: dict[Fact, int] = {}
    source = "SRC"
    sink = "SNK"
    layers = [[f"L{layer}_{slot}" for slot in range(layer_width)] for layer in range(num_layers)]
    for node in layers[0]:
        multiplicities[Fact(source, source_label, node)] = rng.randint(1, max_multiplicity)
    for layer_index in range(num_layers - 1):
        for left in layers[layer_index]:
            for right in layers[layer_index + 1]:
                if rng.random() < edge_probability:
                    multiplicities[Fact(left, edge_label, right)] = rng.randint(1, max_multiplicity)
    for node in layers[-1]:
        multiplicities[Fact(node, sink_label, sink)] = rng.randint(1, max_multiplicity)
    return BagGraphDatabase(multiplicities)


def random_word_database(
    language_words: Sequence[str],
    num_walks: int,
    num_shared_nodes: int,
    seed: int = 0,
    alphabet: Sequence[str] = (),
) -> GraphDatabase:
    """Return a database built from random walks of language words over a shared node pool.

    Walks reuse nodes from a common pool, so that they overlap and create
    interesting resilience instances (shared facts, crossing matches).
    """
    rng = random.Random(seed)
    pool = [f"p{i}" for i in range(max(num_shared_nodes, 2))]
    facts: set[Fact] = set()
    for _ in range(num_walks):
        word = rng.choice(list(language_words))
        if not word:
            continue
        nodes = [rng.choice(pool) for _ in range(len(word) + 1)]
        for index, letter in enumerate(word):
            facts.add(Fact(nodes[index], letter, nodes[index + 1]))
    extra_letters = list(alphabet)
    if extra_letters:
        for _ in range(num_walks // 2):
            facts.add(Fact(rng.choice(pool), rng.choice(extra_letters), rng.choice(pool)))
    return GraphDatabase(facts)


def random_undirected_graph(num_vertices: int, edge_probability: float, seed: int = 0) -> list[tuple[int, int]]:
    """Return a random undirected graph as a list of edges over ``0..num_vertices-1``."""
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    for left in range(num_vertices):
        for right in range(left + 1, num_vertices):
            if rng.random() < edge_probability:
                edges.append((left, right))
    return edges


def cycle_graph(num_vertices: int) -> list[tuple[int, int]]:
    """Return the undirected cycle on ``num_vertices`` vertices."""
    return [(index, (index + 1) % num_vertices) for index in range(num_vertices)]


def complete_graph(num_vertices: int) -> list[tuple[int, int]]:
    """Return the complete undirected graph on ``num_vertices`` vertices."""
    return [
        (left, right) for left in range(num_vertices) for right in range(left + 1, num_vertices)
    ]
