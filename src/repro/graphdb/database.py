"""Graph databases in set and bag semantics (Section 2 of the paper).

A graph database over an alphabet ``Sigma`` is a set of labelled edges (called
*facts*) ``v --a--> v'``.  A bag graph database additionally carries a positive
multiplicity for each fact; multiplicities act as removal costs in the
resilience problem.  The *extended* bag semantics used in the proof of
Proposition 7.9 also allows non-positive multiplicities.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from types import MappingProxyType
from typing import Hashable

from ..exceptions import ReproError
from .index import DatabaseIndex

Node = Hashable


@dataclass(frozen=True, order=True)
class Fact:
    """A labelled edge ``source --label--> target`` of a graph database."""

    source: Node
    label: str
    target: Node

    def __str__(self) -> str:
        return f"{self.source}-{self.label}->{self.target}"


def _as_fact(edge: Fact | tuple[Node, str, Node]) -> Fact:
    if isinstance(edge, Fact):
        return edge
    source, label, target = edge
    return Fact(source, label, target)


def _fingerprint_facts(tag: str, weighted_facts: Iterable[tuple[Fact, int]]) -> str:
    """SHA-256 digest of a semantics tag plus sorted ``(fact, weight)`` pairs."""
    digest = hashlib.sha256(tag.encode("utf-8"))
    for fact, weight in sorted(weighted_facts, key=lambda pair: repr(pair[0])):
        digest.update(
            repr((fact.source, fact.label, fact.target, weight)).encode("utf-8")
        )
    return digest.hexdigest()


class GraphDatabase:
    """A set-semantics graph database: a finite set of :class:`Fact` objects.

    Databases are immutable, so the derived node set, adjacency maps and the
    :class:`~repro.graphdb.index.DatabaseIndex` are computed lazily once and
    cached on the instance.
    """

    def __init__(self, facts: Iterable[Fact | tuple[Node, str, Node]] = ()) -> None:
        self._facts: frozenset[Fact] = frozenset(_as_fact(edge) for edge in facts)
        self._index: DatabaseIndex | None = None
        self._outgoing: dict[Node, tuple[Fact, ...]] | None = None
        self._incoming: dict[Node, tuple[Fact, ...]] | None = None
        self._content_fingerprint: str | None = None
        self._unit_bag: "BagGraphDatabase | None" = None

    # ------------------------------------------------------------------ constructors

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Node, str, Node]]) -> "GraphDatabase":
        """Build a database from ``(source, label, target)`` triples."""
        return cls(edges)

    # ------------------------------------------------------------------ basic accessors

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    @property
    def nodes(self) -> frozenset[Node]:
        """The active domain ``Adom(D)``: every node occurring in some fact."""
        return frozenset(self.index().nodes)

    def index(self) -> DatabaseIndex:
        """Return the cached :class:`DatabaseIndex` of the database."""
        if self._index is None:
            self._index = DatabaseIndex(self._facts)
        return self._index

    @property
    def alphabet(self) -> frozenset[str]:
        return frozenset(fact.label for fact in self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._facts, key=repr))

    def __contains__(self, edge: Fact | tuple[Node, str, Node]) -> bool:
        return _as_fact(edge) in self._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDatabase):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return hash(self._facts)

    def __repr__(self) -> str:
        return f"GraphDatabase({len(self._facts)} facts, {len(self.nodes)} nodes)"

    def content_fingerprint(self) -> str:
        """Return a content digest of the database, stable across processes.

        Two set databases share a fingerprint iff they hold the same facts
        (``repr``-identical nodes and labels); the digest is tagged with the
        semantics so a set database and its unit bag never collide.  Used by
        the serving layer to guard a warm worker pool against being asked to
        answer for a different database.
        """
        if self._content_fingerprint is None:
            self._content_fingerprint = _fingerprint_facts(
                "set", ((fact, 1) for fact in self._facts)
            )
        return self._content_fingerprint

    # ------------------------------------------------------------------ adjacency

    def outgoing(self) -> Mapping[Node, tuple[Fact, ...]]:
        """Return a (cached, read-only) mapping from node to the facts leaving it."""
        if self._outgoing is None:
            index = self.index()
            self._outgoing = {
                node: tuple(index.facts[i] for i in ids)
                for node, ids in index.outgoing_ids.items()
            }
        return self._outgoing

    def incoming(self) -> Mapping[Node, tuple[Fact, ...]]:
        """Return a (cached, read-only) mapping from node to the facts entering it."""
        if self._incoming is None:
            index = self.index()
            self._incoming = {
                node: tuple(index.facts[i] for i in ids)
                for node, ids in index.incoming_ids.items()
            }
        return self._incoming

    def facts_with_label(self, label: str) -> frozenset[Fact]:
        return frozenset(fact for fact in self._facts if fact.label == label)

    def is_acyclic(self) -> bool:
        """Return whether the database, viewed as a directed graph, has no cycle."""
        adjacency = self.outgoing()
        colours: dict[Node, int] = {}

        def visit(start: Node) -> bool:
            stack: list[tuple[Node, Iterator[Fact]]] = [(start, iter(adjacency.get(start, ())))]
            colours[start] = 1
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for fact in iterator:
                    status = colours.get(fact.target, 0)
                    if status == 1:
                        return False
                    if status == 0:
                        colours[fact.target] = 1
                        stack.append((fact.target, iter(adjacency.get(fact.target, ()))))
                        advanced = True
                        break
                if not advanced:
                    colours[node] = 2
                    stack.pop()
            return True

        for node in self.nodes:
            if colours.get(node, 0) == 0 and not visit(node):
                return False
        return True

    # ------------------------------------------------------------------ pickling

    def __getstate__(self) -> dict:
        # The index and adjacency maps are derived caches: shipping them (e.g.
        # to the serving layer's worker processes) more than doubles the pickle
        # for nothing, because the receiver rebuilds them lazily anyway.
        state = self.__dict__.copy()
        state["_index"] = None
        state["_outgoing"] = None
        state["_incoming"] = None
        state["_content_fingerprint"] = None
        state["_unit_bag"] = None
        return state

    # ------------------------------------------------------------------ modifications (functional)

    def remove(self, facts: Iterable[Fact | tuple[Node, str, Node]]) -> "GraphDatabase":
        """Return a new database with the given facts removed."""
        removed = {_as_fact(edge) for edge in facts}
        return GraphDatabase(self._facts - removed)

    def add(self, facts: Iterable[Fact | tuple[Node, str, Node]]) -> "GraphDatabase":
        """Return a new database with the given facts added."""
        added = {_as_fact(edge) for edge in facts}
        return GraphDatabase(self._facts | added)

    def union(self, other: "GraphDatabase") -> "GraphDatabase":
        return GraphDatabase(self._facts | other._facts)

    def rename_nodes(self, mapping: Mapping[Node, Node]) -> "GraphDatabase":
        """Return an isomorphic copy with nodes renamed through ``mapping``.

        Nodes absent from ``mapping`` keep their name.
        """
        return GraphDatabase(
            Fact(mapping.get(fact.source, fact.source), fact.label, mapping.get(fact.target, fact.target))
            for fact in self._facts
        )

    def reverse(self) -> "GraphDatabase":
        """Return the database with every edge reversed (used for mirror languages)."""
        return GraphDatabase(Fact(fact.target, fact.label, fact.source) for fact in self._facts)

    def to_bag(self, multiplicity: int = 1) -> "BagGraphDatabase":
        """Return a bag database giving every fact the same multiplicity."""
        return BagGraphDatabase({fact: multiplicity for fact in self._facts})

    def unit_bag(self) -> "BagGraphDatabase":
        """Return the (cached) unit-multiplicity bag view of the database.

        The flow reductions run on bag views; caching the view means every
        query on a set database hits one shared bag index — and therefore one
        shared flow substrate — instead of rebuilding both per query.
        """
        if self._unit_bag is None:
            self._unit_bag = self.to_bag(1)
        return self._unit_bag


class BagGraphDatabase:
    """A bag-semantics graph database: facts with positive integer multiplicities.

    The optional ``allow_non_positive`` flag enables the *extended bag semantics*
    of Proposition 7.9, where multiplicities may be zero or negative.
    """

    def __init__(
        self,
        multiplicities: Mapping[Fact | tuple[Node, str, Node], int],
        *,
        allow_non_positive: bool = False,
    ) -> None:
        cleaned: dict[Fact, int] = {}
        for edge, multiplicity in multiplicities.items():
            fact = _as_fact(edge)
            if not isinstance(multiplicity, int):
                raise ReproError(f"multiplicity of {fact} must be an integer")
            if multiplicity <= 0 and not allow_non_positive:
                raise ReproError(f"multiplicity of {fact} must be positive (got {multiplicity})")
            cleaned[fact] = multiplicity
        self._multiplicities = cleaned
        self.allow_non_positive = allow_non_positive
        self._database: GraphDatabase | None = None
        self._index: DatabaseIndex | None = None
        self._content_fingerprint: str | None = None

    # ------------------------------------------------------------------ constructors

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[Node, str, Node, int]], *, allow_non_positive: bool = False
    ) -> "BagGraphDatabase":
        """Build a bag database from ``(source, label, target, multiplicity)`` tuples."""
        return cls(
            {Fact(source, label, target): multiplicity for source, label, target, multiplicity in edges},
            allow_non_positive=allow_non_positive,
        )

    @classmethod
    def uniform(cls, database: GraphDatabase, multiplicity: int = 1) -> "BagGraphDatabase":
        return database.to_bag(multiplicity)

    # ------------------------------------------------------------------ accessors

    @property
    def database(self) -> GraphDatabase:
        """The (cached) underlying set database (facts only, multiplicities dropped)."""
        if self._database is None:
            self._database = GraphDatabase(self._multiplicities)
        return self._database

    def index(self) -> DatabaseIndex:
        """Return the cached :class:`DatabaseIndex` of the bag (with multiplicities)."""
        if self._index is None:
            self._index = DatabaseIndex(self._multiplicities, self._multiplicities)
        return self._index

    @property
    def facts(self) -> frozenset[Fact]:
        return frozenset(self._multiplicities)

    @property
    def nodes(self) -> frozenset[Node]:
        return self.database.nodes

    @property
    def alphabet(self) -> frozenset[str]:
        return frozenset(fact.label for fact in self._multiplicities)

    def multiplicity(self, fact: Fact | tuple[Node, str, Node]) -> int:
        return self._multiplicities[_as_fact(fact)]

    def multiplicities(self) -> dict[Fact, int]:
        return dict(self._multiplicities)

    def multiplicity_map(self) -> Mapping[Fact, int]:
        """Return a read-only, copy-free view of the multiplicity mapping."""
        return MappingProxyType(self._multiplicities)

    def total_cost(self, facts: Iterable[Fact | tuple[Node, str, Node]]) -> int:
        """Return the sum of multiplicities of the given facts."""
        return sum(self._multiplicities[_as_fact(edge)] for edge in facts)

    def __len__(self) -> int:
        return len(self._multiplicities)

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._multiplicities, key=repr))

    def __contains__(self, edge: Fact | tuple[Node, str, Node]) -> bool:
        return _as_fact(edge) in self._multiplicities

    def __repr__(self) -> str:
        return f"BagGraphDatabase({len(self._multiplicities)} facts)"

    def content_fingerprint(self) -> str:
        """Return a content digest of the bag (facts and multiplicities).

        See :meth:`GraphDatabase.content_fingerprint`; bag fingerprints are
        tagged with the semantics (and the extended-semantics flag), so no
        set/bag pair ever collides.
        """
        if self._content_fingerprint is None:
            tag = "bag-extended" if self.allow_non_positive else "bag"
            self._content_fingerprint = _fingerprint_facts(tag, self._multiplicities.items())
        return self._content_fingerprint

    # ------------------------------------------------------------------ pickling

    def __getstate__(self) -> dict:
        # Same as GraphDatabase: derived caches are rebuilt lazily, don't ship.
        state = self.__dict__.copy()
        state["_database"] = None
        state["_index"] = None
        state["_content_fingerprint"] = None
        return state

    # ------------------------------------------------------------------ modifications

    def remove(self, facts: Iterable[Fact | tuple[Node, str, Node]]) -> "BagGraphDatabase":
        removed = {_as_fact(edge) for edge in facts}
        return BagGraphDatabase(
            {fact: mult for fact, mult in self._multiplicities.items() if fact not in removed},
            allow_non_positive=self.allow_non_positive,
        )

    def reverse(self) -> "BagGraphDatabase":
        return BagGraphDatabase(
            {Fact(fact.target, fact.label, fact.source): mult for fact, mult in self._multiplicities.items()},
            allow_non_positive=self.allow_non_positive,
        )


def as_bag(database: GraphDatabase | BagGraphDatabase) -> BagGraphDatabase:
    """Return a bag view of a database (unit multiplicities for set databases).

    The view is cached on set databases (see :meth:`GraphDatabase.unit_bag`),
    so repeated calls share one bag index and one flow substrate.
    """
    if isinstance(database, BagGraphDatabase):
        return database
    return database.unit_bag()


def as_set(database: GraphDatabase | BagGraphDatabase) -> GraphDatabase:
    """Return the set-semantics view of a database (drop multiplicities)."""
    if isinstance(database, BagGraphDatabase):
        return database.database
    return database
