"""Graph-database substrate: set and bag graph databases plus workload generators."""

from .database import BagGraphDatabase, Fact, GraphDatabase, as_bag, as_set

__all__ = ["BagGraphDatabase", "Fact", "GraphDatabase", "as_bag", "as_set"]
