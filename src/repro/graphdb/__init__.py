"""Graph-database substrate: set and bag graph databases, cached fact indexes,
and workload generators."""

from .database import BagGraphDatabase, Fact, GraphDatabase, as_bag, as_set
from .index import DatabaseIndex

__all__ = ["BagGraphDatabase", "DatabaseIndex", "Fact", "GraphDatabase", "as_bag", "as_set"]
