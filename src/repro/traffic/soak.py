"""Chaos soak harness: drive the full serving stack under generated traffic.

:class:`SoakRunner` replays a :class:`~repro.traffic.generator.TrafficTrace`
through an :class:`~repro.service.async_server.AsyncResilienceServer` over a
chosen exchange in *rounds* of ``requests_per_round`` submissions, while a
:class:`~repro.traffic.chaos.ChaosSchedule` injects faults mid-stream.  The
runner builds its exchange itself — in-process (``transport="thread"``, the
default) or over real sockets (``transport="http"``) — or serves over a
ready-made one; network chaos kinds (refused / disconnect / stall / corrupt)
arm the owning node's fault hook at round start, so the soak exercises the
HTTP fabric's retry, failover and degraded-fallback paths under the same
invariants.  After every round an invariant monitor asserts the contracts
the serving stack claims, raising :class:`InvariantViolation` on the first
breach:

* **exactly one outcome per admitted query** — per request, the delivered
  indices are exactly ``0..n-1``, kills and crashes included;
* **no cross-workload leakage** — every outcome labels the spec at its own
  index of its own workload;
* **structured failure only** — every status is one of the four declared
  outcome statuses, every non-``ok`` outcome carries an error string, and no
  exception ever escapes ``submit`` or stream iteration;
* **outcome parity** (``verify_parity``) — every deadline-free,
  non-rejected traffic request reproduces the uncached serial reference
  (``parallel=False``, fresh string-keyed cache) outcome-for-outcome after
  re-sorting, node kills included: failover must not change answers;
* **poison stays contained** — a poison workload comes back all-``error``
  while the same round's traffic keeps full parity;
* **drained means drained** — ``in_flight`` returns to zero after every
  round (the decrement-on-last-outcome contract);
* **recovery** — after a kill, the fleet is healed (``auto_heal`` replaces
  corpses through the manager) and serving is back to full parity within
  ``recovery_rounds`` rounds;
* **no leaked resources** — an optional ``leak_tracker`` (duck-typed to
  ``tests/leak_sanitizer.LeakTracker``: ``start()`` / ``stop()`` /
  ``leaks()``) brackets the whole soak; surviving threads, child processes,
  sockets or temp dirs are violations.

Every outcome (and every chaos event) can be appended to a JSONL log for
post-mortem; together with the trace seed that makes any failed soak
replayable bit-for-bit.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ReproError
from ..service import (
    ADMISSION_REJECTED,
    BUDGET_EXCEEDED,
    ERROR,
    OK,
    AsyncResilienceServer,
    Exchange,
    HttpExchange,
    LanguageCache,
    QueryOutcome,
    ThreadExchange,
    Workload,
    resilience_serve,
)
from .chaos import (
    BURST,
    KILL,
    NETWORK_KINDS,
    POISON,
    REFUSED,
    SLOW,
    ChaosEvent,
    ChaosSchedule,
)
from .generator import TrafficRequest, TrafficTrace

#: Exchange transports the runner can build itself.
TRANSPORTS = ("thread", "http")

KNOWN_STATUSES = frozenset({OK, BUDGET_EXCEEDED, ERROR, ADMISSION_REJECTED})

#: What each injected-workload kind must come back as.
_EXPECTED_CHAOS_STATUSES = {
    POISON: frozenset({ERROR}),
    SLOW: frozenset({OK, BUDGET_EXCEEDED}),
    BURST: frozenset({OK, ADMISSION_REJECTED}),
}


class InvariantViolation(ReproError):
    """A soak invariant failed; the message carries round and detail."""


@dataclass(frozen=True)
class SoakReport:
    """The structured result of one completed soak run.

    ``latency`` maps outcome status to conservative histogram quantiles
    (milliseconds) from the front-end's metrics surface; ``by_status`` counts
    the outcomes actually collected, chaos traffic included.  ``violations``
    is always empty on a report — the runner raises on the first breach —
    but stays a field so artefact consumers can assert on it explicitly.
    """

    seed: int | None
    requests: int
    rounds: int
    outcomes: int
    by_status: dict[str, int]
    latency: dict[str, dict]
    admission: dict[str, int]
    chaos: dict[str, int]
    recovery: dict[str, object]
    throughput_rps: float
    wall_seconds: float
    parity_checked: int
    violations: tuple[str, ...] = ()
    leaks: tuple[str, ...] = ()
    #: Final fleet-wide cache counters (``CacheStats.as_dict()``): hit/miss/
    #: eviction counters plus the ``entries`` / ``bytes_estimate`` footprint
    #: gauges — the observable that bounded soaks assert stays flat.
    cache: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "rounds": self.rounds,
            "outcomes": self.outcomes,
            "by_status": dict(sorted(self.by_status.items())),
            "latency": self.latency,
            "admission": self.admission,
            "chaos": self.chaos,
            "recovery": self.recovery,
            "throughput_rps": self.throughput_rps,
            "wall_seconds": self.wall_seconds,
            "parity_checked": self.parity_checked,
            "violations": list(self.violations),
            "leaks": list(self.leaks),
            "cache": dict(sorted(self.cache.items())),
        }


@dataclass
class _Submission:
    """One in-flight submission of a round (traffic or injected chaos)."""

    kind: str  # "traffic" or a chaos kind
    workload: Workload
    database_key: str
    request: TrafficRequest | None = None
    outcomes: list[QueryOutcome] = field(default_factory=list)


class SoakRunner:
    """Drive one trace (plus chaos) through the serving stack and monitor it.

    Args:
        trace: the (seeded) traffic to replay.
        nodes / max_workers / parallel / cache: fleet configuration when the
            runner builds its own exchange; ``exchange`` supplies a
            ready-made exchange instead (the runner's front-end owns and
            closes it either way).
        transport: which exchange the runner builds when ``exchange`` is
            ``None`` — ``"thread"`` (default,
            :class:`~repro.service.ThreadExchange`) or ``"http"``
            (:class:`~repro.service.HttpExchange`: the same soak over real
            sockets; node processes ship their own caches, so a shared
            ``cache`` is rejected).
        chaos: the fault schedule; events must fit within the trace's rounds.
        requests_per_round: trace requests submitted per soak round.
        max_queue_depth / round_share: front-end admission configuration.
        verify_parity: compare every deadline-free, non-rejected traffic
            request against the uncached serial reference (memoized per
            workload/database pair).
        recovery_rounds: bound on rounds from a kill to a healed, full-parity
            fleet.
        auto_heal: replace dead nodes through the manager at round end
            (requires a launcher-backed exchange, as ``ThreadExchange`` is).
        pace: optional open-loop pacing factor — sleep ``pace *`` the trace's
            inter-arrival gap before each submission (0: submit immediately).
        log_path: append JSONL records (chaos events, outcomes, round
            summaries) here.
        leak_tracker: optional duck-typed leak tracker bracketing the soak.
        keep_outcomes: retain per-request outcome lists on
            :attr:`collected` (ordered by trace ``seq``) for replay
            comparisons.
    """

    def __init__(
        self,
        trace: TrafficTrace,
        *,
        nodes: int = 2,
        max_workers: int | None = 2,
        parallel: bool = True,
        cache: LanguageCache | None = None,
        transport: str = "thread",
        exchange: Exchange | None = None,
        chaos: ChaosSchedule | None = None,
        requests_per_round: int = 4,
        max_queue_depth: int = 64,
        round_share: int | None = None,
        verify_parity: bool = True,
        recovery_rounds: int = 2,
        auto_heal: bool = True,
        pace: float = 0.0,
        log_path: str | Path | None = None,
        leak_tracker=None,
        keep_outcomes: bool = False,
    ) -> None:
        if requests_per_round < 1:
            raise ValueError(
                f"requests_per_round must be >= 1 (got {requests_per_round})"
            )
        if recovery_rounds < 1:
            raise ValueError(f"recovery_rounds must be >= 1 (got {recovery_rounds})")
        if not trace.requests:
            raise ValueError("cannot soak an empty trace")
        if transport not in TRANSPORTS:
            raise ReproError(
                f"unknown soak transport {transport!r}; expected one of "
                f"{list(TRANSPORTS)}"
            )
        if transport == "http" and cache is not None:
            raise ReproError(
                "http transport serves from node processes with their own "
                "caches; a shared front-end cache cannot apply"
            )
        self._trace = trace
        self._transport = transport
        self._nodes = nodes
        self._max_workers = max_workers
        self._parallel = parallel
        self._cache = cache
        self._exchange = exchange
        self._chaos = chaos or ChaosSchedule()
        self._requests_per_round = requests_per_round
        self._max_queue_depth = max_queue_depth
        self._round_share = round_share
        self._verify_parity = verify_parity
        self._recovery_rounds = recovery_rounds
        self._auto_heal = auto_heal
        self._pace = pace
        self._log_path = None if log_path is None else Path(log_path)
        self._leak_tracker = leak_tracker
        self._keep_outcomes = keep_outcomes

        self._default_database_key = next(iter(trace.databases))
        self._chaos_priority = (
            max((request.priority for request in trace.requests), default=0) + 1
        )
        self._references: list[tuple[str, Workload, list[QueryOutcome]]] = []
        self._log_handle = None
        self._server_exchange: Exchange | None = None

        #: Per-trace-request outcome lists (``keep_outcomes`` only).
        self.collected: list[list[QueryOutcome]] = []

    # ------------------------------------------------------------------- run

    def run(self) -> SoakReport:
        """Replay the trace round by round; raise on the first violation."""
        rounds = [
            self._trace.requests[start : start + self._requests_per_round]
            for start in range(0, len(self._trace.requests), self._requests_per_round)
        ]
        if self._chaos.last_round() >= len(rounds):
            raise ReproError(
                f"chaos schedule reaches round {self._chaos.last_round()} but the "
                f"trace only has {len(rounds)} rounds of {self._requests_per_round}"
            )
        if self._leak_tracker is not None:
            self._leak_tracker.start()
        if self._log_path is not None:
            self._log_handle = self._log_path.open("a", encoding="utf-8")
        try:
            return self._run_rounds(rounds)
        finally:
            if self._log_handle is not None:
                self._log_handle.close()
                self._log_handle = None

    def _run_rounds(self, rounds) -> SoakReport:
        exchange = self._exchange
        if exchange is None and self._transport == "http":
            exchange = HttpExchange(
                nodes=self._nodes,
                max_workers=self._max_workers,
                parallel=self._parallel,
            )
        elif exchange is None:
            exchange = ThreadExchange(
                nodes=self._nodes,
                max_workers=self._max_workers,
                parallel=self._parallel,
                cache=self._cache,
            )
        self._server_exchange = exchange
        server = AsyncResilienceServer(
            exchange,
            max_queue_depth=self._max_queue_depth,
            round_share=self._round_share,
        )
        state = _SoakState()
        started = time.perf_counter()
        try:
            asyncio.run(self._soak(server, rounds, state))
            state.final_metrics = server.metrics()
        finally:
            server.close()
        wall = time.perf_counter() - started

        leaks: tuple[str, ...] = ()
        if self._leak_tracker is not None:
            self._leak_tracker.stop()
            leaks = tuple(self._leak_tracker.leaks())
            if leaks:
                raise InvariantViolation(
                    "soak leaked resources:\n  " + "\n  ".join(leaks)
                )
        return self._build_report(rounds, state, wall, leaks)

    # ------------------------------------------------------------ round loop

    async def _soak(self, server, rounds, state: "_SoakState") -> None:
        for round_index, batch in enumerate(rounds):
            state.round_cursor = round_index
            events = self._chaos.for_round(round_index)
            for event in events:
                self._log({"type": "chaos", **event.as_dict()})
            # Network faults arm before any submission: the round's first
            # connection attempts / serve streams are the ones that misbehave.
            for event in events:
                if event.kind in NETWORK_KINDS:
                    self._fire_network(event, state)
            round_started = time.perf_counter()
            submissions = await self._submit_round(server, batch, events, state)
            await self._collect_round(submissions, events, state)
            wall_ms = (time.perf_counter() - round_started) * 1e3
            self._check_round(round_index, submissions, server, state)
            self._heal(round_index, server, state)
            delivered = sum(len(sub.outcomes) for sub in submissions)
            state.outcome_total += delivered
            self._log(
                {
                    "type": "round",
                    "round": round_index,
                    "requests": len(submissions),
                    "outcomes": delivered,
                    "wall_ms": round(wall_ms, 3),
                }
            )

    async def _submit_round(self, server, batch, events, state) -> list[_Submission]:
        submissions: list[_Submission] = []
        # Burst traffic goes first: its whole point is contending with the
        # round's real submissions for admission-queue depth.
        for event in events:
            if event.kind != BURST:
                continue
            state.burst_workloads += event.count
            key = event.database_key or self._default_database_key
            for _ in range(event.count):
                workload = Workload.coerce(["a"])
                stream = await server.submit(
                    workload,
                    priority=self._chaos_priority,
                    database=self._trace.databases[key],
                )
                submissions.append(
                    _Submission(BURST, workload, key, outcomes=[])
                )
                state.streams.append((submissions[-1], stream))
        previous_offset = None
        for request in batch:
            if self._pace and previous_offset is not None:
                await asyncio.sleep(
                    max(0.0, (request.offset - previous_offset) * self._pace)
                )
            previous_offset = request.offset
            stream = await server.submit(
                request.workload,
                priority=request.priority,
                deadline=request.deadline,
                database=self._trace.databases[request.database_key],
                weight=request.weight,
            )
            submissions.append(
                _Submission(
                    "traffic", request.workload, request.database_key, request=request
                )
            )
            state.streams.append((submissions[-1], stream))
        for event in events:
            if event.kind not in (POISON, SLOW):
                continue
            if event.kind == POISON:
                state.poison_workloads += 1
            else:
                state.slow_workloads += 1
            key = event.database_key or self._default_database_key
            stream = await server.submit(
                event.workload,
                priority=self._chaos_priority,
                database=self._trace.databases[key],
            )
            submissions.append(_Submission(event.kind, event.workload, key))
            state.streams.append((submissions[-1], stream))
        return submissions

    async def _collect_round(self, submissions, events, state) -> None:
        kills = [event for event in events if event.kind == KILL]
        counter = {"outcomes": 0}
        fired: set[ChaosEvent] = set()

        def on_outcome() -> None:
            counter["outcomes"] += 1
            for event in kills:
                if event in fired or counter["outcomes"] < event.after_outcomes:
                    continue
                fired.add(event)
                self._fire_kill(event, state)

        async def drain(submission: _Submission, stream) -> None:
            async for outcome in stream:
                submission.outcomes.append(outcome)
                on_outcome()

        streams, state.streams = state.streams, []
        await asyncio.gather(
            *(drain(submission, stream) for submission, stream in streams)
        )
        unfired = [event for event in kills if event not in fired]
        if unfired:
            raise InvariantViolation(
                f"kill event(s) never fired (round delivered {counter['outcomes']} "
                f"outcomes, first kill waits for {unfired[0].after_outcomes}); "
                "lower after_outcomes or enlarge the round"
            )

    def _fire_kill(self, event: ChaosEvent, state: "_SoakState") -> None:
        exchange = self._live_exchange
        if not hasattr(exchange, "route_for") or not hasattr(exchange, "manager"):
            raise ReproError(
                "kill events need a routed exchange with a node manager "
                f"(got {type(exchange).__name__})"
            )
        key = event.database_key or self._default_database_key
        owner = exchange.route_for(self._trace.databases[key])
        exchange.manager.kill(owner)
        state.kills.append(owner)
        state.pending_kills.append(state.round_cursor)
        self._log({"type": "kill-fired", "node": owner, "database_key": key})

    def _fire_network(self, event: ChaosEvent, state: "_SoakState") -> None:
        exchange = self._live_exchange
        if not hasattr(exchange, "route_for") or not hasattr(exchange, "manager"):
            raise ReproError(
                "network chaos needs a routed exchange with a node manager "
                f"(got {type(exchange).__name__})"
            )
        key = event.database_key or self._default_database_key
        owner = exchange.route_for(self._trace.databases[key])
        node = exchange.manager.node(owner)
        inject = getattr(node, "inject_fault", None)
        if inject is None:
            raise ReproError(
                f"{event.kind!r} chaos needs a fault-capable node handle "
                f"(got {type(node).__name__}); build the exchange over "
                "ChaosHttpNodeLauncher from tests/faults.py"
            )
        if event.kind == REFUSED:
            inject(event.kind, count=event.count)
        else:
            inject(event.kind, after_outcomes=event.after_outcomes)
        state.network_faults += 1
        self._log(
            {
                "type": "network-fault",
                "kind": event.kind,
                "node": owner,
                "database_key": key,
            }
        )

    # -------------------------------------------------------------- checking

    def _check_round(self, round_index, submissions, server, state) -> None:
        def violation(detail: str) -> InvariantViolation:
            return InvariantViolation(f"round {round_index}: {detail}")

        for submission in submissions:
            specs = submission.workload.specs
            outcomes = submission.outcomes
            label = (
                f"request #{submission.request.seq}"
                if submission.request is not None
                else f"{submission.kind} workload"
            )
            indices = sorted(outcome.index for outcome in outcomes)
            if indices != list(range(len(specs))):
                raise violation(
                    f"{label}: expected exactly one outcome per query "
                    f"(0..{len(specs) - 1}), got indices {indices}"
                )
            for outcome in outcomes:
                if outcome.query != specs[outcome.index].display_name():
                    raise violation(
                        f"{label}: outcome #{outcome.index} labels "
                        f"{outcome.query!r}, spec is "
                        f"{specs[outcome.index].display_name()!r} — cross-workload leak"
                    )
                if outcome.status not in KNOWN_STATUSES:
                    raise violation(
                        f"{label}: unstructured status {outcome.status!r}"
                    )
                if outcome.status != OK and not outcome.error:
                    raise violation(
                        f"{label}: non-ok outcome #{outcome.index} carries no error"
                    )
                state.by_status[outcome.status] = (
                    state.by_status.get(outcome.status, 0) + 1
                )
                self._log_outcome(round_index, submission, outcome)
            expected = _EXPECTED_CHAOS_STATUSES.get(submission.kind)
            if expected is not None:
                stray = {o.status for o in outcomes} - expected
                if stray:
                    raise violation(
                        f"{label}: statuses {sorted(stray)} outside the expected "
                        f"{sorted(expected)} for injected {submission.kind} traffic"
                    )
                if submission.kind == BURST:
                    state.burst_rejected += sum(
                        1 for o in outcomes if o.status == ADMISSION_REJECTED
                    )
            if submission.kind == "traffic":
                self._check_parity(submission, violation, state)
            if self._keep_outcomes and submission.request is not None:
                state.kept[submission.request.seq] = list(outcomes)

        in_flight = server.metrics().admission.in_flight
        if in_flight != 0:
            raise violation(
                f"in_flight is {in_flight} after the round drained (must be 0)"
            )

    def _check_parity(self, submission, violation, state) -> None:
        request = submission.request
        rejected = [
            o for o in submission.outcomes if o.status == ADMISSION_REJECTED
        ]
        if rejected:
            state.rejected_requests += 1
        if not self._verify_parity or request.deadline is not None or rejected:
            # Deadlines and depth-bound rejections are timing-dependent by
            # design; the structural invariants above still hold for them.
            return
        reference = self._reference(submission.database_key, submission.workload)
        ours = sorted(submission.outcomes, key=lambda outcome: outcome.index)
        if ours != reference:
            diverged = next(
                (theirs.index for mine, theirs in zip(ours, reference) if mine != theirs),
                "length",
            )
            raise violation(
                f"request #{request.seq} diverged from the serial reference "
                f"at index {diverged}"
            )
        state.parity_checked += 1

    def _reference(self, database_key: str, workload: Workload):
        for key, cached_workload, outcomes in self._references:
            if key == database_key and cached_workload == workload:
                return outcomes
        outcomes = resilience_serve(
            workload,
            self._trace.databases[database_key],
            parallel=False,
            cache=LanguageCache(canonical=False),
        )
        self._references.append((database_key, workload, outcomes))
        return outcomes

    # -------------------------------------------------------------- recovery

    def _heal(self, round_index, server, state) -> None:
        exchange = self._live_exchange
        heartbeat = getattr(exchange, "heartbeat", None)
        if heartbeat is None:
            return
        dead = [node_id for node_id, alive in heartbeat().items() if not alive]
        if dead and self._auto_heal:
            for node_id in dead:
                exchange.manager.replace(node_id)
                state.heals += 1
                self._log({"type": "heal", "round": round_index, "node": node_id})
            dead = [
                node_id for node_id, alive in heartbeat().items() if not alive
            ]
        if not dead and state.pending_kills:
            # This round ended with every invariant held and a fully live
            # fleet: every outstanding kill is recovered as of now.
            for kill_round in state.pending_kills:
                state.recoveries.append(round_index - kill_round + 1)
            state.pending_kills.clear()
        overdue = [
            kill_round
            for kill_round in state.pending_kills
            if round_index - kill_round + 1 > self._recovery_rounds
        ]
        if overdue:
            raise InvariantViolation(
                f"round {round_index}: fleet not recovered within "
                f"{self._recovery_rounds} rounds of the kill in round {overdue[0]} "
                f"(dead nodes: {dead})"
            )

    @property
    def _live_exchange(self):
        return self._server_exchange

    # --------------------------------------------------------------- logging

    def _log(self, record: dict) -> None:
        if self._log_handle is not None:
            self._log_handle.write(json.dumps(record, sort_keys=True) + "\n")

    def _log_outcome(self, round_index, submission, outcome) -> None:
        if self._log_handle is None:
            return
        self._log(
            {
                "type": "outcome",
                "round": round_index,
                "kind": submission.kind,
                "request": None
                if submission.request is None
                else submission.request.seq,
                "index": outcome.index,
                "query": outcome.query,
                "status": outcome.status,
                "method": outcome.method,
                "error": outcome.error,
                "database_key": submission.database_key,
            }
        )

    # ---------------------------------------------------------------- report

    def _build_report(self, rounds, state: "_SoakState", wall, leaks) -> SoakReport:
        metrics = state.final_metrics
        latency = {}
        if metrics is not None:
            latency = metrics.latency_quantiles((0.5, 0.99), scale=1e3)
        admission = {"admitted": 0, "rejected": 0, "deadline_expired": 0}
        if metrics is not None:
            admission = {
                "admitted": sum(metrics.admission.admitted.values()),
                "rejected": sum(metrics.admission.rejected.values()),
                "deadline_expired": metrics.admission.deadline_expired,
                "final_in_flight": metrics.admission.in_flight,
            }
        admission["burst_rejected_outcomes"] = state.burst_rejected
        admission["rejected_traffic_requests"] = state.rejected_requests
        if self._keep_outcomes:
            self.collected = [
                state.kept[request.seq]
                for request in self._trace.requests
                if request.seq in state.kept
            ]
        profile = self._trace.profile
        return SoakReport(
            seed=None if profile is None else profile.seed,
            requests=len(self._trace.requests),
            rounds=len(rounds),
            outcomes=state.outcome_total,
            by_status=dict(sorted(state.by_status.items())),
            latency=latency,
            admission=admission,
            chaos={
                "kills": len(state.kills),
                "heals": state.heals,
                "poison_workloads": state.poison_workloads,
                "slow_workloads": state.slow_workloads,
                "burst_workloads": state.burst_workloads,
                "network_faults": state.network_faults,
                "degraded_serves": getattr(metrics, "degraded_serves", 0),
            },
            recovery={
                "per_kill_rounds": list(state.recoveries),
                "max_rounds": max(state.recoveries, default=0),
                "bound": self._recovery_rounds,
            },
            throughput_rps=round(state.outcome_total / wall, 3) if wall > 0 else 0.0,
            wall_seconds=round(wall, 6),
            parity_checked=state.parity_checked,
            violations=(),
            leaks=leaks,
            cache={} if metrics is None else metrics.cache.as_dict(),
        )


@dataclass
class _SoakState:
    """Mutable bookkeeping for one run (kept off the runner for re-runs)."""

    streams: list = field(default_factory=list)
    by_status: dict = field(default_factory=dict)
    kept: dict = field(default_factory=dict)
    kills: list = field(default_factory=list)
    pending_kills: list = field(default_factory=list)
    recoveries: list = field(default_factory=list)
    heals: int = 0
    poison_workloads: int = 0
    slow_workloads: int = 0
    burst_workloads: int = 0
    network_faults: int = 0
    burst_rejected: int = 0
    rejected_requests: int = 0
    parity_checked: int = 0
    outcome_total: int = 0
    round_cursor: int = 0
    final_metrics: object = None
