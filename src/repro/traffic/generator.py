"""Seeded production-traffic generator: zipf query mix, bursty arrivals.

A :class:`TrafficProfile` is a frozen bundle of knobs; :func:`generate_traffic`
expands it — through one ``random.Random(seed)`` stream and nothing else —
into a :class:`TrafficTrace`: the generated databases plus an ordered tuple of
:class:`TrafficRequest` items, each carrying an open-loop arrival offset, an
admission priority, a share weight, an optional deadline, and a
:class:`~repro.service.workload.Workload` of query specs sampled zipf-style
from the Figure 1 catalogue.  The same profile always yields the same trace
(request-for-request and database-for-database), which is what makes any soak
run replayable from its seed.

Shape of the traffic:

* **query popularity** is zipf: catalogue ranks are a seeded permutation and
  a query of rank ``r`` is drawn with weight ``1 / (r + 1) ** zipf_s`` — a
  few queries dominate, the tail stays warm, exactly the skew a popularity
  cache hierarchy is built for;
* **arrivals** are bursty and open-loop: requests come in seeded bursts of
  ``burst_size`` requests spaced ``~Exp(burst_rate)`` apart, with
  ``~Exp(1 / gap_seconds)`` lulls between bursts — offsets are what a
  paced replay would sleep to, and are monotone by construction;
* **policy mix**: priorities and share weights are drawn per request from
  the profile's choice tuples; a ``deadline_fraction`` of requests carry an
  end-to-end deadline; a ``budget_fraction`` of specs carry a loose
  ``max_nodes`` budget and a ``tight_budget_fraction`` a ``max_nodes=1``
  budget that deterministically trips on exact queries, so the trace
  exercises every outcome status without losing replayability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graphdb import generators
from ..graphdb.database import BagGraphDatabase, GraphDatabase
from ..languages.examples import FIGURE_1_LANGUAGES, NP_HARD
from ..service.workload import QuerySpec, Workload

AnyDatabase = GraphDatabase | BagGraphDatabase

#: The default query catalogue: every Figure 1 regex whose alphabet fits the
#: generated databases below.  Order is the fixed catalogue order; popularity
#: ranks over it are a per-seed permutation.
DEFAULT_CATALOGUE: tuple[str, ...] = tuple(
    example.regex for example in FIGURE_1_LANGUAGES
)

#: Catalogue entries whose resilience problem is NP-hard (exact fallback);
#: these are the ones a tight node budget deterministically trips on.
HARD_QUERIES: frozenset[str] = frozenset(
    example.regex
    for example in FIGURE_1_LANGUAGES
    if example.complexity == NP_HARD
)


@dataclass(frozen=True)
class DatabaseSpec:
    """One generated database of a traffic profile.

    ``bag_copies`` > 0 turns the generated set database into a bag database
    via ``to_bag`` (multiplicity per fact), covering both semantics in one
    trace.
    """

    num_nodes: int = 6
    num_edges: int = 18
    alphabet: str = "abcdefxy"
    bag_copies: int = 0

    def build(self, seed: int) -> AnyDatabase:
        database = generators.random_labelled_graph(
            self.num_nodes, self.num_edges, self.alphabet, seed=seed
        )
        if self.bag_copies > 0:
            return database.to_bag(self.bag_copies)
        return database


@dataclass(frozen=True)
class TrafficProfile:
    """Every knob of a generated traffic trace; the seed pins all of them.

    Attributes:
        seed: the one source of randomness — equal profiles generate equal
            traces.
        requests: how many requests the trace holds.
        zipf_s: zipf exponent of query popularity (higher = more skewed).
        catalogue: the query strings popularity ranks over.
        databases: specs of the generated databases; requests pick a database
            zipf-style too (the first-ranked database is the hot one).
        workload_size: inclusive ``(min, max)`` bounds on specs per request.
        burst_size: inclusive ``(min, max)`` bounds on requests per burst.
        burst_rate: mean intra-burst arrival rate (requests per second).
        gap_seconds: mean lull between bursts (seconds).
        priorities: admission classes drawn per request (lower serves first).
        weights: share weights drawn per request.
        deadline_fraction: fraction of requests carrying ``deadline_seconds``.
            Deadlines make admission timing-dependent, so replay-parity
            harnesses keep this at 0 and soak reports simply count expiries.
        deadline_seconds: the deadline those requests carry.
        budget_fraction: fraction of specs carrying a loose ``max_nodes``
            budget (never trips on the small generated databases).
        budget_nodes: that loose budget.
        tight_budget_fraction: fraction of specs carrying ``max_nodes=1`` —
            deterministically ``budget-exceeded`` on NP-hard queries, so
            traces exercise the budget path without breaking replayability.
    """

    seed: int = 0
    requests: int = 32
    zipf_s: float = 1.1
    catalogue: tuple[str, ...] = DEFAULT_CATALOGUE
    databases: tuple[DatabaseSpec, ...] = (
        DatabaseSpec(num_nodes=6, num_edges=18, alphabet="abcdefxy"),
        DatabaseSpec(num_nodes=5, num_edges=13, alphabet="abcdex", bag_copies=2),
    )
    workload_size: tuple[int, int] = (1, 4)
    burst_size: tuple[int, int] = (2, 6)
    burst_rate: float = 200.0
    gap_seconds: float = 0.05
    priorities: tuple[int, ...] = (0, 0, 1, 2)
    weights: tuple[float, ...] = (0.5, 1.0, 1.0, 2.0)
    deadline_fraction: float = 0.0
    deadline_seconds: float = 30.0
    budget_fraction: float = 0.2
    budget_nodes: int = 50_000
    tight_budget_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1 (got {self.requests})")
        if not self.catalogue:
            raise ValueError("catalogue must not be empty")
        if not self.databases:
            raise ValueError("databases must not be empty")
        for low, high, name in (
            (*self.workload_size, "workload_size"),
            (*self.burst_size, "burst_size"),
        ):
            if low < 1 or high < low:
                raise ValueError(f"{name} must be 1 <= min <= max (got ({low}, {high}))")
        if self.burst_rate <= 0 or self.gap_seconds < 0:
            raise ValueError("burst_rate must be > 0 and gap_seconds >= 0")
        for fraction in (
            self.deadline_fraction, self.budget_fraction, self.tight_budget_fraction,
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"fractions must be within [0, 1] (got {fraction})")


@dataclass(frozen=True)
class TrafficRequest:
    """One open-loop request of a trace.

    ``offset`` is seconds since trace start (monotone across the trace); the
    remaining fields map one-to-one onto
    :meth:`~repro.service.async_server.AsyncResilienceServer.submit`
    arguments, with ``database_key`` naming the trace database the workload
    runs against.
    """

    seq: int
    offset: float
    priority: int
    weight: float
    deadline: float | None
    database_key: str
    workload: Workload


@dataclass(frozen=True)
class TrafficTrace:
    """A fully expanded traffic trace: databases plus ordered requests.

    Frozen-field equality intentionally covers ``requests`` and ``profile``
    only — databases are compared by content fingerprint via
    :meth:`database_fingerprints` (graph objects hash by identity).
    """

    requests: tuple[TrafficRequest, ...]
    databases: dict[str, AnyDatabase] = field(compare=False)
    profile: TrafficProfile | None = None

    def database_fingerprints(self) -> dict[str, str]:
        return {
            key: database.content_fingerprint()
            for key, database in sorted(self.databases.items())
        }

    def query_counts(self) -> dict[str, int]:
        """How often each query label occurs across the trace (zipf shape)."""
        counts: dict[str, int] = {}
        for request in self.requests:
            for spec in request.workload:
                label = spec.display_name()
                counts[label] = counts.get(label, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.requests)


def _zipf_weights(count: int, s: float) -> list[float]:
    return [1.0 / (rank + 1) ** s for rank in range(count)]


def generate_traffic(profile: TrafficProfile) -> TrafficTrace:
    """Expand a profile into its (deterministic) trace.

    One ``random.Random(profile.seed)`` stream drives everything in a fixed
    order — databases, popularity permutations, arrivals, then requests — so
    equal profiles yield equal traces and any soak run can be replayed by
    seed alone.
    """
    rng = random.Random(profile.seed)

    databases = {
        f"db-{position}": spec.build(seed=rng.randrange(2**31))
        for position, spec in enumerate(profile.databases)
    }
    database_keys = list(databases)

    # Popularity: a seeded permutation of the catalogue (and of the database
    # keys) zipf-weighted by rank, so *which* queries are hot varies by seed
    # while the skew itself does not.
    ranked_queries = list(profile.catalogue)
    rng.shuffle(ranked_queries)
    query_weights = _zipf_weights(len(ranked_queries), profile.zipf_s)
    rng.shuffle(database_keys)
    database_weights = _zipf_weights(len(database_keys), profile.zipf_s)

    requests: list[TrafficRequest] = []
    clock = 0.0
    while len(requests) < profile.requests:
        burst = rng.randint(*profile.burst_size)
        for _ in range(burst):
            if len(requests) >= profile.requests:
                break
            clock += rng.expovariate(profile.burst_rate)
            specs = []
            for _ in range(rng.randint(*profile.workload_size)):
                query = rng.choices(ranked_queries, weights=query_weights)[0]
                roll = rng.random()
                if roll < profile.tight_budget_fraction and query in HARD_QUERIES:
                    specs.append(QuerySpec(query, max_nodes=1))
                elif roll < profile.tight_budget_fraction + profile.budget_fraction:
                    specs.append(QuerySpec(query, max_nodes=profile.budget_nodes))
                else:
                    specs.append(QuerySpec(query))
            deadline = (
                profile.deadline_seconds
                if rng.random() < profile.deadline_fraction
                else None
            )
            requests.append(
                TrafficRequest(
                    seq=len(requests),
                    offset=round(clock, 9),
                    priority=rng.choice(profile.priorities),
                    weight=rng.choice(profile.weights),
                    deadline=deadline,
                    database_key=rng.choices(
                        database_keys, weights=database_weights
                    )[0],
                    workload=Workload(tuple(specs)),
                )
            )
        if profile.gap_seconds:
            clock += rng.expovariate(1.0 / profile.gap_seconds)

    return TrafficTrace(
        requests=tuple(requests), databases=databases, profile=profile
    )
