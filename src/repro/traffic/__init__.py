"""Deterministic production-traffic simulation and chaos soak harness.

The conformance matrix proves the serving stack correct on a fixed workload;
this package demonstrates it at *scale*: a seeded generator produces a
zipf-popular query mix over generated databases with bursty open-loop
arrivals, mixed priorities, weights, deadlines and per-query budgets
(:mod:`~repro.traffic.generator`); a :class:`~repro.traffic.soak.SoakRunner`
drives the full front-end → exchange → node stack through that traffic while
a :class:`~repro.traffic.chaos.ChaosSchedule` injects faults mid-stream
(node kills, slow workers, poison workloads, admission bursts, and network
faults — refused connections, mid-stream disconnects, stalled streams,
corrupt payloads) and an invariant monitor asserts after every round that
nothing was lost, leaked, or silently wrong (:mod:`~repro.traffic.soak`).
The soak runs in-process (``transport="thread"``) or over real sockets
(``transport="http"``) with the same invariants.

Everything is deterministic from the profile seed, so any failed soak run is
replayable bit-for-bit: re-generate the trace from the same
:class:`~repro.traffic.generator.TrafficProfile` and re-run the same
:class:`~repro.traffic.chaos.ChaosSchedule`.
"""

from .chaos import (
    BURST,
    CHAOS_KINDS,
    CORRUPT,
    DISCONNECT,
    KILL,
    NETWORK_KINDS,
    POISON,
    REFUSED,
    SLOW,
    STALL,
    ChaosEvent,
    ChaosSchedule,
)
from .generator import (
    DEFAULT_CATALOGUE,
    HARD_QUERIES,
    DatabaseSpec,
    TrafficProfile,
    TrafficRequest,
    TrafficTrace,
    generate_traffic,
)
from .soak import InvariantViolation, SoakReport, SoakRunner

__all__ = [
    "BURST",
    "CHAOS_KINDS",
    "CORRUPT",
    "DISCONNECT",
    "KILL",
    "NETWORK_KINDS",
    "POISON",
    "REFUSED",
    "SLOW",
    "STALL",
    "ChaosEvent",
    "ChaosSchedule",
    "DEFAULT_CATALOGUE",
    "HARD_QUERIES",
    "DatabaseSpec",
    "InvariantViolation",
    "SoakReport",
    "SoakRunner",
    "TrafficProfile",
    "TrafficRequest",
    "TrafficTrace",
    "generate_traffic",
]
