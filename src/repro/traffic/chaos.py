"""Chaos schedules: scripted mid-soak fault injection.

A :class:`ChaosSchedule` is an ordered tuple of :class:`ChaosEvent` items,
each pinned to a soak *round* (a batch of trace requests the
:class:`~repro.traffic.soak.SoakRunner` submits together).  Four kinds:

* :data:`KILL` — kill the node owning a database mid-stream, after
  ``after_outcomes`` outcomes of the round have been delivered.  The exchange
  must fail the tail over without losing, duplicating or changing an outcome.
* :data:`POISON` — submit an extra workload built from crash-on-unpickle
  languages (the ``_CrashOnUnpickle`` pattern in ``tests/faults.py``): every
  dispatch of its chunk kills a worker process, so the round exercises pool
  crash/replace while the poison's own outcomes surface as structured
  ``error`` results.  The payload workload is supplied by the caller — the
  process-killing helpers deliberately live with the tests, not in ``src``.
  Payload expressions must not be *equivalent* to any query the trace serves
  (node caches key languages by equivalence, so a poison language equivalent
  to an already-cached clean query is substituted by its cached plan and
  never reaches a worker's unpickler) and the payload needs at least two
  queries (a single-query workload serves serially in the node's parent
  process, never crossing a pickle boundary).  The soak's invariant monitor
  catches both misconfigurations loudly: the poison comes back ``ok`` instead
  of ``error``.
* :data:`SLOW` — submit an extra workload of sleep-on-unpickle languages,
  stalling a worker without killing it (latency-tail pressure, still ``ok``).
* :data:`BURST` — submit ``count`` extra one-query workloads at round start,
  pushing the admission queue toward ``max_queue_depth`` so back-pressure
  surfaces as structured ``admission-rejected`` outcomes.

Four *network* kinds model transport faults rather than node faults.  They
fire at round start against the node owning the event's database, through
the duck-typed ``inject_fault(kind, **params)`` surface of a fault-capable
node handle (``tests/faults.py`` provides ``ChaosHttpNode`` /
``ChaosHttpNodeLauncher``, which wrap the real HTTP transport and misbehave
on cue; like the process-killing helpers, they deliberately live with the
tests):

* :data:`REFUSED` — the node refuses its next ``count`` connection attempts
  (a restart window).  A window shorter than the handle's retry budget is
  absorbed invisibly; a longer one looks like node death and heals through
  failover/replacement.
* :data:`DISCONNECT` — the next serve stream is cut with a connection reset
  after ``after_outcomes`` outcomes (``0``: before the first, exercising
  same-node re-dispatch; ``>= 1``: mid-stream, exercising failover).
* :data:`STALL` — the next serve connection is accepted and then hangs; the
  client observes its request timeout expiring (modelled without spending
  the wall-clock wait).
* :data:`CORRUPT` — the next serve stream delivers garbage in place of the
  outcome after ``after_outcomes`` clean ones; the client must treat the
  stream as corrupt, never deliver a mangled outcome.

Events are plain frozen data, so a schedule is as replayable as the traffic
trace it runs against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError
from ..service.workload import Workload

KILL = "kill"
POISON = "poison"
SLOW = "slow"
BURST = "burst"
REFUSED = "refused"
DISCONNECT = "disconnect"
STALL = "stall"
CORRUPT = "corrupt"

#: Transport-fault kinds, injected via a node handle's ``inject_fault``.
NETWORK_KINDS = frozenset({REFUSED, DISCONNECT, STALL, CORRUPT})

CHAOS_KINDS = frozenset({KILL, POISON, SLOW, BURST}) | NETWORK_KINDS

#: Kinds that inject an extra workload (their event must carry one).
_PAYLOAD_KINDS = frozenset({POISON, SLOW})


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    Attributes:
        round: 0-based soak round the event fires in.
        kind: one of :data:`CHAOS_KINDS`.
        after_outcomes: for :data:`KILL` — how many outcomes of the round to
            let land before killing the owner node (mid-stream by
            construction).  For :data:`DISCONNECT` / :data:`CORRUPT` — how
            many outcome lines of the faulted stream to deliver cleanly
            before the cut / garbage line (``0`` allowed: fault before the
            first outcome).
        count: for :data:`BURST` — how many extra one-query workloads to
            submit at round start.  For :data:`REFUSED` — how many
            consecutive connection attempts the node refuses.
        workload: for :data:`POISON` / :data:`SLOW` — the injected workload
            (typically built from ``tests/faults.py`` helpers).
        database_key: trace database the event targets; ``None`` means the
            trace's first database.
    """

    round: int
    kind: str
    after_outcomes: int = 2
    count: int = 4
    workload: Workload | None = None
    database_key: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ReproError(
                f"unknown chaos kind {self.kind!r}; expected one of "
                f"{sorted(CHAOS_KINDS)}"
            )
        if self.round < 0:
            raise ReproError(f"chaos round must be >= 0 (got {self.round})")
        if self.kind == KILL and self.after_outcomes < 1:
            raise ReproError(
                f"kill events fire after >= 1 outcomes (got {self.after_outcomes})"
            )
        if self.kind in (BURST, REFUSED) and self.count < 1:
            raise ReproError(
                f"{self.kind} count must be >= 1 (got {self.count})"
            )
        if self.kind in (DISCONNECT, CORRUPT) and self.after_outcomes < 0:
            raise ReproError(
                f"{self.kind} events fire after >= 0 outcomes "
                f"(got {self.after_outcomes})"
            )
        if self.kind in _PAYLOAD_KINDS and self.workload is None:
            raise ReproError(
                f"{self.kind!r} events need a payload workload (build one with "
                "the fault helpers in tests/faults.py)"
            )

    def as_dict(self) -> dict:
        """JSONL-friendly summary (payload workloads render as a size)."""
        return {
            "round": self.round,
            "kind": self.kind,
            "after_outcomes": (
                self.after_outcomes
                if self.kind in (KILL, DISCONNECT, CORRUPT)
                else None
            ),
            "count": self.count if self.kind in (BURST, REFUSED) else None,
            "payload_queries": None if self.workload is None else len(self.workload),
            "database_key": self.database_key,
        }


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, validated set of chaos events."""

    events: tuple[ChaosEvent, ...] = ()

    def for_round(self, round_index: int) -> tuple[ChaosEvent, ...]:
        return tuple(event for event in self.events if event.round == round_index)

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def last_round(self) -> int:
        return max((event.round for event in self.events), default=-1)

    def __len__(self) -> int:
        return len(self.events)
