"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class of all exceptions raised by the :mod:`repro` package."""


class LanguageError(ReproError):
    """Raised when a language object is malformed or an operation is unsupported."""


class RegexSyntaxError(LanguageError):
    """Raised when a regular expression cannot be parsed."""


class NotFiniteError(LanguageError):
    """Raised when a finite-language operation is applied to an infinite language."""


class NotLocalError(LanguageError):
    """Raised when a local-language algorithm is applied to a non-local language."""



class NotApplicableError(ReproError):
    """Raised when an algorithm's preconditions are not met for the given input."""


class GadgetError(ReproError):
    """Raised when a hardness gadget is malformed or fails verification."""


class GadgetNotAvailableError(GadgetError):
    """Raised when no gadget construction is implemented for the requested language."""


class InfeasibleError(ReproError):
    """Raised when a requested computation has no solution (e.g. infinite resilience)."""
