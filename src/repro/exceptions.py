"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class of all exceptions raised by the :mod:`repro` package."""


class LanguageError(ReproError):
    """Raised when a language object is malformed or an operation is unsupported."""


class RegexSyntaxError(LanguageError):
    """Raised when a regular expression cannot be parsed."""


class NotFiniteError(LanguageError):
    """Raised when a finite-language operation is applied to an infinite language."""


class NotLocalError(LanguageError):
    """Raised when a local-language algorithm is applied to a non-local language."""



class NotApplicableError(ReproError):
    """Raised when an algorithm's preconditions are not met for the given input."""


class SearchBudgetExceeded(ReproError, RuntimeError):
    """Raised when the exact branch-and-bound search exhausts its budget.

    Carries the budget diagnostics as structured data so callers (the hardness
    reduction checker, the serving layer) can catch *exactly* budget overruns
    without swallowing unrelated errors.  Also inherits :class:`RuntimeError`
    because the seed raised a bare ``RuntimeError`` here and downstream code may
    still catch that.

    The keyword arguments have defaults so the default ``BaseException``
    pickling protocol (reconstruct from ``args``, then restore ``__dict__``)
    round-trips the exception across the process boundaries the serving layer
    introduces.

    Attributes:
        nodes_explored: search nodes expanded when the budget tripped.
        max_nodes: the node budget that was exceeded, if any.
        max_seconds: the time budget that was exceeded, if any.
    """

    def __init__(
        self,
        message: str,
        *,
        nodes_explored: int = 0,
        max_nodes: int | None = None,
        max_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.nodes_explored = nodes_explored
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds


class GadgetError(ReproError):
    """Raised when a hardness gadget is malformed or fails verification."""


class GadgetNotAvailableError(GadgetError):
    """Raised when no gadget construction is implemented for the requested language."""


class InfeasibleError(ReproError):
    """Raised when a requested computation has no solution (e.g. infinite resilience)."""
