"""RPQ evaluation by product construction (Section 2 of the paper).

``Q_L(D) = 1`` iff the database contains a walk labelled by a word of ``L``.
Evaluation builds the product of the database (viewed as an automaton whose
states are nodes and whose transitions are facts) with an epsilon-NFA for ``L``
and checks reachability; a witness walk can be extracted from the BFS tree.

The evaluator runs on *compiled query plans*: the automaton is trimmed and its
epsilon closures and ``(state, label)`` transition indexes are computed once
(:class:`~repro.languages.automata.CompiledAutomaton`), and the database's node
set and adjacency lists come from its cached
:class:`~repro.graphdb.index.DatabaseIndex`.  Callers that evaluate many
sub-databases of one database (the exact resilience search) use
:func:`find_l_walk_ids` with a removed-fact mask, which avoids materializing
sub-databases entirely.  All orders are deterministic (sorted by ``repr``), so
the returned walk — and anything derived from it, such as branch-and-bound
node counts — is reproducible across runs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from ..graphdb.database import Fact, GraphDatabase, Node
from ..graphdb.index import DatabaseIndex
from ..languages.automata import CompiledAutomaton, EpsilonNFA, State, compile_automaton


def has_l_walk(automaton: EpsilonNFA | CompiledAutomaton, database: GraphDatabase) -> bool:
    """Return whether the database contains an ``L``-walk for ``L = L(automaton)``."""
    return find_l_walk(automaton, database) is not None


def find_l_walk(
    automaton: EpsilonNFA | CompiledAutomaton, database: GraphDatabase
) -> list[Fact] | None:
    """Return a shortest ``L``-walk of the database as a list of facts, or ``None``.

    The empty walk (when the empty word belongs to ``L``) is returned as ``[]``.
    The walk is shortest in number of edges, which makes it a convenient
    branching witness for the exact resilience algorithm.  Accepts either a raw
    :class:`EpsilonNFA` (compiled through the shared plan cache) or an already
    compiled plan.
    """
    plan = automaton if isinstance(automaton, CompiledAutomaton) else compile_automaton(automaton)
    index = database.index()
    ids = find_l_walk_ids(plan, index)
    if ids is None:
        return None
    return index.facts_of_ids(ids)


def find_l_walk_ids(
    plan: CompiledAutomaton,
    index: DatabaseIndex,
    removed: Sequence[int] | None = None,
) -> list[int] | None:
    """Product-BFS for a shortest ``L``-walk over an indexed (sub-)database.

    Args:
        plan: the compiled query plan.
        index: the shared database index.
        removed: optional removed-fact mask — any sequence indexed by fact id
            whose truthy entries mark facts excluded from the sub-database
            (typically a ``bytearray``).  ``None`` evaluates the full database.

    Returns:
        the fact ids of a shortest walk (``[]`` for the empty walk), or ``None``
        when no ``L``-walk exists.
    """
    if plan.is_empty:
        return None
    if plan.accepts_empty:
        return []
    if not index.facts:
        return None

    facts = index.facts
    outgoing = index.outgoing_ids
    steps = plan.steps
    final_states = plan.final

    # Product BFS over pairs (database node, automaton state); automaton states
    # are always taken epsilon-closed.  Nodes whose facts are all removed only
    # contribute dead start pairs, which cost nothing to skip.
    parents: dict[tuple[Node, State], tuple[tuple[Node, State], int] | None] = {}
    queue: deque[tuple[Node, State]] = deque()
    for node in index.nodes:
        for state in plan.initial_closure:
            pair = (node, state)
            parents[pair] = None
            queue.append(pair)

    while queue:
        pair = queue.popleft()
        node, state = pair
        for fact_id in outgoing.get(node, ()):
            if removed is not None and removed[fact_id]:
                continue
            fact = facts[fact_id]
            targets = steps.get((state, fact.label))
            if not targets:
                continue
            for closed in targets:
                next_pair = (fact.target, closed)
                if next_pair in parents:
                    continue
                parents[next_pair] = (pair, fact_id)
                if closed in final_states:
                    return _reconstruct_walk_ids(parents, next_pair)
                queue.append(next_pair)
    return None


def _reconstruct_walk_ids(
    parents: dict[tuple[Node, State], tuple[tuple[Node, State], int] | None],
    end: tuple[Node, State],
) -> list[int]:
    walk: list[int] = []
    current = end
    while True:
        entry = parents[current]
        if entry is None:
            break
        previous, fact_id = entry
        walk.append(fact_id)
        current = previous
    walk.reverse()
    return walk


def walk_label(walk: list[Fact]) -> str:
    """Return the word labelling a walk."""
    return "".join(fact.label for fact in walk)


def is_walk(walk: list[Fact]) -> bool:
    """Return whether a list of facts forms a walk (consecutive facts share endpoints)."""
    return all(walk[index].target == walk[index + 1].source for index in range(len(walk) - 1))
