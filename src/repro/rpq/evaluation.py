"""RPQ evaluation by product construction (Section 2 of the paper).

``Q_L(D) = 1`` iff the database contains a walk labelled by a word of ``L``.
Evaluation builds the product of the database (viewed as an automaton whose
states are nodes and whose transitions are facts) with an epsilon-NFA for ``L``
and checks reachability; a witness walk can be extracted from the BFS tree.
"""

from __future__ import annotations

from collections import deque

from ..graphdb.database import Fact, GraphDatabase, Node
from ..languages.automata import EpsilonNFA, State


def has_l_walk(automaton: EpsilonNFA, database: GraphDatabase) -> bool:
    """Return whether the database contains an ``L``-walk for ``L = L(automaton)``."""
    return find_l_walk(automaton, database) is not None


def find_l_walk(automaton: EpsilonNFA, database: GraphDatabase) -> list[Fact] | None:
    """Return a shortest ``L``-walk of the database as a list of facts, or ``None``.

    The empty walk (when the empty word belongs to ``L``) is returned as ``[]``.
    The walk is shortest in number of edges, which makes it a convenient
    branching witness for the exact resilience algorithm.
    """
    trimmed = automaton.trim()
    if not trimmed.final:
        return None
    initial_closure = trimmed.epsilon_closure(trimmed.initial)
    if initial_closure & trimmed.final:
        return []
    if not database.facts:
        return None

    # Transitions of the query automaton indexed by label.
    by_label: dict[str, list[tuple[State, State]]] = {}
    for source, label, target in trimmed.letter_transitions:
        assert label is not None
        by_label.setdefault(label, []).append((source, target))

    outgoing = database.outgoing()

    # Product BFS over pairs (database node, automaton state); automaton states
    # are always taken epsilon-closed.
    start_pairs = [
        (node, state) for node in database.nodes for state in initial_closure
    ]
    parents: dict[tuple[Node, State], tuple[tuple[Node, State], Fact] | None] = {
        pair: None for pair in start_pairs
    }
    queue: deque[tuple[Node, State]] = deque(start_pairs)
    final_states = trimmed.final

    def closure_pairs(node: Node, state: State) -> list[tuple[Node, State]]:
        return [(node, closed) for closed in trimmed.epsilon_closure([state])]

    while queue:
        node, state = queue.popleft()
        for fact in outgoing.get(node, ()):
            for q_source, q_target in by_label.get(fact.label, ()):
                if q_source != state:
                    continue
                for pair in closure_pairs(fact.target, q_target):
                    if pair in parents:
                        continue
                    parents[pair] = ((node, state), fact)
                    if pair[1] in final_states:
                        return _reconstruct_walk(parents, pair)
                    queue.append(pair)
    return None


def _reconstruct_walk(
    parents: dict[tuple[Node, State], tuple[tuple[Node, State], Fact] | None],
    end: tuple[Node, State],
) -> list[Fact]:
    walk: list[Fact] = []
    current = end
    while True:
        entry = parents[current]
        if entry is None:
            break
        previous, fact = entry
        walk.append(fact)
        current = previous
    walk.reverse()
    return walk


def walk_label(walk: list[Fact]) -> str:
    """Return the word labelling a walk."""
    return "".join(fact.label for fact in walk)


def is_walk(walk: list[Fact]) -> bool:
    """Return whether a list of facts forms a walk (consecutive facts share endpoints)."""
    return all(walk[index].target == walk[index + 1].source for index in range(len(walk) - 1))
