"""Regular path queries: evaluation, witness walks and match enumeration."""

from .evaluation import find_l_walk, has_l_walk, walk_label
from .matching import enumerate_matches, minimal_matches
from .query import RPQ

__all__ = [
    "RPQ",
    "enumerate_matches",
    "find_l_walk",
    "has_l_walk",
    "minimal_matches",
    "walk_label",
]
