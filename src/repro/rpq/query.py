"""Boolean regular path queries (RPQs).

An RPQ ``Q_L`` is satisfied by a database ``D`` when ``D`` contains a walk
labelled by a word of ``L`` (walk semantics, Section 2 of the paper).
"""

from __future__ import annotations

from ..graphdb.database import BagGraphDatabase, Fact, GraphDatabase, as_set
from ..languages.core import Language
from . import evaluation, matching


class RPQ:
    """A Boolean regular path query defined by a regular language."""

    def __init__(self, language: Language) -> None:
        self.language = language

    @classmethod
    def from_regex(cls, expression: str) -> "RPQ":
        return cls(Language.from_regex(expression))

    @property
    def name(self) -> str:
        return self.language.name or "<RPQ>"

    def holds(self, database: GraphDatabase | BagGraphDatabase) -> bool:
        """Return whether the query is satisfied by the database.

        Bag databases are evaluated through their underlying set database
        (multiplicities are invisible to queries).
        """
        return evaluation.has_l_walk(self.language.automaton, as_set(database))

    def __call__(self, database: GraphDatabase | BagGraphDatabase) -> bool:
        return self.holds(database)

    def witness_walk(self, database: GraphDatabase | BagGraphDatabase) -> list[Fact] | None:
        """Return a shortest witnessing walk (list of facts), or ``None``."""
        return evaluation.find_l_walk(self.language.automaton, as_set(database))

    def matches(
        self, database: GraphDatabase | BagGraphDatabase, max_walk_length: int | None = None
    ) -> set[frozenset[Fact]]:
        """Return all matches (fact sets of ``L``-walks) of the query on the database."""
        return matching.enumerate_matches(self.language, as_set(database), max_walk_length)

    def is_contingency_set(
        self, database: GraphDatabase | BagGraphDatabase, facts: frozenset[Fact] | set[Fact]
    ) -> bool:
        """Return whether removing ``facts`` from the database falsifies the query."""
        remaining = as_set(database).remove(facts)
        return not self.holds(remaining)

    def __repr__(self) -> str:
        return f"RPQ({self.name!r})"
