"""Enumeration of query matches (Section 4.3 of the paper).

A *match* (or witness) of a language ``L`` on a database ``D`` is the set of
facts of an ``L``-walk.  The hypergraph of matches has the facts of ``D`` as
nodes and the matches as hyperedges; resilience in set semantics equals the
minimum hitting set of this hypergraph.
"""

from __future__ import annotations

from ..exceptions import NotApplicableError
from ..graphdb.database import Fact, GraphDatabase, Node
from ..languages.automata import State
from ..languages.core import Language

Match = frozenset[Fact]


def default_walk_bound(language: Language, database: GraphDatabase) -> int:
    """Return a sound bound on the walk length needed to enumerate all matches.

    For finite languages the bound is the longest word of the language (longer
    walks cannot be matches).  For infinite languages the enumeration is only
    guaranteed to terminate on acyclic databases, where walks never repeat a
    node; otherwise the caller must provide an explicit bound.
    """
    if language.is_finite():
        return language.max_word_length()
    if database.is_acyclic():
        return max(len(database.nodes) - 1, 0)
    raise NotApplicableError(
        "cannot bound walk length: the language is infinite and the database has cycles; "
        "pass max_walk_length explicitly"
    )


def enumerate_matches(
    language: Language,
    database: GraphDatabase,
    max_walk_length: int | None = None,
) -> set[Match]:
    """Return every match of the language on the database.

    The enumeration explores walks whose label is a prefix of some word of the
    language (tracked through the states of the query automaton) up to the walk
    bound, and records the fact set of every walk whose label is in the
    language.

    Args:
        language: the query language.
        database: the database.
        max_walk_length: override for the walk-length bound (see
            :func:`default_walk_bound`).
    """
    bound = max_walk_length if max_walk_length is not None else default_walk_bound(language, database)
    automaton = language.automaton.trim()
    matches: set[Match] = set()
    if not automaton.final:
        return matches
    initial_closure = automaton.epsilon_closure(automaton.initial)
    if initial_closure & automaton.final:
        matches.add(frozenset())

    by_label: dict[str, list[tuple[State, State]]] = {}
    for source, label, target in automaton.letter_transitions:
        assert label is not None
        by_label.setdefault(label, []).append((source, target))
    outgoing = database.outgoing()
    final_states = automaton.final

    def explore(node: Node, states: frozenset[State], facts: tuple[Fact, ...]) -> None:
        if len(facts) >= bound:
            return
        for fact in outgoing.get(node, ()):
            transitions = by_label.get(fact.label)
            if not transitions:
                continue
            next_states = {target for source, target in transitions if source in states}
            if not next_states:
                continue
            closed = automaton.epsilon_closure(next_states)
            new_facts = facts + (fact,)
            if closed & final_states:
                matches.add(frozenset(new_facts))
            explore(fact.target, frozenset(closed), new_facts)

    for node in database.nodes:
        explore(node, initial_closure, ())
    return matches


def minimal_matches(matches: set[Match]) -> set[Match]:
    """Return the inclusion-minimal matches (larger matches are redundant for hitting sets)."""
    ordered = sorted(matches, key=len)
    kept: list[Match] = []
    for match in ordered:
        if not any(existing <= match for existing in kept):
            kept.append(match)
    return set(kept)


def matches_using_fact(matches: set[Match], fact: Fact) -> set[Match]:
    """Return the matches containing a given fact."""
    return {match for match in matches if fact in match}


def label_of_match_walks(
    language: Language, database: GraphDatabase, match: Match, max_walk_length: int | None = None
) -> set[str]:
    """Return the set of language words labelling walks whose fact set is exactly ``match``.

    This is a debugging / reporting helper used by the gadget verification tool.
    """
    sub_database = GraphDatabase(match)
    bound = max_walk_length if max_walk_length is not None else default_walk_bound(language, sub_database)
    automaton = language.automaton.trim()
    results: set[str] = set()
    initial_closure = automaton.epsilon_closure(automaton.initial)
    by_label: dict[str, list[tuple[State, State]]] = {}
    for source, label, target in automaton.letter_transitions:
        assert label is not None
        by_label.setdefault(label, []).append((source, target))
    outgoing = sub_database.outgoing()

    def explore(node: Node, states: frozenset[State], facts: tuple[Fact, ...], word: str) -> None:
        if len(facts) >= bound:
            return
        for fact in outgoing.get(node, ()):
            transitions = by_label.get(fact.label)
            if not transitions:
                continue
            next_states = {target for source, target in transitions if source in states}
            if not next_states:
                continue
            closed = automaton.epsilon_closure(next_states)
            new_facts = facts + (fact,)
            new_word = word + fact.label
            if closed & automaton.final and frozenset(new_facts) == match:
                results.add(new_word)
            explore(fact.target, frozenset(closed), new_facts, new_word)

    for node in sub_database.nodes:
        explore(node, initial_closure, (), "")
    return results
