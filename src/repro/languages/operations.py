"""Algorithms on finite automata.

This module contains the classical constructions used throughout the paper:
subset-construction determinization, completion, complementation, product
(intersection), union, difference, Moore minimization, equivalence testing,
emptiness, finiteness, and enumeration of the words of a finite language.

All functions are pure: they take :class:`~repro.languages.automata.EpsilonNFA`
instances and return new ones.

The canonicalization helpers at the bottom (:func:`canonical_dfa`,
:func:`canonical_fingerprint`) turn an automaton into the *unique* minimal
complete DFA of its language with a deterministic state numbering, which makes
language equivalence decidable by string comparison of fingerprints — the key
the cross-instance analysis caches are built on.
"""

from __future__ import annotations

import hashlib
from collections import deque
from collections.abc import Iterable
from itertools import count

from ..exceptions import LanguageError, NotFiniteError
from .automata import EpsilonNFA, State

_SINK = "__sink__"


# --------------------------------------------------------------------------- determinization


def determinize(automaton: EpsilonNFA) -> EpsilonNFA:
    """Return a DFA equivalent to ``automaton`` via the subset construction.

    The resulting DFA is *not* complete: missing transitions mean rejection.
    States of the result are frozensets of states of the input.
    """
    step: dict[tuple[State, str], set[State]] = {}
    for source, label, target in automaton.transitions:
        if label is not None:
            step.setdefault((source, label), set()).add(target)

    start = automaton.epsilon_closure(automaton.initial)
    states: set[frozenset[State]] = {start}
    transitions: list[tuple[frozenset[State], str, frozenset[State]]] = []
    queue: deque[frozenset[State]] = deque([start])
    alphabet = sorted(automaton.alphabet)
    while queue:
        current = queue.popleft()
        for letter in alphabet:
            successors: set[State] = set()
            for state in current:
                successors |= step.get((state, letter), set())
            if not successors:
                continue
            closure = automaton.epsilon_closure(successors)
            if closure not in states:
                states.add(closure)
                queue.append(closure)
            transitions.append((current, letter, closure))
    final = {subset for subset in states if subset & automaton.final}
    return EpsilonNFA.build(states, [start], final, transitions, automaton.alphabet)


def complete(automaton: EpsilonNFA, alphabet: Iterable[str] | None = None) -> EpsilonNFA:
    """Return a complete DFA equivalent to the given DFA, adding a sink if needed."""
    if not automaton.is_dfa():
        automaton = determinize(automaton)
    full_alphabet = frozenset(alphabet) if alphabet is not None else automaton.alphabet
    full_alphabet = full_alphabet | automaton.alphabet
    outgoing = {(source, label) for source, label, _ in automaton.letter_transitions}
    transitions = set(automaton.transitions)
    states = set(automaton.states)
    needs_sink = False
    for state in automaton.states:
        for letter in full_alphabet:
            if (state, letter) not in outgoing:
                transitions.add((state, letter, _SINK))
                needs_sink = True
    if needs_sink:
        states.add(_SINK)
        for letter in full_alphabet:
            transitions.add((_SINK, letter, _SINK))
    if not automaton.initial:
        states.add(_SINK)
        return EpsilonNFA.build(states, [_SINK], automaton.final, transitions, full_alphabet)
    return EpsilonNFA.build(states, automaton.initial, automaton.final, transitions, full_alphabet)


def complement(automaton: EpsilonNFA, alphabet: Iterable[str] | None = None) -> EpsilonNFA:
    """Return an automaton for the complement of the language over ``alphabet``."""
    dfa = complete(determinize(automaton), alphabet)
    return EpsilonNFA.build(
        dfa.states, dfa.initial, dfa.states - dfa.final, dfa.transitions, dfa.alphabet
    )


# --------------------------------------------------------------------------- boolean combinations


def product(left: EpsilonNFA, right: EpsilonNFA, *, mode: str = "intersection") -> EpsilonNFA:
    """Return the product automaton of two automata.

    ``mode`` selects the acceptance condition: ``"intersection"`` accepts when
    both components accept, ``"difference"`` when the left accepts and the right
    does not (the right automaton must then be a complete DFA).
    """
    left_nfa = left.remove_epsilon()
    right_nfa = right.remove_epsilon()
    alphabet = left_nfa.alphabet | right_nfa.alphabet
    left_step: dict[tuple[State, str], set[State]] = {}
    for source, label, target in left_nfa.transitions:
        left_step.setdefault((source, label), set()).add(target)
    right_step: dict[tuple[State, str], set[State]] = {}
    for source, label, target in right_nfa.transitions:
        right_step.setdefault((source, label), set()).add(target)

    start = {(l, r) for l in left_nfa.initial for r in right_nfa.initial}
    states: set[tuple[State, State]] = set(start)
    transitions: list[tuple[tuple[State, State], str, tuple[State, State]]] = []
    queue = deque(start)
    while queue:
        current = queue.popleft()
        l_state, r_state = current
        for letter in alphabet:
            l_targets = left_step.get((l_state, letter), set())
            r_targets = right_step.get((r_state, letter), set())
            for l_target in l_targets:
                for r_target in r_targets:
                    nxt = (l_target, r_target)
                    transitions.append((current, letter, nxt))
                    if nxt not in states:
                        states.add(nxt)
                        queue.append(nxt)
    if mode == "intersection":
        final = {
            (l, r) for (l, r) in states if l in left_nfa.final and r in right_nfa.final
        }
    elif mode == "difference":
        final = {
            (l, r) for (l, r) in states if l in left_nfa.final and r not in right_nfa.final
        }
    else:  # pragma: no cover - defensive
        raise LanguageError(f"unknown product mode: {mode}")
    return EpsilonNFA.build(states, start, final, transitions, alphabet)


def intersection(left: EpsilonNFA, right: EpsilonNFA) -> EpsilonNFA:
    """Return an automaton for ``L(left) & L(right)``."""
    return product(left, right, mode="intersection")


def union(left: EpsilonNFA, right: EpsilonNFA) -> EpsilonNFA:
    """Return an automaton for ``L(left) | L(right)`` (disjoint union of automata)."""
    alphabet = left.alphabet | right.alphabet

    def tag(automaton: EpsilonNFA, marker: str) -> EpsilonNFA:
        mapping = {state: (marker, state) for state in automaton.states}
        return EpsilonNFA.build(
            mapping.values(),
            (mapping[s] for s in automaton.initial),
            (mapping[s] for s in automaton.final),
            ((mapping[s], label, mapping[t]) for s, label, t in automaton.transitions),
            alphabet,
        )

    tagged_left = tag(left, "L")
    tagged_right = tag(right, "R")
    return EpsilonNFA.build(
        tagged_left.states | tagged_right.states,
        tagged_left.initial | tagged_right.initial,
        tagged_left.final | tagged_right.final,
        tagged_left.transitions | tagged_right.transitions,
        alphabet,
    )


def difference(left: EpsilonNFA, right: EpsilonNFA) -> EpsilonNFA:
    """Return an automaton for ``L(left) \\ L(right)``."""
    alphabet = left.alphabet | right.alphabet
    right_complete = complete(determinize(right), alphabet)
    return product(left, right_complete, mode="difference")


def concatenation(left: EpsilonNFA, right: EpsilonNFA) -> EpsilonNFA:
    """Return an automaton for ``L(left) . L(right)`` using epsilon transitions."""
    alphabet = left.alphabet | right.alphabet

    def tag(automaton: EpsilonNFA, marker: str) -> EpsilonNFA:
        mapping = {state: (marker, state) for state in automaton.states}
        return EpsilonNFA.build(
            mapping.values(),
            (mapping[s] for s in automaton.initial),
            (mapping[s] for s in automaton.final),
            ((mapping[s], label, mapping[t]) for s, label, t in automaton.transitions),
            alphabet,
        )

    tagged_left = tag(left, "L")
    tagged_right = tag(right, "R")
    glue = {(state, None, target) for state in tagged_left.final for target in tagged_right.initial}
    return EpsilonNFA.build(
        tagged_left.states | tagged_right.states,
        tagged_left.initial,
        tagged_right.final,
        tagged_left.transitions | tagged_right.transitions | glue,
        alphabet,
    )


def kleene_star(automaton: EpsilonNFA) -> EpsilonNFA:
    """Return an automaton for ``L(automaton)*``."""
    mapping = {state: ("S", state) for state in automaton.states}
    new_initial = "__star_init__"
    states = set(mapping.values()) | {new_initial}
    transitions = {(mapping[s], label, mapping[t]) for s, label, t in automaton.transitions}
    transitions |= {(new_initial, None, mapping[s]) for s in automaton.initial}
    transitions |= {(mapping[s], None, new_initial) for s in automaton.final}
    return EpsilonNFA.build(
        states, [new_initial], [new_initial], transitions, automaton.alphabet
    )


# --------------------------------------------------------------------------- minimization


def minimize(automaton: EpsilonNFA) -> EpsilonNFA:
    """Return the minimal complete DFA of the language (Moore's algorithm).

    The result is trimmed of the sink only if the sink is not needed, i.e. the
    minimal automaton is complete; callers who want the canonical minimal DFA for
    equivalence checks should compare the outputs of this function directly.
    """
    dfa = complete(determinize(automaton.trim()), automaton.alphabet)
    alphabet = sorted(dfa.alphabet)
    table = {
        (source, label): target for source, label, target in dfa.letter_transitions
    }
    # Moore refinement.
    partition_of: dict[State, int] = {
        state: (1 if state in dfa.final else 0) for state in dfa.states
    }
    while True:
        signatures: dict[State, tuple] = {}
        for state in dfa.states:
            signature = (
                partition_of[state],
                tuple(partition_of[table[(state, letter)]] for letter in alphabet),
            )
            signatures[state] = signature
        distinct = {signature: index for index, signature in enumerate(sorted(set(signatures.values()), key=repr))}
        new_partition = {state: distinct[signatures[state]] for state in dfa.states}
        if len(set(new_partition.values())) == len(set(partition_of.values())):
            partition_of = new_partition
            break
        partition_of = new_partition
    classes = sorted(set(partition_of.values()))
    (initial_state,) = dfa.initial
    transitions = {
        (partition_of[source], label, partition_of[target])
        for source, label, target in dfa.letter_transitions
    }
    final = {partition_of[state] for state in dfa.final}
    return EpsilonNFA.build(classes, [partition_of[initial_state]], final, transitions, dfa.alphabet)


def equivalent(left: EpsilonNFA, right: EpsilonNFA) -> bool:
    """Return whether two automata recognize the same language."""
    alphabet = left.alphabet | right.alphabet
    left_minus_right = difference(left.with_alphabet(alphabet), right.with_alphabet(alphabet))
    if not is_empty(left_minus_right):
        return False
    right_minus_left = difference(right.with_alphabet(alphabet), left.with_alphabet(alphabet))
    return is_empty(right_minus_left)


def contains_language(larger: EpsilonNFA, smaller: EpsilonNFA) -> bool:
    """Return whether ``L(smaller)`` is a subset of ``L(larger)``."""
    alphabet = larger.alphabet | smaller.alphabet
    return is_empty(difference(smaller.with_alphabet(alphabet), larger.with_alphabet(alphabet)))


# --------------------------------------------------------------------------- emptiness / finiteness / enumeration


def is_empty(automaton: EpsilonNFA) -> bool:
    """Return whether the language of the automaton is empty."""
    return not automaton.trim().final


def is_finite(automaton: EpsilonNFA) -> bool:
    """Return whether the language of the automaton is finite.

    A trimmed automaton recognizes an infinite language iff it has a cycle
    (every state of a trimmed automaton lies on some accepting path).
    """
    trimmed = automaton.trim()
    adjacency: dict[State, list[State]] = {}
    for source, _, target in trimmed.transitions:
        adjacency.setdefault(source, []).append(target)
    color: dict[State, int] = {}

    def has_cycle_from(start: State) -> bool:
        stack: list[tuple[State, int]] = [(start, 0)]
        color[start] = 1
        path: list[State] = [start]
        while stack:
            state, index = stack[-1]
            successors = adjacency.get(state, [])
            if index < len(successors):
                stack[-1] = (state, index + 1)
                nxt = successors[index]
                status = color.get(nxt, 0)
                if status == 1:
                    return True
                if status == 0:
                    color[nxt] = 1
                    stack.append((nxt, 0))
                    path.append(nxt)
            else:
                stack.pop()
                finished = path.pop()
                color[finished] = 2
        return False

    for state in trimmed.states:
        if color.get(state, 0) == 0 and has_cycle_from(state):
            return False
    return True


def shortest_word(automaton: EpsilonNFA) -> str | None:
    """Return a shortest word of the language, or ``None`` if the language is empty."""
    trimmed = automaton.trim()
    if not trimmed.final:
        return None
    start = trimmed.epsilon_closure(trimmed.initial)
    if start & trimmed.final:
        return ""
    step: dict[State, list[tuple[str, State]]] = {}
    for source, label, target in trimmed.transitions:
        if label is not None:
            step.setdefault(source, []).append((label, target))
    queue: deque[tuple[State, str]] = deque((state, "") for state in start)
    visited = set(start)
    while queue:
        state, word = queue.popleft()
        for label, target in step.get(state, ()):
            closure = trimmed.epsilon_closure([target])
            new_word = word + label
            if closure & trimmed.final:
                return new_word
            for nxt in closure:
                if nxt not in visited:
                    visited.add(nxt)
                    queue.append((nxt, new_word))
    return None


def enumerate_finite_language(automaton: EpsilonNFA, limit: int | None = None) -> frozenset[str]:
    """Return the words of a finite regular language as an explicit set.

    Args:
        automaton: the automaton; its language must be finite.
        limit: optional safety cap on the number of words; exceeding it raises
            :class:`~repro.exceptions.NotFiniteError`.

    Raises:
        NotFiniteError: if the language is infinite (or exceeds ``limit`` words).
    """
    if not is_finite(automaton):
        raise NotFiniteError("the language of the automaton is infinite")
    trimmed = automaton.trim()
    if not trimmed.final:
        return frozenset()
    step: dict[State, list[tuple[str, State]]] = {}
    for source, label, target in trimmed.remove_epsilon().transitions:
        step.setdefault(source, []).append((label, target))
    nfa = trimmed.remove_epsilon()
    words: set[str] = set()

    stack: list[tuple[State, str]] = [(state, "") for state in nfa.initial]
    # The language is finite and the NFA is trimmed, hence acyclic as a labelled
    # multigraph restricted to useful states; a DFS terminates.
    while stack:
        state, word = stack.pop()
        if state in nfa.final:
            words.add(word)
            if limit is not None and len(words) > limit:
                raise NotFiniteError(f"language has more than {limit} words")
        for label, target in step.get(state, ()):
            stack.append((target, word + label))
    return frozenset(words)


def enumerate_words_up_to_length(automaton: EpsilonNFA, max_length: int) -> frozenset[str]:
    """Return every word of the language of length at most ``max_length``."""
    nfa = automaton.trim().remove_epsilon()
    step: dict[State, list[tuple[str, State]]] = {}
    for source, label, target in nfa.transitions:
        step.setdefault(source, []).append((label, target))
    words: set[str] = set()
    frontier: list[tuple[State, str]] = [(state, "") for state in nfa.initial]
    while frontier:
        state, word = frontier.pop()
        if state in nfa.final:
            words.add(word)
        if len(word) == max_length:
            continue
        for label, target in step.get(state, ()):
            frontier.append((target, word + label))
    return frozenset(words)


def max_word_length(automaton: EpsilonNFA) -> int:
    """Return the length of the longest word of a finite language (0 for the empty language)."""
    words = enumerate_finite_language(automaton)
    return max((len(word) for word in words), default=0)


# --------------------------------------------------------------------------- canonicalization


def canonical_dfa(automaton: EpsilonNFA) -> EpsilonNFA:
    """Return the canonical minimal complete DFA of the language.

    The result is the Myhill–Nerode minimal complete DFA over the automaton's
    alphabet, with states renamed ``0..n-1`` in BFS order from the initial
    state, exploring letters in sorted order.  Two automata recognize the same
    language over the same alphabet *iff* their canonical DFAs are equal as
    :class:`EpsilonNFA` values — the alphabet matters because the minimal
    complete DFA of, say, ``a`` over ``{a}`` and over ``{a, b}`` differ by the
    sink behaviour on ``b``.
    """
    dfa = minimize(automaton)
    table = {(source, label): target for source, label, target in dfa.letter_transitions}
    (start,) = dfa.initial
    alphabet = sorted(dfa.alphabet)
    order: list[State] = [start]
    seen: set[State] = {start}
    for state in order:  # ``order`` grows while iterating: BFS without a queue.
        for letter in alphabet:
            target = table.get((state, letter))
            if target is not None and target not in seen:
                seen.add(target)
                order.append(target)
    # Every class of the minimal complete DFA is reachable from the initial
    # state, so ``order`` covers all states; keep a deterministic fallback
    # anyway so a malformed input cannot produce an unstable numbering.
    for state in sorted(dfa.states - seen, key=repr):
        order.append(state)
    mapping = {state: index for index, state in enumerate(order)}
    return EpsilonNFA.build(
        mapping.values(),
        [mapping[start]],
        (mapping[state] for state in dfa.final),
        ((mapping[s], label, mapping[t]) for s, label, t in dfa.letter_transitions),
        dfa.alphabet,
    )


def canonical_fingerprint(automaton: EpsilonNFA) -> str:
    """Return a fingerprint identifying the *language* of the automaton.

    Two automata over the same alphabet have equal fingerprints iff they are
    language-equivalent (no hashing caveat in practice: a SHA-256 collision
    would require adversarially constructed inputs).  The fingerprint is stable
    across processes and interpreter versions, so it can key persistent caches.
    """
    dfa = canonical_dfa(automaton)
    payload = repr(
        (
            tuple(sorted(dfa.alphabet)),
            len(dfa.states),
            tuple(sorted(dfa.initial)),
            tuple(sorted(dfa.final)),
            tuple(sorted(dfa.letter_transitions)),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fresh_letter(alphabet: Iterable[str], *, avoid: Iterable[str] = ()) -> str:
    """Return a single-character letter not present in ``alphabet`` nor ``avoid``."""
    used = set(alphabet) | set(avoid)
    candidates = "zyxwvutsrqponmlkjihgfedcba0123456789"
    for candidate in candidates:
        if candidate not in used:
            return candidate
    for code in count(0x100):
        candidate = chr(code)
        if candidate not in used:
            return candidate
    raise LanguageError("could not find a fresh letter")  # pragma: no cover
