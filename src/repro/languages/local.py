"""Local languages (Section 3.1 of the paper).

A language is *local* when it is recognized by a local DFA (all transitions on a
given letter share their target state), equivalently when it is
*letter-Cartesian* (Definition 3.3 / Proposition 3.5).  The key construction is
the *local overapproximation* (Definition 3.8): the local DFA built from the
start letters, end letters and allowed consecutive letter pairs of the language;
a language is local iff it equals its local overapproximation (Claim 3.11).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from . import operations
from .automata import EpsilonNFA, State
from .core import Language

_INITIAL_STATE = "q_init"


@dataclass(frozen=True)
class LocalProfile:
    """The data defining the local overapproximation of a language (Definition 3.8).

    Attributes:
        start_letters: letters that can start a word of the language.
        end_letters: letters that can end a word of the language.
        consecutive_pairs: ordered pairs of letters that occur consecutively in some word.
        has_epsilon: whether the empty word belongs to the language.
        alphabet: the alphabet of the language.
    """

    start_letters: frozenset[str]
    end_letters: frozenset[str]
    consecutive_pairs: frozenset[tuple[str, str]]
    has_epsilon: bool
    alphabet: frozenset[str]


def local_profile(language: Language) -> LocalProfile:
    """Compute the start letters, end letters and consecutive pairs of a language.

    The computation works on the trimmed epsilon-NFA: a letter can start a word
    iff some transition on it leaves the epsilon-closure of the initial states,
    and similarly for end letters; a pair ``(a, b)`` can occur consecutively iff
    some ``a``-transition's target has an epsilon-path to the source of some
    ``b``-transition.
    """
    automaton = language.automaton.trim()
    has_epsilon = language.contains("")
    if not automaton.final:
        return LocalProfile(frozenset(), frozenset(), frozenset(), has_epsilon, language.alphabet)

    letter_transitions = list(automaton.letter_transitions)
    initial_closure = automaton.epsilon_closure(automaton.initial)

    # States having an epsilon path to a final state.
    reverse_epsilon: dict[State, list[State]] = {}
    for source, label, target in automaton.transitions:
        if label is None:
            reverse_epsilon.setdefault(target, []).append(source)
    to_final: set[State] = set(automaton.final)
    queue = deque(to_final)
    while queue:
        state = queue.popleft()
        for predecessor in reverse_epsilon.get(state, ()):
            if predecessor not in to_final:
                to_final.add(predecessor)
                queue.append(predecessor)

    start_letters = {
        label for source, label, _ in letter_transitions if label is not None and source in initial_closure
    }
    end_letters = {
        label for _, label, target in letter_transitions if label is not None and target in to_final
    }

    pairs: set[tuple[str, str]] = set()
    sources_of_letter: dict[State, set[str]] = {}
    for source, label, _ in letter_transitions:
        assert label is not None
        sources_of_letter.setdefault(source, set()).add(label)
    for _, label_a, target in letter_transitions:
        assert label_a is not None
        for state in automaton.epsilon_closure([target]):
            for label_b in sources_of_letter.get(state, ()):
                pairs.add((label_a, label_b))
    return LocalProfile(
        frozenset(start_letters),
        frozenset(end_letters),
        frozenset(pairs),
        has_epsilon,
        language.alphabet,
    )


def local_overapproximation(language: Language) -> EpsilonNFA:
    """Return the local overapproximation DFA of the language (Definition 3.8).

    The DFA has one state ``q_a`` per letter ``a`` plus a fresh initial state; by
    construction it is a local DFA and its language contains the input language
    (Claim 3.9).
    """
    profile = local_profile(language)
    states: set[State] = {_INITIAL_STATE}
    final: set[State] = set()
    transitions: set[tuple[State, str, State]] = set()
    if profile.has_epsilon:
        final.add(_INITIAL_STATE)
    for letter in language.alphabet:
        states.add(("q", letter))
    for letter in profile.end_letters:
        final.add(("q", letter))
    for letter in profile.start_letters:
        transitions.add((_INITIAL_STATE, letter, ("q", letter)))
    for letter_a, letter_b in profile.consecutive_pairs:
        transitions.add((("q", letter_a), letter_b, ("q", letter_b)))
    return EpsilonNFA.build(states, [_INITIAL_STATE], final, transitions, language.alphabet).trim()


def is_local(language: Language) -> bool:
    """Return whether the language is local (Claim 3.11 / Proposition 3.12).

    The language is local iff it equals the language of its local
    overapproximation.  This also yields the PTIME locality test for DFAs of
    Proposition 3.12 (and works for any epsilon-NFA input, at the cost of a
    determinization during the equivalence check).
    """
    approximation = local_overapproximation(language)
    return operations.equivalent(language.automaton, approximation)


def letter_cartesian_violation_finite(
    language: Language, max_length: int | None = None
) -> tuple[str, str, str, str, str] | None:
    """Return a violation ``(x, alpha, beta, gamma, delta)`` of the letter-Cartesian condition.

    The check enumerates the words of a finite language exhaustively and returns
    a tuple witnessing that ``alpha x beta`` and ``gamma x delta`` are words of
    the language but ``alpha x delta`` is not; ``None`` means the (finite)
    language is letter-Cartesian, hence local (Proposition 3.5).

    Args:
        language: the language to check; must be finite unless ``max_length`` is
            given, in which case only words up to that length are considered
            (the result is then only a *candidate* violation / heuristic check).
    """
    if max_length is None:
        words = language.words()
    else:
        words = language.words_up_to_length(max_length)
    word_list = sorted(words)
    for first in word_list:
        for i, letter in enumerate(first):
            alpha, beta = first[:i], first[i + 1 :]
            for second in word_list:
                for j, other in enumerate(second):
                    if other != letter:
                        continue
                    gamma, delta = second[:j], second[j + 1 :]
                    candidate = alpha + letter + delta
                    if max_length is None:
                        in_language = candidate in words
                    else:
                        in_language = language.contains(candidate)
                    if not in_language:
                        return (letter, alpha, beta, gamma, delta)
    return None


def is_letter_cartesian_finite(language: Language, max_length: int | None = None) -> bool:
    """Return whether a finite language satisfies the letter-Cartesian condition."""
    return letter_cartesian_violation_finite(language, max_length=max_length) is None
