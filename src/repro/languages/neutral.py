"""Neutral letters and the dichotomy of Proposition 5.7 (Section 5.2 of the paper).

A letter ``e`` is *neutral* for ``L`` when inserting or deleting ``e`` anywhere
in a word never changes membership: for every ``alpha, beta`` we have
``alpha beta in L`` iff ``alpha e beta in L``.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import operations
from .automata import EpsilonNFA
from .core import Language
from . import four_legged as four_legged_module


def _insertion_language(language: Language, letter: str) -> EpsilonNFA:
    """Return an automaton for ``{alpha e beta : alpha beta in L}`` (one insertion of ``e``)."""
    base = language.automaton.remove_epsilon().trim()
    states = {(phase, state) for phase in (0, 1) for state in base.states}
    transitions = set()
    for source, label, target in base.transitions:
        transitions.add(((0, source), label, (0, target)))
        transitions.add(((1, source), label, (1, target)))
    for state in base.states:
        transitions.add(((0, state), letter, (1, state)))
    initial = {(0, state) for state in base.initial}
    final = {(1, state) for state in base.final}
    return EpsilonNFA.build(states, initial, final, transitions, language.alphabet | {letter})


def _deletion_language(language: Language, letter: str) -> EpsilonNFA:
    """Return an automaton for ``{alpha beta : alpha e beta in L}`` (one deletion of ``e``)."""
    base = language.automaton.remove_epsilon().trim()
    states = {(phase, state) for phase in (0, 1) for state in base.states}
    transitions = set()
    for source, label, target in base.transitions:
        transitions.add(((0, source), label, (0, target)))
        transitions.add(((1, source), label, (1, target)))
        if label == letter:
            transitions.add(((0, source), None, (1, target)))
    initial = {(0, state) for state in base.initial}
    final = {(1, state) for state in base.final}
    return EpsilonNFA.build(states, initial, final, transitions, language.alphabet)


def is_neutral_letter(language: Language, letter: str) -> bool:
    """Return whether ``letter`` is neutral for the language.

    The letter is neutral iff the language is closed under inserting one ``e``
    anywhere and under deleting one ``e`` anywhere.
    """
    automaton = language.automaton.with_alphabet(language.alphabet | {letter})
    insertion = _insertion_language(language, letter)
    if not operations.contains_language(automaton, insertion):
        return False
    deletion = _deletion_language(language, letter)
    return operations.contains_language(automaton, deletion)


def neutral_letters(language: Language) -> frozenset[str]:
    """Return the set of letters of the alphabet that are neutral for the language."""
    return frozenset(
        letter for letter in language.alphabet if is_neutral_letter(language, letter)
    )


@dataclass(frozen=True)
class NeutralLetterCase:
    """The outcome of the Lemma 5.8 case analysis for a language with a neutral letter.

    Exactly one of ``four_legged_witness`` and ``square_letter`` is set when the
    infix-free sublanguage is not local; both are ``None`` when it is local.
    """

    neutral_letter: str | None
    infix_free_is_local: bool
    four_legged_witness: four_legged_module.FourLeggedWitness | None
    square_letter: str | None


def lemma_5_8_analysis(language: Language) -> NeutralLetterCase:
    """Perform the case analysis of Lemma 5.8 for a language with a neutral letter.

    If ``IF(L)`` is local the language is tractable (Theorem 3.13); otherwise the
    lemma guarantees that ``IF(L)`` is four-legged or contains a word ``xx``, and
    this function returns which case applies (searching for concrete evidence).
    """
    letters = neutral_letters(language)
    neutral = min(letters) if letters else None
    infix_free = language.infix_free()
    if infix_free.is_local():
        return NeutralLetterCase(neutral, True, None, None)
    square = None
    for letter in sorted(infix_free.alphabet):
        if infix_free.contains(letter + letter):
            square = letter
            break
    witness = four_legged_module.find_witness(infix_free)
    if witness is None and square is None:
        raise AssertionError(
            "Lemma 5.8 violated: IF(L) is neither local, four-legged, nor contains xx"
        )
    return NeutralLetterCase(neutral, False, witness, square)
