"""Formal-language substrate: words, automata, regular expressions, and the
language classes studied in the paper (local, star-free, four-legged, chain,
bipartite chain, one-dangling, languages with neutral letters).
"""

from .automata import CompiledAutomaton, EpsilonNFA, compile_automaton
from .core import Language
from .operations import canonical_dfa, canonical_fingerprint
from .regex import parse_regex, regex_to_automaton
from .words import EPSILON, has_repeated_letter, mirror

__all__ = [
    "EPSILON",
    "CompiledAutomaton",
    "EpsilonNFA",
    "Language",
    "canonical_dfa",
    "canonical_fingerprint",
    "compile_automaton",
    "has_repeated_letter",
    "mirror",
    "parse_regex",
    "regex_to_automaton",
]
