"""The example languages of Figure 1 (and a few more used throughout the paper).

Each entry records the regular expression, the region of Figure 1 it belongs to,
and the complexity of its resilience problem as classified by the paper.  These
are used by the classifier tests and by the Figure 1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core import Language

PTIME = "PTIME"
NP_HARD = "NP-hard"
UNCLASSIFIED = "unclassified"

REGION_LOCAL = "local (Thm 3.13)"
REGION_BCL = "bipartite chain (Prp 7.6)"
REGION_ONE_DANGLING = "one-dangling (Prp 7.9)"
REGION_FOUR_LEGGED = "four-legged (Thm 5.3)"
REGION_NON_STAR_FREE = "non-star-free (Lem 5.6)"
REGION_REPEATED_LETTER = "finite, repeated letter (Thm 6.1)"
REGION_EXPLICIT_GADGET = "explicit gadget (Prp 7.4 / Prp 7.11)"
REGION_UNCLASSIFIED = "unclassified"


@dataclass(frozen=True)
class ExampleLanguage:
    """One language from Figure 1 with its classification in the paper.

    Attributes:
        regex: the regular expression, in the paper's notation.
        region: the Figure 1 region the language is drawn in.
        complexity: ``"PTIME"``, ``"NP-hard"`` or ``"unclassified"``.
        finite: whether the language is finite.
        note: free-form comment (which result classifies it).
    """

    regex: str
    region: str
    complexity: str
    finite: bool
    note: str = ""

    def language(self) -> Language:
        return Language.from_regex(self.regex)


FIGURE_1_LANGUAGES: tuple[ExampleLanguage, ...] = (
    # ---- PTIME: local languages (Theorem 3.13)
    ExampleLanguage("abc|abd", REGION_LOCAL, PTIME, True, "local finite language"),
    ExampleLanguage("ab|ad|cd", REGION_LOCAL, PTIME, True, "Figure 2b local DFA"),
    ExampleLanguage("ax*b", REGION_LOCAL, PTIME, False, "Figure 2a; MinCut connection"),
    # ---- PTIME: bipartite chain languages (Proposition 7.6)
    ExampleLanguage("ab|bc", REGION_BCL, PTIME, True, "bipartite chain language"),
    ExampleLanguage("axb|byc", REGION_BCL, PTIME, True, "bipartite chain language"),
    # ---- PTIME: one-dangling languages (Proposition 7.9)
    ExampleLanguage("ax*b|xd", REGION_ONE_DANGLING, PTIME, False, "classified by Prp 7.9"),
    ExampleLanguage("abc|be", REGION_ONE_DANGLING, PTIME, True, "one-dangling"),
    ExampleLanguage("abcd|ce", REGION_ONE_DANGLING, PTIME, True, "one-dangling"),
    ExampleLanguage("abcd|be", REGION_ONE_DANGLING, PTIME, True, "classified by Prp 7.9"),
    # ---- NP-hard: four-legged languages (Theorem 5.3)
    ExampleLanguage("axb|cxd", REGION_FOUR_LEGGED, NP_HARD, True, "Proposition 4.13"),
    ExampleLanguage("ax*b|cxd", REGION_FOUR_LEGGED, NP_HARD, False, "four-legged, infinite"),
    # ---- NP-hard: non-star-free languages (Lemma 5.6)
    ExampleLanguage("b(aa)*d", REGION_NON_STAR_FREE, NP_HARD, False, "non-star-free"),
    # ---- NP-hard: finite languages with a repeated letter (Theorem 6.1)
    ExampleLanguage("aa", REGION_REPEATED_LETTER, NP_HARD, True, "Proposition 4.1"),
    ExampleLanguage("aaaa", REGION_REPEATED_LETTER, NP_HARD, True, "repeated letter"),
    ExampleLanguage("abca|cab", REGION_REPEATED_LETTER, NP_HARD, True, "repeated letter"),
    # ---- NP-hard: explicit gadgets (Propositions 7.4 and 7.11)
    ExampleLanguage("ab|bc|ca", REGION_EXPLICIT_GADGET, NP_HARD, True, "Proposition 7.4"),
    ExampleLanguage("abcd|be|ef", REGION_EXPLICIT_GADGET, NP_HARD, True, "Proposition 7.11"),
    ExampleLanguage("abcd|bef", REGION_EXPLICIT_GADGET, NP_HARD, True, "Proposition 7.11"),
    # ---- Unclassified languages
    ExampleLanguage("abc|bcd", REGION_UNCLASSIFIED, UNCLASSIFIED, True, "open case"),
    ExampleLanguage("abc|bef", REGION_UNCLASSIFIED, UNCLASSIFIED, True, "open case"),
    ExampleLanguage("ab*c|ba", REGION_UNCLASSIFIED, UNCLASSIFIED, False, "open case, added in v2"),
    ExampleLanguage("ab*d|ac*d|bc", REGION_UNCLASSIFIED, UNCLASSIFIED, False, "open case, added in v2"),
)


SUPPLEMENTARY_LANGUAGES: tuple[ExampleLanguage, ...] = (
    ExampleLanguage("axb|cxd|cxb", REGION_FOUR_LEGGED, NP_HARD, True, "Example 5.2"),
    ExampleLanguage("axyb|bztc|cd|dea", REGION_BCL, PTIME, True, "Example 7.3"),
    ExampleLanguage("a|b", REGION_LOCAL, PTIME, True, "trivial local language"),
    ExampleLanguage("axb|axc", REGION_LOCAL, PTIME, True, "local but not a BCL (Section 7.1)"),
    ExampleLanguage("be*c|de*f", REGION_FOUR_LEGGED, NP_HARD, False, "IF(L1) in Section 5.2"),
    ExampleLanguage("aab", REGION_REPEATED_LETTER, NP_HARD, True, "Claim 6.14"),
    ExampleLanguage("aaa", REGION_REPEATED_LETTER, NP_HARD, True, "Claim 6.11"),
    ExampleLanguage("aba|bab", REGION_REPEATED_LETTER, NP_HARD, True, "Claim 6.10"),
)


ALL_EXAMPLES: tuple[ExampleLanguage, ...] = FIGURE_1_LANGUAGES + SUPPLEMENTARY_LANGUAGES


def figure_1_languages() -> tuple[ExampleLanguage, ...]:
    """Return the Figure 1 example languages."""
    return FIGURE_1_LANGUAGES


def example_by_regex(regex: str) -> ExampleLanguage:
    """Return the example entry with the given regular expression."""
    for example in ALL_EXAMPLES:
        if example.regex == regex:
            return example
    raise KeyError(regex)
