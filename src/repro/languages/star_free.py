"""Star-free (aperiodic) languages (Section 5.2 of the paper).

The paper defines a regular language ``L`` to be star-free when there is a
``k > 0`` such that for all words ``rho, sigma, tau`` and all ``m >= k`` we have
``rho sigma^k tau in L`` iff ``rho sigma^m tau in L``.  This is the classical
notion of an *aperiodic* (counter-free) language, which we test through the
transition monoid of the minimal DFA: the language is star-free iff every
element ``t`` of the monoid satisfies ``t^n = t^(n+1)`` for some ``n``.

When the language is not star-free, :func:`non_star_free_witness` extracts a
counterexample ``(rho, sigma, tau, k, m)`` which is then turned into a
four-legged witness by :mod:`repro.languages.four_legged` (Lemma 5.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import LanguageError
from . import operations
from .automata import EpsilonNFA, State
from .core import Language


@dataclass(frozen=True)
class StarFreeCounterexample:
    """A counterexample to star-freeness: exactly one of ``rho sigma^k tau`` and
    ``rho sigma^m tau`` belongs to the language, with ``k`` greater than the
    number of states of the DFA used and ``m >= k``."""

    rho: str
    sigma: str
    tau: str
    exponent_k: int
    exponent_m: int
    num_states: int

    def word_k(self) -> str:
        return self.rho + self.sigma * self.exponent_k + self.tau

    def word_m(self) -> str:
        return self.rho + self.sigma * self.exponent_m + self.tau


def _minimal_dfa(language: Language) -> EpsilonNFA:
    return operations.minimize(language.automaton)


def _transition_table(dfa: EpsilonNFA) -> tuple[list[State], dict[tuple[State, str], State]]:
    states = sorted(dfa.states, key=repr)
    table = {
        (source, label): target for source, label, target in dfa.letter_transitions if label is not None
    }
    return states, table


def _compose(first: tuple[int, ...], second: tuple[int, ...]) -> tuple[int, ...]:
    """Return the composition ``second after first`` of two transformations."""
    return tuple(second[value] for value in first)


def transition_monoid(
    language: Language, max_monoid_size: int = 200_000
) -> tuple[dict[tuple[int, ...], str], list[int]]:
    """Return the transition monoid of the minimal DFA of the language.

    Returns a pair ``(elements, state_indices)`` where ``elements`` maps each
    transformation (a tuple over state indices) to a shortest word inducing it.

    Raises:
        LanguageError: if the monoid would exceed ``max_monoid_size`` elements.
    """
    dfa = _minimal_dfa(language)
    states, table = _transition_table(dfa)
    index_of = {state: index for index, state in enumerate(states)}
    alphabet = sorted(dfa.alphabet)

    generators: dict[str, tuple[int, ...]] = {}
    for letter in alphabet:
        generators[letter] = tuple(index_of[table[(state, letter)]] for state in states)

    identity = tuple(range(len(states)))
    elements: dict[tuple[int, ...], str] = {identity: ""}
    frontier = [identity]
    while frontier:
        new_frontier: list[tuple[int, ...]] = []
        for element in frontier:
            word = elements[element]
            for letter in alphabet:
                composed = _compose(element, generators[letter])
                if composed not in elements:
                    elements[composed] = word + letter
                    new_frontier.append(composed)
                    if len(elements) > max_monoid_size:
                        raise LanguageError(
                            f"transition monoid exceeds {max_monoid_size} elements"
                        )
        frontier = new_frontier
    return elements, [index_of[state] for state in dfa.initial]


def _is_aperiodic_element(element: tuple[int, ...], bound: int) -> bool:
    """Return whether ``element^n == element^(n+1)`` for some ``n <= bound``."""
    power = element
    for _ in range(bound + 1):
        next_power = _compose(power, element)
        if next_power == power:
            return True
        power = next_power
    return False


def is_star_free(language: Language, max_monoid_size: int = 200_000) -> bool:
    """Return whether the language is star-free (aperiodic)."""
    if language.is_empty():
        return True
    elements, _ = transition_monoid(language, max_monoid_size=max_monoid_size)
    bound = max(len(element) for element in elements)
    return all(_is_aperiodic_element(element, bound) for element in elements)


def non_star_free_witness(
    language: Language, max_monoid_size: int = 200_000
) -> StarFreeCounterexample | None:
    """Return a counterexample to star-freeness, or ``None`` when the language is star-free.

    The counterexample follows the shape used in the proof of Lemma 5.6: a word
    ``sigma`` whose transformation is not aperiodic, a prefix ``rho`` reaching a
    state on which the powers of ``sigma`` differ, and a distinguishing suffix
    ``tau``; the two exponents differ by one and both exceed the number of
    states of the minimal DFA.
    """
    if language.is_empty():
        return None
    dfa = _minimal_dfa(language)
    states, table = _transition_table(dfa)
    index_of = {state: index for index, state in enumerate(states)}
    final_indices = {index_of[state] for state in dfa.final}
    (initial_state,) = dfa.initial
    initial_index = index_of[initial_state]
    num_states = len(states)

    elements, _ = transition_monoid(language, max_monoid_size=max_monoid_size)
    bound = max(len(element) for element in elements)

    for element, sigma in elements.items():
        if not sigma:
            continue
        if _is_aperiodic_element(element, bound):
            continue
        # Powers of ``element`` are eventually periodic with period >= 2, so for
        # every large enough exponent n we have element^n != element^(n+1).
        exponent = num_states + 1
        power = element
        for _ in range(exponent - 1):
            power = _compose(power, element)
        next_power = _compose(power, element)
        while power == next_power:  # pragma: no cover - cannot happen for non-aperiodic elements
            exponent += 1
            power, next_power = next_power, _compose(next_power, element)

        # Find a state reachable from the initial state on which the two powers
        # lead to different acceptance behaviour for some suffix tau.
        rho_to_state = _shortest_words_from(dfa, initial_state)
        for state, rho in rho_to_state.items():
            source = index_of[state]
            state_k = power[source]
            state_m = next_power[source]
            if state_k == state_m:
                continue
            tau = _distinguishing_suffix(states, table, final_indices, state_k, state_m)
            if tau is None:
                continue
            word_k = rho + sigma * exponent + tau
            word_m = rho + sigma * (exponent + 1) + tau
            in_k = language.contains(word_k)
            in_m = language.contains(word_m)
            if in_k != in_m:
                return StarFreeCounterexample(rho, sigma, tau, exponent, exponent + 1, num_states)
    return None


def _shortest_words_from(dfa: EpsilonNFA, start: State) -> dict[State, str]:
    """Return, for each state reachable from ``start``, a shortest word reaching it."""
    from collections import deque

    table: dict[State, list[tuple[str, State]]] = {}
    for source, label, target in dfa.letter_transitions:
        assert label is not None
        table.setdefault(source, []).append((label, target))
    words: dict[State, str] = {start: ""}
    queue: deque[State] = deque([start])
    while queue:
        state = queue.popleft()
        for label, target in sorted(table.get(state, ()), key=lambda item: item[0]):
            if target not in words:
                words[target] = words[state] + label
                queue.append(target)
    return words


def _distinguishing_suffix(
    states: list[State],
    table: dict[tuple[State, str], State],
    final_indices: set[int],
    first: int,
    second: int,
) -> str | None:
    """Return a word tau such that exactly one of the two states accepts tau."""
    from collections import deque

    index_of = {state: index for index, state in enumerate(states)}
    start = (first, second)
    seen = {start}
    queue: deque[tuple[tuple[int, int], str]] = deque([(start, "")])
    letters = sorted({label for (_, label) in table})
    while queue:
        (state_a, state_b), word = queue.popleft()
        accept_a = state_a in final_indices
        accept_b = state_b in final_indices
        if accept_a != accept_b:
            return word
        for letter in letters:
            next_a = index_of[table[(states[state_a], letter)]]
            next_b = index_of[table[(states[state_b], letter)]]
            pair = (next_a, next_b)
            if pair not in seen:
                seen.add(pair)
                queue.append((pair, word + letter))
    return None
