"""Chain languages and bipartite chain languages (Section 7.1 of the paper).

A *chain language* (Definition 7.1) is a language in which no word has a
repeated letter and in which the intermediate letters of a word occur in no
other word.  Chain languages are always finite.  A chain language is a
*bipartite chain language* (BCL, Definition 7.2) when its *endpoint graph* --
the graph on letters with an edge between the two endpoint letters of every
word of length at least two -- is bipartite.  Proposition 7.6 shows that
resilience is tractable for BCLs.

This module also implements the explicit word extraction of Lemma 7.7 /
Claim C.5: given an epsilon-NFA promised to recognize a chain language, list its
words explicitly in polynomial time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import NotApplicableError
from . import operations
from .automata import EpsilonNFA, State
from .core import Language
from .words import has_repeated_letter


def is_chain_language(language: Language) -> bool:
    """Return whether the language is a chain language (Definition 7.1)."""
    if not language.is_finite():
        return False
    words = language.words()
    if any(has_repeated_letter(word) for word in words):
        return False
    for word in words:
        if len(word) < 2:
            continue
        middle_letters = set(word[1:-1])
        if not middle_letters:
            continue
        for other in words:
            if other == word:
                continue
            if middle_letters & set(other):
                return False
    return True


def endpoint_graph(language: Language) -> dict[str, set[str]]:
    """Return the endpoint graph of the language as an adjacency dictionary (Definition 7.2)."""
    adjacency: dict[str, set[str]] = {letter: set() for letter in language.alphabet}
    for word in language.words():
        if len(word) >= 2 and word[0] != word[-1]:
            adjacency.setdefault(word[0], set()).add(word[-1])
            adjacency.setdefault(word[-1], set()).add(word[0])
    return adjacency


def bipartition(adjacency: dict[str, set[str]]) -> tuple[set[str], set[str]] | None:
    """Two-colour an undirected graph; return the two colour classes or ``None`` if not bipartite."""
    colour: dict[str, int] = {}
    for start in sorted(adjacency):
        if start in colour:
            continue
        colour[start] = 0
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in colour:
                    colour[neighbour] = 1 - colour[node]
                    stack.append(neighbour)
                elif colour[neighbour] == colour[node]:
                    return None
    side_zero = {node for node, value in colour.items() if value == 0}
    side_one = {node for node, value in colour.items() if value == 1}
    return side_zero, side_one


def is_bipartite_chain_language(language: Language) -> bool:
    """Return whether the language is a bipartite chain language (Definition 7.2)."""
    if not is_chain_language(language):
        return False
    return bipartition(endpoint_graph(language)) is not None


@dataclass(frozen=True)
class BclStructure:
    """The data needed by the Proposition 7.6 flow reduction for a BCL.

    Attributes:
        words: the words of the language of length at least two, after the
            preprocessing of Proposition 7.6.
        single_letter_words: letters that form one-letter words of the language
            (their facts must always be removed).
        has_epsilon: whether the empty word is in the language (resilience is
            then infinite whenever the database is non-empty -- actually always).
        source_letters: endpoint letters assigned to the source side.
        target_letters: endpoint letters assigned to the target side.
        forward_words: words whose first letter is on the source side.
        reversed_words: words whose first letter is on the target side.
    """

    words: frozenset[str]
    single_letter_words: frozenset[str]
    has_epsilon: bool
    source_letters: frozenset[str]
    target_letters: frozenset[str]
    forward_words: frozenset[str]
    reversed_words: frozenset[str]

    @property
    def all_length_two_plus(self) -> frozenset[str]:
        return self.forward_words | self.reversed_words


def bcl_structure(language: Language) -> BclStructure:
    """Analyse a BCL and compute the bipartition-driven word orientation of Proposition 7.6.

    Raises:
        NotApplicableError: if the language is not a bipartite chain language.
    """
    if not is_bipartite_chain_language(language):
        raise NotApplicableError(f"language {language} is not a bipartite chain language")
    words = language.words()
    has_epsilon = "" in words
    single_letters = frozenset(word for word in words if len(word) == 1)
    long_words = frozenset(word for word in words if len(word) >= 2)

    adjacency = endpoint_graph(language)
    split = bipartition(adjacency)
    assert split is not None
    # Only *endpoint letters* (first/last letters of words of length >= 2) are
    # attached to the source/target of the flow network; middle letters are
    # isolated in the endpoint graph and must not be attached to either side.
    endpoint_letters = {word[0] for word in long_words} | {word[-1] for word in long_words}
    source_side = split[0] & endpoint_letters
    target_side = split[1] & endpoint_letters

    forward = set()
    backward = set()
    for word in long_words:
        first, last = word[0], word[-1]
        if first in source_side and last in target_side:
            forward.add(word)
        elif first in target_side and last in source_side:
            backward.add(word)
        elif first == last:
            # A word of length >= 2 whose endpoints are equal would contain a
            # repeated letter, impossible in a chain language.
            raise NotApplicableError("chain-language invariant violated")  # pragma: no cover
        else:
            # Both endpoints in the same class: only possible if the word's
            # endpoints are isolated in the endpoint graph, which cannot happen
            # since the word itself creates an edge between them.
            raise NotApplicableError("bipartition does not separate word endpoints")  # pragma: no cover
    return BclStructure(
        words=words,
        single_letter_words=single_letters,
        has_epsilon=has_epsilon,
        source_letters=frozenset(source_side),
        target_letters=frozenset(target_side),
        forward_words=frozenset(forward),
        reversed_words=frozenset(backward),
    )


# --------------------------------------------------------------------------- Lemma 7.7 extraction


def chain_language_words(automaton: EpsilonNFA) -> frozenset[str]:
    """Explicitly list the words of a chain language given by an epsilon-NFA (Lemma 7.7).

    The algorithm follows Appendix C.2: trim the automaton; handle the empty
    word and the single-letter words directly; then, for each ordered pair of
    letters ``(a, b)``, enumerate the words starting with ``a`` and ending with
    ``b`` by depth-first search on the (acyclic, after trimming) middle part.

    The promise that the language is a chain language guarantees termination in
    polynomial time; the function still terminates (by falling back to general
    finite-language enumeration) when the promise is slightly off, and raises
    :class:`~repro.exceptions.NotApplicableError` when the language is infinite.
    """
    trimmed = automaton.trim()
    if not operations.is_finite(trimmed):
        raise NotApplicableError("a chain language must be finite")
    words: set[str] = set()
    closure_initial = trimmed.epsilon_closure(trimmed.initial)
    if closure_initial & trimmed.final:
        words.add("")

    states_to_final: set[State] = _states_with_epsilon_path_to_final(trimmed)

    # Single-letter words: a transition from the initial closure whose target
    # has an epsilon path to a final state.
    for source, label, target in trimmed.letter_transitions:
        assert label is not None
        if source in closure_initial and target in states_to_final:
            words.add(label)

    # Words of length >= 2: for each pair (a, b), restrict to the sub-automaton
    # between the a-transitions leaving the initial closure and the
    # b-transitions entering the final closure.
    letters = sorted(trimmed.alphabet)
    for first in letters:
        first_targets = {
            target
            for source, label, target in trimmed.letter_transitions
            if label == first and source in closure_initial
        }
        if not first_targets:
            continue
        for last in letters:
            last_sources = {
                source
                for source, label, target in trimmed.letter_transitions
                if label == last and target in states_to_final
            }
            if not last_sources:
                continue
            middle = EpsilonNFA.build(
                trimmed.states,
                first_targets,
                last_sources,
                trimmed.transitions,
                trimmed.alphabet,
            )
            for inner in operations.enumerate_finite_language(middle):
                words.add(first + inner + last)
    return frozenset(words)


def _states_with_epsilon_path_to_final(automaton: EpsilonNFA) -> set[State]:
    reverse: dict[State, list[State]] = {}
    for source, label, target in automaton.transitions:
        if label is None:
            reverse.setdefault(target, []).append(source)
    result = set(automaton.final)
    stack = list(result)
    while stack:
        state = stack.pop()
        for predecessor in reverse.get(state, ()):
            if predecessor not in result:
                result.add(predecessor)
                stack.append(predecessor)
    return result
