"""The :class:`Language` façade: the main user-facing representation of a regular language.

A :class:`Language` wraps an epsilon-NFA together with (lazily computed and
cached) derived information: whether the language is finite, its explicit word
set when finite, its infix-free sublanguage, locality, and so on.  All analysis
modules of :mod:`repro.languages` accept :class:`Language` objects.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import cached_property

from ..exceptions import NotFiniteError
from . import operations
from .automata import EpsilonNFA
from .regex import regex_to_automaton
from .words import mirror as mirror_word


# repro: allow[ipc-cache-pickle] -- memoized derivations ship with the pickle
# on purpose: workers reuse the expensive infix-free analysis (see serve.py)
class Language:
    """A regular language over single-character letters.

    Instances should be created through :meth:`from_regex`, :meth:`from_words`
    or :meth:`from_automaton`.
    """

    def __init__(self, automaton: EpsilonNFA, name: str | None = None) -> None:
        self._automaton = automaton
        self.name = name
        self._infix_free: "Language | None" = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ constructors

    @classmethod
    def from_regex(cls, expression: str, alphabet: Iterable[str] = ()) -> "Language":
        """Build a language from a regular expression such as ``"ax*b|cd"``."""
        automaton = regex_to_automaton(expression)
        if alphabet:
            automaton = automaton.with_alphabet(alphabet)
        return cls(automaton, name=expression)

    @classmethod
    def from_words(cls, words: Iterable[str], alphabet: Iterable[str] = (), name: str | None = None) -> "Language":
        """Build a finite language from an explicit collection of words."""
        word_list = sorted(set(words))
        automaton = EpsilonNFA.for_finite_language(word_list, alphabet)
        display = name if name is not None else "|".join(word or "ε" for word in word_list)
        return cls(automaton, name=display or "∅")

    @classmethod
    def from_automaton(cls, automaton: EpsilonNFA, name: str | None = None) -> "Language":
        """Wrap an existing automaton."""
        return cls(automaton, name=name)

    # ------------------------------------------------------------------ basics

    @property
    def automaton(self) -> EpsilonNFA:
        """The underlying epsilon-NFA."""
        return self._automaton

    @property
    def alphabet(self) -> frozenset[str]:
        """The alphabet the language is considered to be over."""
        return self._automaton.alphabet

    def contains(self, word: str) -> bool:
        """Return whether ``word`` belongs to the language."""
        return self._automaton.accepts(word)

    def __contains__(self, word: str) -> bool:
        return self.contains(word)

    @cached_property
    def _is_finite(self) -> bool:
        return operations.is_finite(self._automaton)

    def is_finite(self) -> bool:
        """Return whether the language has finitely many words."""
        return self._is_finite

    def is_empty(self) -> bool:
        """Return whether the language has no words at all."""
        return operations.is_empty(self._automaton)

    def contains_epsilon(self) -> bool:
        """Return whether the empty word belongs to the language."""
        return self.contains("")

    @cached_property
    def _words(self) -> frozenset[str]:
        if not self.is_finite():
            raise NotFiniteError(f"language {self} is infinite; use words_up_to_length instead")
        return operations.enumerate_finite_language(self._automaton)

    def words(self) -> frozenset[str]:
        """Return the explicit word set of a finite language.

        Raises:
            NotFiniteError: if the language is infinite.
        """
        return self._words

    def words_up_to_length(self, max_length: int) -> frozenset[str]:
        """Return every word of the language of length at most ``max_length``."""
        return operations.enumerate_words_up_to_length(self._automaton, max_length)

    def max_word_length(self) -> int:
        """Return the length of the longest word (finite languages only)."""
        return max((len(word) for word in self.words()), default=0)

    def shortest_word(self) -> str | None:
        """Return some shortest word of the language, or ``None`` when empty."""
        return operations.shortest_word(self._automaton)

    def fingerprint(self) -> str:
        """Return the canonical-DFA fingerprint identifying this language.

        Two languages over the same alphabet share a fingerprint iff they are
        equivalent (see :func:`~repro.languages.operations.canonical_fingerprint`),
        whatever syntactic form they were built from — ``(ab)*a`` and
        ``a(ba)*`` fingerprint identically.  Memoized on the instance (shared
        by :meth:`relabelled` copies); the first call pays one determinization
        plus minimization.
        """
        if self._fingerprint is None:
            self._fingerprint = operations.canonical_fingerprint(self._automaton)
        return self._fingerprint

    # ------------------------------------------------------------------ comparisons

    def equivalent_to(self, other: "Language") -> bool:
        """Return whether the two languages contain exactly the same words."""
        return operations.equivalent(self._automaton, other._automaton)

    def subset_of(self, other: "Language") -> bool:
        """Return whether every word of this language belongs to ``other``."""
        return operations.contains_language(other._automaton, self._automaton)

    # ------------------------------------------------------------------ transformations

    def mirror(self) -> "Language":
        """Return the mirror language ``L^R`` (Proposition 6.3)."""
        mirrored = Language(self._automaton.reverse().trim(), name=self._mirror_name())
        return mirrored

    def _mirror_name(self) -> str | None:
        if self.name is None:
            return None
        if self.is_finite():
            try:
                return "|".join(sorted(mirror_word(word) or "ε" for word in self.words()))
            except NotFiniteError:  # pragma: no cover - defensive
                return f"mirror({self.name})"
        return f"mirror({self.name})"

    def infix_free(self) -> "Language":
        """Return the infix-free sublanguage ``IF(L)`` (Section 2).

        The result is memoized on the instance: ``IF(L)`` is by far the most
        expensive per-query derivation (it determinizes padded automata for
        infinite languages), and the dispatcher, the classifier and the serving
        layer all need it.  The returned object is shared — callers must not
        mutate it (use :meth:`relabelled` to change its display name).
        """
        if self._infix_free is None:
            from . import infix

            self._infix_free = infix.infix_free_sublanguage(self)
        return self._infix_free

    def relabelled(self, name: str | None) -> "Language":
        """Return a copy of this language under a different display name.

        The copy shares the automaton and every cached analysis (finiteness,
        word set, memoized infix-free sublanguage, ...) with the original; only
        the name differs.  This is the mutation-free replacement for assigning
        ``language.name`` on a shared (e.g. memoized) instance.
        """
        clone = Language(self._automaton)
        clone.__dict__.update(self.__dict__)
        clone.name = name
        return clone

    def is_infix_free(self) -> bool:
        """Return whether the language equals its infix-free sublanguage."""
        from . import infix

        return infix.is_infix_free(self)

    def restrict_to_letters(self, letters: Iterable[str]) -> "Language":
        """Return the sublanguage of words using only the given letters."""
        keep = frozenset(letters)
        if self.is_finite():
            kept = [word for word in self.words() if set(word) <= keep]
            return Language.from_words(kept, alphabet=keep)
        universe = EpsilonNFA.build(["u"], ["u"], ["u"], [("u", letter, "u") for letter in keep], keep)
        return Language(operations.intersection(self._automaton, universe).trim())

    # ------------------------------------------------------------------ paper-specific analyses (lazy delegations)

    def is_local(self) -> bool:
        """Return whether the language is local (Definition 3.1 / Proposition 3.5)."""
        from . import local

        return local.is_local(self)

    def is_letter_cartesian_on_sample(self, max_length: int | None = None) -> bool:
        """Check the letter-Cartesian condition exhaustively on a finite language."""
        from . import local

        return local.is_letter_cartesian_finite(self, max_length=max_length)

    def local_overapproximation(self) -> EpsilonNFA:
        """Return the local overapproximation DFA of the language (Definition 3.8)."""
        from . import local

        return local.local_overapproximation(self)

    def read_once_automaton(self) -> EpsilonNFA:
        """Return an RO-epsilon-NFA for the language, which must be local (Lemma 3.17)."""
        from . import read_once

        return read_once.read_once_automaton(self)

    def is_star_free(self, max_monoid_size: int = 200_000) -> bool:
        """Return whether the language is star-free / aperiodic (Section 5.2)."""
        from . import star_free

        return star_free.is_star_free(self, max_monoid_size=max_monoid_size)

    def is_four_legged(self) -> bool:
        """Return whether the language is four-legged (Definition 5.1)."""
        from . import four_legged

        return four_legged.is_four_legged(self)

    def four_legged_witness(self):
        """Return a four-legged witness (Definition 5.1) or ``None``."""
        from . import four_legged

        return four_legged.find_witness(self)

    def neutral_letters(self) -> frozenset[str]:
        """Return the set of letters that are neutral for the language (Section 5.2)."""
        from . import neutral

        return neutral.neutral_letters(self)

    def is_chain_language(self) -> bool:
        """Return whether the language is a chain language (Definition 7.1)."""
        from . import chain

        return chain.is_chain_language(self)

    def is_bipartite_chain_language(self) -> bool:
        """Return whether the language is a bipartite chain language (Definition 7.2)."""
        from . import chain

        return chain.is_bipartite_chain_language(self)

    def one_dangling_decomposition(self):
        """Return a one-dangling decomposition (Definition 7.8) or ``None``."""
        from . import dangling

        return dangling.one_dangling_decomposition(self)

    def has_repeated_letter_word(self) -> bool:
        """Return whether some word of a finite language has a repeated letter."""
        from .words import has_repeated_letter

        return any(has_repeated_letter(word) for word in self.words())

    # ------------------------------------------------------------------ dunder

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Language):
            return NotImplemented
        return self.equivalent_to(other)

    def __hash__(self) -> int:
        # Languages are mutable only in their caches; hash on the canonical
        # minimal DFA would be expensive, so hash on the alphabet and finiteness
        # and rely on __eq__ for collisions (hash collisions are acceptable).
        return hash((self.alphabet,))

    def __repr__(self) -> str:
        label = self.name if self.name is not None else "<automaton>"
        return f"Language({label!r})"

    def __str__(self) -> str:
        return self.name if self.name is not None else self._automaton.describe()
