"""Word-level utilities (Section 2 of the paper).

Words are plain Python strings; letters are single characters.  The empty word
is the empty string ``""`` (written epsilon in the paper).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

EPSILON = ""


def letters_of(word: str) -> set[str]:
    """Return the set of letters occurring in ``word``."""
    return set(word)


def alphabet_of(words: Iterable[str]) -> frozenset[str]:
    """Return the union of the letters occurring in ``words``."""
    result: set[str] = set()
    for word in words:
        result.update(word)
    return frozenset(result)


def is_prefix(alpha: str, beta: str) -> bool:
    """Return whether ``alpha`` is a prefix of ``beta``."""
    return beta.startswith(alpha)


def is_strict_prefix(alpha: str, beta: str) -> bool:
    """Return whether ``alpha`` is a prefix of ``beta`` with ``alpha != beta``."""
    return beta.startswith(alpha) and alpha != beta


def is_suffix(alpha: str, beta: str) -> bool:
    """Return whether ``alpha`` is a suffix of ``beta``."""
    return beta.endswith(alpha)


def is_strict_suffix(alpha: str, beta: str) -> bool:
    """Return whether ``alpha`` is a suffix of ``beta`` with ``alpha != beta``."""
    return beta.endswith(alpha) and alpha != beta


def is_infix(alpha: str, beta: str) -> bool:
    """Return whether ``alpha`` is an infix (contiguous factor) of ``beta``."""
    return alpha in beta


def is_strict_infix(alpha: str, beta: str) -> bool:
    """Return whether ``alpha`` is a *strict* infix of ``beta``.

    Following the paper, ``alpha`` is a strict infix of ``beta`` when
    ``beta = delta + alpha + gamma`` with ``delta + gamma`` non-empty, i.e.
    ``alpha`` occurs in ``beta`` and ``alpha != beta``.
    """
    return alpha != beta and alpha in beta


def infixes(word: str) -> set[str]:
    """Return the set of all infixes of ``word`` (including ``word`` and epsilon)."""
    result = {EPSILON}
    length = len(word)
    for start in range(length):
        for end in range(start + 1, length + 1):
            result.add(word[start:end])
    return result


def strict_infixes(word: str) -> set[str]:
    """Return the set of all strict infixes of ``word``."""
    result = infixes(word)
    result.discard(word)
    return result


def prefixes(word: str) -> list[str]:
    """Return all prefixes of ``word`` from the empty word to ``word`` itself."""
    return [word[:index] for index in range(len(word) + 1)]


def suffixes(word: str) -> list[str]:
    """Return all suffixes of ``word`` from ``word`` itself down to the empty word."""
    return [word[index:] for index in range(len(word) + 1)]


def mirror(word: str) -> str:
    """Return the mirror (reversal) of ``word``."""
    return word[::-1]


def mirror_language(words: Iterable[str]) -> frozenset[str]:
    """Return the mirror of a finite language given as an iterable of words."""
    return frozenset(mirror(word) for word in words)


def has_repeated_letter(word: str) -> bool:
    """Return whether ``word`` contains some letter at least twice.

    A word ``alpha`` has a repeated letter when ``alpha = beta + a + gamma + a + delta``
    for some letter ``a`` (Section 6 of the paper).
    """
    return len(set(word)) < len(word)


def repeated_letter_decompositions(word: str) -> Iterator[tuple[str, str, str, str]]:
    """Yield all decompositions ``(beta, a, gamma, delta)`` with ``word = beta a gamma a delta``.

    Each yielded tuple witnesses one repeated occurrence of the letter ``a``.
    """
    for first in range(len(word)):
        for second in range(first + 1, len(word)):
            if word[first] == word[second]:
                yield (
                    word[:first],
                    word[first],
                    word[first + 1 : second],
                    word[second + 1 :],
                )


def maximal_gap_words(words: Iterable[str]) -> list[tuple[str, str, str, str, str]]:
    """Return the maximal-gap decompositions of a finite language (Definition 6.4).

    A decomposition is a tuple ``(alpha, beta, a, gamma, delta)`` with
    ``alpha = beta a gamma a delta``.  Among all decompositions of all words with
    a repeated letter, first the gap ``|gamma|`` is maximised, then the total
    length ``|alpha|`` is maximised.  All decompositions attaining the optimum
    are returned (the paper picks an arbitrary one).
    """
    best: list[tuple[str, str, str, str, str]] = []
    best_key: tuple[int, int] | None = None
    for word in words:
        for beta, letter, gamma, delta in repeated_letter_decompositions(word):
            key = (len(gamma), len(word))
            if best_key is None or key > best_key:
                best_key = key
                best = [(word, beta, letter, gamma, delta)]
            elif key == best_key:
                best.append((word, beta, letter, gamma, delta))
    return best


def concatenate_languages(left: Iterable[str], right: Iterable[str]) -> frozenset[str]:
    """Return the concatenation ``{alpha + beta}`` of two finite languages."""
    left_words = list(left)
    right_words = list(right)
    return frozenset(alpha + beta for alpha in left_words for beta in right_words)


def words_up_to_length(alphabet: Iterable[str], max_length: int) -> Iterator[str]:
    """Yield every word over ``alphabet`` of length at most ``max_length``.

    Words are yielded in order of increasing length, then lexicographically.
    """
    letters = sorted(set(alphabet))
    current = [EPSILON]
    yield EPSILON
    for _ in range(max_length):
        nxt = [word + letter for word in current for letter in letters]
        yield from nxt
        current = nxt
