"""Infix-free sublanguages ``IF(L)`` (Section 2 and Appendix B of the paper).

For a language ``L``, ``IF(L)`` keeps exactly the words of ``L`` that have no
strict infix in ``L``.  The Boolean RPQs of ``L`` and ``IF(L)`` are the same
query, so all complexity results are stated on ``IF(L)``.
"""

from __future__ import annotations

from ..exceptions import LanguageError
from . import operations
from .automata import EpsilonNFA
from .core import Language
from .words import is_strict_infix


def infix_free_words(words: frozenset[str] | set[str]) -> frozenset[str]:
    """Return ``IF(L)`` for a finite language given as an explicit word set."""
    return frozenset(
        word
        for word in words
        if not any(is_strict_infix(other, word) for other in words)
    )


def _padded_automaton(language: Language, left_nonempty: bool, right_nonempty: bool) -> EpsilonNFA:
    """Return an automaton for ``Sigma^x . L . Sigma^y``.

    ``x`` is ``+`` when ``left_nonempty`` else ``*`` and similarly for ``y``.
    """
    alphabet = language.alphabet
    if not alphabet:
        raise LanguageError("cannot pad a language over an empty alphabet")

    def sigma_many(required: bool, tag: str) -> EpsilonNFA:
        if required:
            states = [f"{tag}0", f"{tag}1"]
            transitions = [(f"{tag}0", letter, f"{tag}1") for letter in alphabet]
            transitions += [(f"{tag}1", letter, f"{tag}1") for letter in alphabet]
            return EpsilonNFA.build(states, [f"{tag}0"], [f"{tag}1"], transitions, alphabet)
        states = [f"{tag}0"]
        transitions = [(f"{tag}0", letter, f"{tag}0") for letter in alphabet]
        return EpsilonNFA.build(states, [f"{tag}0"], [f"{tag}0"], transitions, alphabet)

    left = sigma_many(left_nonempty, "l")
    right = sigma_many(right_nonempty, "r")
    middle = language.automaton
    return operations.concatenation(operations.concatenation(left, middle), right)


def infix_free_sublanguage(language: Language) -> Language:
    """Return ``IF(L)`` as a :class:`Language`.

    For finite languages the computation is done directly on the word set.  For
    infinite regular languages it uses the identity (Appendix B)::

        IF(L) = L \\ (Sigma+ L Sigma*  U  Sigma* L Sigma+)

    which may incur the usual determinization blow-up; the languages studied in
    the paper are small so this is not a concern in practice.
    """
    if language.is_finite():
        kept = infix_free_words(language.words())
        return Language.from_words(kept, alphabet=language.alphabet)
    padded_left = _padded_automaton(language, True, False)
    padded_right = _padded_automaton(language, False, True)
    removed = operations.union(padded_left, padded_right)
    result = operations.difference(language.automaton, removed).trim()
    name = f"IF({language.name})" if language.name else None
    return Language(result.with_alphabet(language.alphabet), name=name)


def is_infix_free(language: Language) -> bool:
    """Return whether ``L = IF(L)``."""
    if language.is_finite():
        words = language.words()
        return infix_free_words(words) == words
    return infix_free_sublanguage(language).equivalent_to(language)


def strict_infix_in_language(word: str, language: Language) -> str | None:
    """Return some strict infix of ``word`` belonging to ``language``, or ``None``."""
    length = len(word)
    for size in range(length):
        for start in range(length - size + 1):
            candidate = word[start : start + size]
            if candidate == word:
                continue
            if language.contains(candidate):
                return candidate
    return None
