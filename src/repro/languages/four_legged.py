"""Four-legged languages (Section 5 of the paper).

A language is *four-legged* (Definition 5.1) when it is infix-free and there are
a letter ``x`` (the *body*) and four non-empty words ``alpha, beta, gamma,
delta`` (the *legs*) with ``alpha x beta`` and ``gamma x delta`` in the language
but ``alpha x delta`` not in the language.  Theorem 5.3 shows that resilience is
NP-hard for every four-legged language.

This module provides:

* exact witness search for arbitrary regular languages via the (complete) DFA,
* the stabilization of legs of Lemma 5.5,
* the construction of a four-legged witness from a counterexample to
  star-freeness (Lemma 5.6).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..exceptions import LanguageError
from . import operations, star_free
from .automata import EpsilonNFA, State
from .core import Language


@dataclass(frozen=True)
class FourLeggedWitness:
    """A witness that a language is four-legged (Definition 5.1).

    ``alpha * body * beta`` and ``gamma * body * delta`` are in the language but
    the cross-product word ``alpha * body * delta`` is not.
    """

    body: str
    alpha: str
    beta: str
    gamma: str
    delta: str

    @property
    def word_one(self) -> str:
        return self.alpha + self.body + self.beta

    @property
    def word_two(self) -> str:
        return self.gamma + self.body + self.delta

    @property
    def cross_word(self) -> str:
        return self.alpha + self.body + self.delta

    def legs_nonempty(self) -> bool:
        return bool(self.alpha and self.beta and self.gamma and self.delta)

    def is_valid_for(self, language: Language) -> bool:
        """Return whether this tuple really witnesses that ``language`` is four-legged."""
        return (
            self.legs_nonempty()
            and language.contains(self.word_one)
            and language.contains(self.word_two)
            and not language.contains(self.cross_word)
        )

    def is_stable_for(self, language: Language) -> bool:
        """Return whether the legs are *stable* (Definition 5.4): no infix of the
        cross-product word belongs to the language."""
        if not self.is_valid_for(language):
            return False
        cross = self.cross_word
        for start in range(len(cross)):
            for end in range(start, len(cross) + 1):
                if language.contains(cross[start:end]):
                    return False
        return True


# --------------------------------------------------------------------------- witness search


def find_witness(language: Language) -> FourLeggedWitness | None:
    """Return a four-legged witness of the language, or ``None`` when none exists.

    The search runs on the complete minimal DFA of the language and is exact for
    every regular language (finite or infinite): for every letter ``x`` it looks
    for two states reached by non-empty words followed by ``x`` such that some
    non-empty continuation is accepting from one but not from the other.

    Note: this only searches for the *witness*; Definition 5.1 additionally
    requires the language to be infix-free, which :func:`is_four_legged` checks.
    """
    dfa = operations.complete(operations.determinize(language.automaton.trim()), language.alphabet)
    if not dfa.initial:
        return None
    (initial,) = dfa.initial
    table = {
        (source, label): target for source, label, target in dfa.letter_transitions if label is not None
    }
    letters = sorted(dfa.alphabet)
    final = set(dfa.final)

    reach_nonempty = _states_reachable_by_nonempty_words(dfa, initial)
    accept_nonempty = _nonempty_accepting_continuations(dfa)

    for body in letters:
        # Map each state p to a shortest word "alpha" (non-empty) with
        # delta(initial, alpha + body) = p.
        entry_word: dict[State, str] = {}
        for state, alpha in sorted(reach_nonempty.items(), key=lambda item: (len(item[1]), item[1])):
            target = table.get((state, body))
            if target is None:
                continue
            if target not in entry_word:
                entry_word[target] = alpha
        for p_state, alpha in entry_word.items():
            if p_state not in accept_nonempty:
                continue
            beta = accept_nonempty[p_state]
            for r_state, gamma in entry_word.items():
                if r_state not in accept_nonempty:
                    continue
                delta = _nonempty_word_accepted_by_first_not_second(dfa, table, final, r_state, p_state)
                if delta is None:
                    continue
                witness = FourLeggedWitness(body, alpha, beta, gamma, delta)
                if witness.is_valid_for(language):
                    return witness
    return None


def is_four_legged(language: Language) -> bool:
    """Return whether the language is four-legged (Definition 5.1)."""
    if not language.is_infix_free():
        return False
    return find_witness(language) is not None


def _states_reachable_by_nonempty_words(dfa: EpsilonNFA, initial: State) -> dict[State, str]:
    """Return, for each state reachable by some non-empty word, a shortest such word."""
    table: dict[State, list[tuple[str, State]]] = {}
    for source, label, target in dfa.letter_transitions:
        assert label is not None
        table.setdefault(source, []).append((label, target))
    result: dict[State, str] = {}
    queue: deque[tuple[State, str]] = deque([(initial, "")])
    seen_with_word: set[State] = set()
    while queue:
        state, word = queue.popleft()
        for label, target in sorted(table.get(state, ()), key=lambda item: item[0]):
            new_word = word + label
            if target not in result:
                result[target] = new_word
            if target not in seen_with_word:
                seen_with_word.add(target)
                queue.append((target, new_word))
    return result


def _nonempty_accepting_continuations(dfa: EpsilonNFA) -> dict[State, str]:
    """Return, for each state, a shortest non-empty word leading to a final state."""
    reverse: dict[State, list[tuple[str, State]]] = {}
    for source, label, target in dfa.letter_transitions:
        assert label is not None
        reverse.setdefault(target, []).append((label, source))
    result: dict[State, str] = {}
    queue: deque[tuple[State, str]] = deque((state, "") for state in dfa.final)
    while queue:
        state, word = queue.popleft()
        for label, predecessor in sorted(reverse.get(state, ()), key=lambda item: item[0]):
            new_word = label + word
            if predecessor not in result:
                result[predecessor] = new_word
                queue.append((predecessor, new_word))
    return result


def _nonempty_word_accepted_by_first_not_second(
    dfa: EpsilonNFA,
    table: dict[tuple[State, str], State],
    final: set[State],
    first: State,
    second: State,
) -> str | None:
    """Return a non-empty word ``w`` with ``delta(first, w)`` final and ``delta(second, w)`` not final."""
    letters = sorted(dfa.alphabet)
    start = (first, second)
    seen = {start}
    queue: deque[tuple[tuple[State, State], str]] = deque([(start, "")])
    while queue:
        (state_a, state_b), word = queue.popleft()
        for letter in letters:
            next_a = table.get((state_a, letter))
            next_b = table.get((state_b, letter))
            if next_a is None or next_b is None:  # pragma: no cover - DFA is complete
                continue
            new_word = word + letter
            if next_a in final and next_b not in final:
                return new_word
            pair = (next_a, next_b)
            if pair not in seen:
                seen.add(pair)
                queue.append((pair, new_word))
    return None


# --------------------------------------------------------------------------- stabilization (Lemma 5.5)


def stabilize_witness(language: Language, witness: FourLeggedWitness) -> FourLeggedWitness:
    """Return stable legs with the same body, following the proof of Lemma 5.5.

    The input language must be infix-free and the witness valid.
    """
    if not witness.is_valid_for(language):
        raise LanguageError("the provided witness is not valid for the language")
    if witness.is_stable_for(language):
        return witness

    alpha_p, beta_p, gamma_p, delta_p = witness.alpha, witness.beta, witness.gamma, witness.delta
    body = witness.body
    cross = witness.cross_word

    # Find a strict infix eta of cross = alpha' x delta' that belongs to L and
    # covers the middle body letter (such an infix must exist and must overlap
    # both alpha' and delta' since L is infix-free).
    middle = len(alpha_p)
    found: tuple[str, str] | None = None
    for start in range(0, middle):
        for end in range(middle + 2, len(cross) + 1):
            candidate = cross[start:end]
            if candidate == cross:
                continue
            if language.contains(candidate):
                alpha_1 = cross[start:middle]
                delta_1 = cross[middle + 1 : end]
                found = (alpha_1, delta_1)
                break
        if found:
            break
    if found is None:
        raise LanguageError(
            "could not find the strict infix required by Lemma 5.5; "
            "is the language really infix-free?"
        )
    alpha_1, delta_1 = found
    alpha_2 = alpha_p[: len(alpha_p) - len(alpha_1)]
    delta_2 = delta_p[len(delta_1) :]

    if delta_2:
        candidate = FourLeggedWitness(body, gamma_p, delta_p, alpha_1, delta_1)
    elif alpha_2:
        candidate = FourLeggedWitness(body, alpha_1, delta_1, alpha_p, beta_p)
    else:  # pragma: no cover - impossible per the proof of Lemma 5.5
        raise LanguageError("alpha_2 and delta_2 cannot both be empty")
    if not candidate.is_stable_for(language):
        raise LanguageError(
            "Lemma 5.5 stabilization produced unstable legs; is the language infix-free?"
        )
    return candidate


def find_stable_witness(language: Language) -> FourLeggedWitness | None:
    """Return a stable four-legged witness (Lemma 5.5), or ``None`` when the
    language has no four-legged witness at all."""
    witness = find_witness(language)
    if witness is None:
        return None
    return stabilize_witness(language, witness)


# --------------------------------------------------------------------------- Lemma 5.6


def witness_from_non_star_free(language: Language) -> FourLeggedWitness | None:
    """Build a four-legged witness for an infix-free non-star-free language (Lemma 5.6).

    Returns ``None`` when the language is star-free.  The construction follows
    the proof of Lemma 5.6 literally: it extracts a counterexample to
    star-freeness, pumps it along a cycle of the DFA, and assembles the legs.
    """
    counterexample = star_free.non_star_free_witness(language)
    if counterexample is None:
        return None
    rho, sigma, tau = counterexample.rho, counterexample.sigma, counterexample.tau
    exponent_k, exponent_m = counterexample.exponent_k, counterexample.exponent_m

    # Use the minimal complete DFA so that the pigeonhole bound of the
    # counterexample (computed on the same minimal DFA) applies.
    dfa = operations.minimize(language.automaton)
    (initial,) = dfa.initial
    table = {
        (source, label): target for source, label, target in dfa.letter_transitions if label is not None
    }

    def run(word: str) -> State:
        state = initial
        for letter in word:
            state = table[(state, letter)]
        return state

    # Pigeonhole: two exponents i < j <= k with the same state after rho sigma^i.
    seen: dict[State, int] = {}
    pair: tuple[int, int] | None = None
    state = run(rho)
    seen[state] = 0
    for exponent in range(1, exponent_k + 1):
        for letter in sigma:
            state = table[(state, letter)]
        if state in seen:
            pair = (seen[state], exponent)
            break
        seen[state] = exponent
    if pair is None:
        raise LanguageError("pigeonhole failed; the counterexample exponent is too small")
    omega = pair[1] - pair[0]

    word_k = rho + sigma * exponent_k + tau
    if language.contains(word_k):
        phi, psi = exponent_k, exponent_m
    else:
        phi, psi = exponent_m, exponent_k

    repeats = 1
    while phi + repeats * omega - 1 <= psi:
        repeats += 1

    body = sigma[0]
    sigma_rest = sigma[1:]
    alpha = rho + sigma * (2 * omega - 1)
    beta = sigma_rest + sigma * phi + tau
    gamma = rho + sigma * (phi + repeats * omega - 1 - psi)
    delta = sigma_rest + sigma * psi + tau
    witness = FourLeggedWitness(body, alpha, beta, gamma, delta)
    if not witness.is_valid_for(language):
        raise LanguageError("Lemma 5.6 construction produced an invalid witness")
    return witness
