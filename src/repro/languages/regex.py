"""A small regular-expression parser producing epsilon-NFAs.

The syntax matches the paper's notation:

* a letter is any single character except the reserved ones ``| * ( )`` and whitespace,
* juxtaposition denotes concatenation (``ab`` is "a then b"),
* ``|`` denotes union,
* ``*`` is the postfix Kleene star,
* parentheses group subexpressions,
* the empty word can be written ``ε`` or ``_``.

Examples from the paper: ``ax*b``, ``ab|ad|cd``, ``abc|bef``, ``b(aa)*d``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import RegexSyntaxError
from .automata import EpsilonNFA
from . import operations

RESERVED = set("|*()")
EPSILON_TOKENS = {"ε", "_"}


# --------------------------------------------------------------------------- AST


@dataclass(frozen=True)
class RegexNode:
    """Base class of regular-expression AST nodes."""


@dataclass(frozen=True)
class Epsilon(RegexNode):
    pass


@dataclass(frozen=True)
class Letter(RegexNode):
    letter: str


@dataclass(frozen=True)
class Concat(RegexNode):
    left: RegexNode
    right: RegexNode


@dataclass(frozen=True)
class Union(RegexNode):
    left: RegexNode
    right: RegexNode


@dataclass(frozen=True)
class Star(RegexNode):
    inner: RegexNode


# --------------------------------------------------------------------------- parser


class _Parser:
    """Recursive-descent parser for the regular-expression grammar.

    Grammar (lowest to highest precedence)::

        union   := concat ('|' concat)*
        concat  := starred starred*
        starred := atom '*'*
        atom    := letter | 'ε' | '_' | '(' union ')'
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def parse(self) -> RegexNode:
        node = self._union()
        if self.position != len(self.text):
            raise RegexSyntaxError(
                f"unexpected character {self.text[self.position]!r} at position {self.position}"
            )
        return node

    # -- helpers

    def _peek(self) -> str | None:
        if self.position < len(self.text):
            return self.text[self.position]
        return None

    def _advance(self) -> str:
        character = self.text[self.position]
        self.position += 1
        return character

    # -- grammar rules

    def _union(self) -> RegexNode:
        node = self._concat()
        while self._peek() == "|":
            self._advance()
            node = Union(node, self._concat())
        return node

    def _concat(self) -> RegexNode:
        parts: list[RegexNode] = []
        while True:
            character = self._peek()
            if character is None or character in "|)":
                break
            parts.append(self._starred())
        if not parts:
            return Epsilon()
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def _starred(self) -> RegexNode:
        node = self._atom()
        while self._peek() == "*":
            self._advance()
            node = Star(node)
        return node

    def _atom(self) -> RegexNode:
        character = self._peek()
        if character is None:
            raise RegexSyntaxError("unexpected end of expression")
        if character == "(":
            self._advance()
            node = self._union()
            if self._peek() != ")":
                raise RegexSyntaxError(f"missing closing parenthesis at position {self.position}")
            self._advance()
            return node
        if character == "*":
            raise RegexSyntaxError(f"misplaced '*' at position {self.position}")
        if character in RESERVED:
            raise RegexSyntaxError(f"unexpected {character!r} at position {self.position}")
        self._advance()
        if character in EPSILON_TOKENS:
            return Epsilon()
        if character.isspace():
            raise RegexSyntaxError("whitespace is not allowed in regular expressions")
        return Letter(character)


def parse_regex(text: str) -> RegexNode:
    """Parse ``text`` into a regular-expression AST."""
    return _Parser(text).parse()


# --------------------------------------------------------------------------- compilation


def _compile(node: RegexNode) -> EpsilonNFA:
    if isinstance(node, Epsilon):
        return EpsilonNFA.build(["q"], ["q"], ["q"], [])
    if isinstance(node, Letter):
        return EpsilonNFA.for_word(node.letter)
    if isinstance(node, Concat):
        return operations.concatenation(_compile(node.left), _compile(node.right))
    if isinstance(node, Union):
        return operations.union(_compile(node.left), _compile(node.right))
    if isinstance(node, Star):
        return operations.kleene_star(_compile(node.inner))
    raise RegexSyntaxError(f"unknown AST node: {node!r}")  # pragma: no cover


def regex_to_automaton(text: str) -> EpsilonNFA:
    """Compile a regular expression into an epsilon-NFA recognizing its language."""
    automaton = _compile(parse_regex(text))
    return automaton.trim().relabel()


def node_to_string(node: RegexNode) -> str:
    """Render an AST back into a regular-expression string (for debugging and reports)."""
    if isinstance(node, Epsilon):
        return "ε"
    if isinstance(node, Letter):
        return node.letter
    if isinstance(node, Star):
        inner = node_to_string(node.inner)
        if isinstance(node.inner, (Letter, Epsilon)):
            return f"{inner}*"
        return f"({inner})*"
    if isinstance(node, Concat):
        parts = []
        for child in (node.left, node.right):
            rendered = node_to_string(child)
            if isinstance(child, Union):
                rendered = f"({rendered})"
            parts.append(rendered)
        return "".join(parts)
    if isinstance(node, Union):
        return f"{node_to_string(node.left)}|{node_to_string(node.right)}"
    raise RegexSyntaxError(f"unknown AST node: {node!r}")  # pragma: no cover
