"""Finite automata: epsilon-NFAs, NFAs and DFAs (Section 2 of the paper).

The single class :class:`EpsilonNFA` represents all three formalisms.  An NFA is
an epsilon-NFA without epsilon transitions; a DFA is an NFA with exactly one
initial state and at most one outgoing transition per state and letter.  The
epsilon label is represented by ``None``.

States can be arbitrary hashable objects; :meth:`EpsilonNFA.relabel` renames
them to consecutive integers when canonical names are convenient.

Evaluation-heavy callers (the product-construction RPQ evaluator and the exact
resilience search) should not work on a raw :class:`EpsilonNFA`: every query on
an automaton would re-trim it and re-derive epsilon closures and transition
indexes.  :class:`CompiledAutomaton` performs that work once — trim, memoized
epsilon closures, letter transitions indexed by ``(state, label)`` — and
:func:`compile_automaton` caches compiled plans so equal automata share one
plan.  All compiled indexes use a deterministic sorted order, making plan-based
evaluation reproducible across processes (plain frozenset iteration is only
reproducible within one process).
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Hashable

from ..exceptions import LanguageError

State = Hashable
Label = str | None
Transition = tuple[State, Label, State]

EPSILON_LABEL: Label = None


@dataclass(frozen=True)
class EpsilonNFA:
    """An epsilon-NFA ``A = (S, I, F, Delta)``.

    Attributes:
        states: the finite set of states ``S``.
        initial: the set of initial states ``I``.
        final: the set of final states ``F``.
        transitions: the transition relation ``Delta`` as triples
            ``(source, label, target)`` where ``label`` is a letter or ``None``
            for an epsilon transition.
        alphabet: the alphabet the automaton is considered to be over.  It always
            contains every letter used by a transition but may be larger (this
            matters for complementation and for the local-language machinery).
    """

    states: frozenset[State]
    initial: frozenset[State]
    final: frozenset[State]
    transitions: frozenset[Transition]
    alphabet: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        used_letters = {label for _, label, _ in self.transitions if label is not None}
        object.__setattr__(self, "alphabet", frozenset(self.alphabet) | frozenset(used_letters))
        for source, _, target in self.transitions:
            if source not in self.states or target not in self.states:
                raise LanguageError(f"transition uses unknown state: {(source, target)}")
        if not self.initial <= self.states or not self.final <= self.states:
            raise LanguageError("initial/final states must be a subset of the states")

    # ------------------------------------------------------------------ factory

    @classmethod
    def build(
        cls,
        states: Iterable[State],
        initial: Iterable[State],
        final: Iterable[State],
        transitions: Iterable[tuple[State, Label, State]],
        alphabet: Iterable[str] = (),
    ) -> "EpsilonNFA":
        """Build an automaton from plain iterables."""
        return cls(
            states=frozenset(states),
            initial=frozenset(initial),
            final=frozenset(final),
            transitions=frozenset(tuple(t) for t in transitions),
            alphabet=frozenset(alphabet),
        )

    @classmethod
    def for_word(cls, word: str, alphabet: Iterable[str] = ()) -> "EpsilonNFA":
        """Return an automaton recognizing the single word ``word``."""
        states = list(range(len(word) + 1))
        transitions = [(index, letter, index + 1) for index, letter in enumerate(word)]
        return cls.build(states, [0], [len(word)], transitions, alphabet)

    @classmethod
    def for_finite_language(cls, words: Iterable[str], alphabet: Iterable[str] = ()) -> "EpsilonNFA":
        """Return an automaton recognizing exactly the given finite set of words."""
        word_list = sorted(set(words))
        states: list[State] = ["init"]
        initial = ["init"]
        final: list[State] = []
        transitions: list[Transition] = []
        for word_index, word in enumerate(word_list):
            previous: State = "init"
            if not word:
                final.append("init")
                continue
            for position, letter in enumerate(word):
                current: State = (word_index, position + 1)
                states.append(current)
                transitions.append((previous, letter, current))
                previous = current
            final.append(previous)
        return cls.build(states, initial, final, transitions, alphabet)

    @classmethod
    def empty_language(cls, alphabet: Iterable[str] = ()) -> "EpsilonNFA":
        """Return an automaton recognizing the empty language."""
        return cls.build(["q"], ["q"], [], [], alphabet)

    # ------------------------------------------------------------------ basic facts

    @property
    def size(self) -> int:
        """Return ``|A| = |S| + |Delta|`` as defined in the paper."""
        return len(self.states) + len(self.transitions)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def epsilon_transitions(self) -> frozenset[Transition]:
        return frozenset(t for t in self.transitions if t[1] is None)

    @property
    def letter_transitions(self) -> frozenset[Transition]:
        return frozenset(t for t in self.transitions if t[1] is not None)

    def is_nfa(self) -> bool:
        """Return whether the automaton has no epsilon transitions."""
        return not self.epsilon_transitions

    def is_dfa(self) -> bool:
        """Return whether the automaton is deterministic.

        A DFA has no epsilon transitions, exactly one initial state, and at most
        one transition per state and letter.
        """
        if self.epsilon_transitions or len(self.initial) != 1:
            return False
        seen: set[tuple[State, str]] = set()
        for source, label, _ in self.letter_transitions:
            key = (source, label)
            if key in seen:
                return False
            seen.add(key)
        return True

    def is_complete_dfa(self) -> bool:
        """Return whether the automaton is a DFA with a transition for every letter."""
        if not self.is_dfa():
            return False
        outgoing = {(source, label) for source, label, _ in self.letter_transitions}
        return all((state, letter) in outgoing for state in self.states for letter in self.alphabet)

    def is_local_dfa(self) -> bool:
        """Return whether the automaton is a *local DFA* (Definition 3.1).

        A DFA is local when, for every letter ``a``, all ``a``-transitions share
        the same target state.
        """
        if not self.is_dfa():
            return False
        target_by_letter: dict[str, State] = {}
        for _, label, target in self.letter_transitions:
            assert label is not None
            if label in target_by_letter and target_by_letter[label] != target:
                return False
            target_by_letter[label] = target
        return True

    def is_read_once(self) -> bool:
        """Return whether the automaton is an RO-epsilon-NFA (Definition 3.15).

        Read-once automata have at most one transition per letter (epsilon
        transitions are unrestricted).
        """
        seen: set[str] = set()
        for _, label, _ in self.letter_transitions:
            assert label is not None
            if label in seen:
                return False
            seen.add(label)
        return True

    # ------------------------------------------------------------------ adjacency helpers

    def transitions_by_source(self) -> dict[State, list[Transition]]:
        result: dict[State, list[Transition]] = defaultdict(list)
        for transition in self.transitions:
            result[transition[0]].append(transition)
        return dict(result)

    def transitions_by_target(self) -> dict[State, list[Transition]]:
        result: dict[State, list[Transition]] = defaultdict(list)
        for transition in self.transitions:
            result[transition[2]].append(transition)
        return dict(result)

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """Return the set of states reachable from ``states`` via epsilon transitions."""
        adjacency: dict[State, list[State]] = defaultdict(list)
        for source, label, target in self.transitions:
            if label is None:
                adjacency[source].append(target)
        closure = set(states)
        queue = deque(closure)
        while queue:
            state = queue.popleft()
            for target in adjacency.get(state, ()):
                if target not in closure:
                    closure.add(target)
                    queue.append(target)
        return frozenset(closure)

    # ------------------------------------------------------------------ membership

    def accepts(self, word: str) -> bool:
        """Return whether ``word`` is in the language of the automaton."""
        step: dict[tuple[State, str], set[State]] = defaultdict(set)
        for source, label, target in self.transitions:
            if label is not None:
                step[(source, label)].add(target)
        current = self.epsilon_closure(self.initial)
        for letter in word:
            successors: set[State] = set()
            for state in current:
                successors |= step.get((state, letter), set())
            if not successors:
                return False
            current = self.epsilon_closure(successors)
        return bool(current & self.final)

    def __contains__(self, word: str) -> bool:
        return self.accepts(word)

    # ------------------------------------------------------------------ structural transformations

    def trim(self) -> "EpsilonNFA":
        """Return the trimmed automaton keeping only useful states (Definition C.3)."""
        forward: dict[State, list[State]] = defaultdict(list)
        backward: dict[State, list[State]] = defaultdict(list)
        for source, _, target in self.transitions:
            forward[source].append(target)
            backward[target].append(source)

        def reach(seeds: Iterable[State], adjacency: Mapping[State, list[State]]) -> set[State]:
            seen = set(seeds)
            queue = deque(seen)
            while queue:
                state = queue.popleft()
                for nxt in adjacency.get(state, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
            return seen

        accessible = reach(self.initial, forward)
        co_accessible = reach(self.final, backward)
        useful = accessible & co_accessible
        if not useful:
            return EpsilonNFA.empty_language(self.alphabet)
        transitions = [t for t in self.transitions if t[0] in useful and t[2] in useful]
        return EpsilonNFA.build(
            useful, self.initial & useful, self.final & useful, transitions, self.alphabet
        )

    def remove_epsilon(self) -> "EpsilonNFA":
        """Return an equivalent NFA without epsilon transitions."""
        closures = {state: self.epsilon_closure([state]) for state in self.states}
        new_final = {
            state for state in self.states if closures[state] & self.final
        }
        step: dict[State, list[tuple[str, State]]] = defaultdict(list)
        for source, label, target in self.transitions:
            if label is not None:
                step[source].append((label, target))
        new_transitions: set[Transition] = set()
        for state in self.states:
            for intermediate in closures[state]:
                for label, target in step.get(intermediate, ()):
                    new_transitions.add((state, label, target))
        return EpsilonNFA.build(self.states, self.initial, new_final, new_transitions, self.alphabet)

    def reverse(self) -> "EpsilonNFA":
        """Return the automaton of the mirror language ``L(A)^R`` (Proposition 6.3)."""
        transitions = [(target, label, source) for source, label, target in self.transitions]
        return EpsilonNFA.build(self.states, self.final, self.initial, transitions, self.alphabet)

    def with_alphabet(self, alphabet: Iterable[str]) -> "EpsilonNFA":
        """Return the same automaton considered over a (larger) alphabet."""
        return EpsilonNFA.build(
            self.states, self.initial, self.final, self.transitions, frozenset(alphabet) | self.alphabet
        )

    def relabel(self) -> "EpsilonNFA":
        """Return an isomorphic automaton whose states are ``0..n-1``.

        The renaming is deterministic (BFS order from the initial states, then
        any remaining states in sorted-by-repr order) so that relabelling is
        reproducible across runs.
        """
        order: list[State] = []
        seen: set[State] = set()
        queue = deque(sorted(self.initial, key=repr))
        forward = self.transitions_by_source()
        while queue:
            state = queue.popleft()
            if state in seen:
                continue
            seen.add(state)
            order.append(state)
            for _, _, target in sorted(forward.get(state, ()), key=repr):
                if target not in seen:
                    queue.append(target)
        for state in sorted(self.states - seen, key=repr):
            order.append(state)
        mapping = {state: index for index, state in enumerate(order)}
        return EpsilonNFA.build(
            mapping.values(),
            (mapping[s] for s in self.initial),
            (mapping[s] for s in self.final),
            ((mapping[s], label, mapping[t]) for s, label, t in self.transitions),
            self.alphabet,
        )

    # ------------------------------------------------------------------ convenience delegations

    def determinize(self) -> "EpsilonNFA":
        from . import operations

        return operations.determinize(self)

    def minimize(self) -> "EpsilonNFA":
        from . import operations

        return operations.minimize(self)

    def complement(self, alphabet: Iterable[str] | None = None) -> "EpsilonNFA":
        from . import operations

        return operations.complement(self, alphabet)

    def is_empty(self) -> bool:
        from . import operations

        return operations.is_empty(self)

    def is_finite(self) -> bool:
        from . import operations

        return operations.is_finite(self)

    def words(self, limit: int | None = None) -> frozenset[str]:
        from . import operations

        return operations.enumerate_finite_language(self, limit=limit)

    def equivalent_to(self, other: "EpsilonNFA") -> bool:
        from . import operations

        return operations.equivalent(self, other)

    # ------------------------------------------------------------------ misc

    def describe(self) -> str:
        """Return a short human-readable description of the automaton."""
        kind = "DFA" if self.is_dfa() else ("NFA" if self.is_nfa() else "eps-NFA")
        extras = []
        if self.is_read_once():
            extras.append("read-once")
        if self.is_local_dfa():
            extras.append("local")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{kind}{suffix}: {len(self.states)} states, {len(self.transitions)} transitions, "
            f"alphabet {{{', '.join(sorted(self.alphabet))}}}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EpsilonNFA<{self.describe()}>"


def dfa_transition_map(automaton: EpsilonNFA) -> dict[tuple[State, str], State]:
    """Return the transition function of a DFA as a dictionary.

    Raises:
        LanguageError: if the automaton is not deterministic.
    """
    if not automaton.is_dfa():
        raise LanguageError("expected a DFA")
    return {
        (source, label): target
        for source, label, target in automaton.letter_transitions
        if label is not None
    }


def dfa_run(automaton: EpsilonNFA, word: str) -> list[State] | None:
    """Return the run of a DFA on ``word`` as a list of states, or ``None`` if it gets stuck."""
    table = dfa_transition_map(automaton)
    (state,) = automaton.initial
    run = [state]
    for letter in word:
        nxt = table.get((state, letter))
        if nxt is None:
            return None
        state = nxt
        run.append(state)
    return run


class CompiledAutomaton:
    """A query plan compiled once from an :class:`EpsilonNFA`.

    The plan contains everything the product-construction evaluator needs, in
    deterministic (sorted-by-repr) order:

    * ``trimmed``: the trimmed automaton (useful states only, Definition C.3);
    * ``closures``: the epsilon closure of every trimmed state, memoized;
    * ``steps``: for every ``(state, label)`` pair, the tuple of epsilon-closed
      target states reachable by reading ``label`` in ``state`` (deduplicated,
      first occurrence wins);
    * ``transitions_by_label``: the letter transitions of the *original*
      automaton grouped by label (used by the flow-network constructions, which
      must see transitions that trimming would discard).

    Instances are immutable after construction; obtain them through
    :func:`compile_automaton` so that equal automata share one plan.
    """

    __slots__ = (
        "automaton",
        "trimmed",
        "closures",
        "initial_closure",
        "final",
        "steps",
        "transitions_by_label",
        "is_empty",
        "accepts_empty",
    )

    def __init__(self, automaton: EpsilonNFA) -> None:
        self.automaton = automaton
        trimmed = automaton.trim()
        self.trimmed = trimmed
        self.closures: dict[State, tuple[State, ...]] = {
            state: tuple(sorted(trimmed.epsilon_closure([state]), key=repr))
            for state in trimmed.states
        }
        self.initial_closure: tuple[State, ...] = tuple(
            sorted(trimmed.epsilon_closure(trimmed.initial), key=repr)
        )
        self.final: frozenset[State] = trimmed.final
        self.is_empty = not trimmed.final
        self.accepts_empty = bool(set(self.initial_closure) & trimmed.final)

        # (state, label) -> epsilon-closed successor states, deduplicated.
        steps: dict[tuple[State, str], list[State]] = {}
        for source, label, target in sorted(trimmed.letter_transitions, key=repr):
            assert label is not None
            bucket = steps.setdefault((source, label), [])
            for closed in self.closures[target]:
                if closed not in bucket:
                    bucket.append(closed)
        self.steps: dict[tuple[State, str], tuple[State, ...]] = {
            key: tuple(targets) for key, targets in steps.items()
        }

        by_label: dict[str, list[tuple[State, State]]] = {}
        for source, label, target in sorted(automaton.letter_transitions, key=repr):
            assert label is not None
            by_label.setdefault(label, []).append((source, target))
        self.transitions_by_label: dict[str, tuple[tuple[State, State], ...]] = {
            label: tuple(pairs) for label, pairs in by_label.items()
        }

    def closure(self, state: State) -> tuple[State, ...]:
        """Return the memoized epsilon closure of a trimmed state."""
        return self.closures[state]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledAutomaton<{self.trimmed.describe()}>"


@lru_cache(maxsize=512)
def compile_automaton(automaton: EpsilonNFA) -> CompiledAutomaton:
    """Return the (cached) compiled plan of an automaton.

    Automata are frozen dataclasses, so equal automata — for example the ones
    produced by compiling the same regular expression twice — hash equal and
    share a single compiled plan.
    """
    return CompiledAutomaton(automaton)


def make_any_state_hashable(value: Any) -> Hashable:
    """Return a hashable stand-in for ``value`` (sets become frozensets, lists tuples)."""
    if isinstance(value, (set, frozenset)):
        return frozenset(make_any_state_hashable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return tuple(make_any_state_hashable(item) for item in value)
    return value
