"""Read-once epsilon-NFAs (Definition 3.15 and Lemma 3.17 of the paper).

An RO-epsilon-NFA has at most one transition per letter; epsilon transitions are
unrestricted.  RO-epsilon-NFAs recognize exactly the local languages, and they
are the automaton format used by the flow reduction of Theorem 3.13 (because
they give a one-to-one correspondence between database facts and finite-capacity
edges of the flow network).
"""

from __future__ import annotations

from ..exceptions import NotLocalError
from . import local
from .automata import EpsilonNFA, State
from .core import Language


def local_dfa_to_read_once(automaton: EpsilonNFA) -> EpsilonNFA:
    """Convert a local DFA into an equivalent RO-epsilon-NFA (Lemma 3.17, first direction).

    For each letter ``a`` with transitions in the DFA, all ``a``-transitions
    share a target ``s_a``; we create a fresh state ``s'_a``, a single
    ``a``-transition ``s'_a -> s_a``, and epsilon transitions into ``s'_a`` from
    every state that had an outgoing ``a``-transition.
    """
    if not automaton.is_local_dfa():
        raise NotLocalError("expected a local DFA")
    target_of_letter: dict[str, State] = {}
    sources_of_letter: dict[str, set[State]] = {}
    for source, label, target in automaton.letter_transitions:
        assert label is not None
        target_of_letter[label] = target
        sources_of_letter.setdefault(label, set()).add(source)

    states: set[State] = set(automaton.states)
    transitions: set[tuple[State, str | None, State]] = set(automaton.epsilon_transitions)
    for letter, target in target_of_letter.items():
        entry: State = ("enter", letter)
        states.add(entry)
        transitions.add((entry, letter, target))
        for source in sources_of_letter[letter]:
            transitions.add((source, None, entry))
    return EpsilonNFA.build(
        states, automaton.initial, automaton.final, transitions, automaton.alphabet
    )


def read_once_to_local_dfa(automaton: EpsilonNFA) -> EpsilonNFA:
    """Convert an RO-epsilon-NFA into an equivalent local DFA (Lemma 3.17, second direction)."""
    if not automaton.is_read_once():
        raise NotLocalError("expected a read-once epsilon-NFA")
    without_epsilon = automaton.remove_epsilon()
    result = without_epsilon.determinize()
    return result


def _memoized_read_once(language: Language) -> EpsilonNFA:
    """The RO-epsilon-NFA of the local overapproximation, memoized on the instance.

    The construction is deterministic, so repeated flow queries through a
    shared language — the session caches resolve duplicates and equivalent
    queries to one instance — reuse one automaton object, which in turn keeps
    the per-database compiled product-graph cache hot.
    """
    memoized = getattr(language, "_read_once_automaton", None)
    if memoized is None:
        memoized = local_dfa_to_read_once(local.local_overapproximation(language))
        language._read_once_automaton = memoized
    return memoized


def read_once_automaton(language: Language) -> EpsilonNFA:
    """Return an RO-epsilon-NFA recognizing the (local) language (Lemma 3.17).

    Raises:
        NotLocalError: if the language is not local.
    """
    if not local.is_local(language):
        raise NotLocalError(f"language {language} is not local")
    return _memoized_read_once(language)


def read_once_automaton_unchecked(language: Language) -> EpsilonNFA:
    """Return the RO-epsilon-NFA of the local overapproximation without checking locality.

    This follows the combined-complexity statement of Theorem 3.13: the caller
    promises that the language is local; if it is not, the returned automaton
    recognizes the local overapproximation instead.  Shares
    :func:`read_once_automaton`'s memo (for a genuinely local language the
    two constructions coincide, and the unchecked variant's callers promise
    locality).
    """
    return _memoized_read_once(language)
