"""One-dangling languages (Definition 7.8 of the paper).

A *one-dangling language* can be written as ``L ∪ {xy}`` where ``L`` is a local
language over some alphabet ``Sigma`` and ``x, y`` are distinct letters with at
least one of them outside ``Sigma``.  Proposition 7.9 shows that resilience is
tractable for one-dangling languages via a rewriting to the local case.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import local, operations
from .automata import EpsilonNFA
from .core import Language


@dataclass(frozen=True)
class OneDanglingDecomposition:
    """A decomposition ``full = local_part ∪ {dangling_word}`` per Definition 7.8.

    Attributes:
        local_part: the local language ``L``.
        dangling_word: the two-letter word ``xy``.
        local_alphabet: the letters actually used by ``L``.
        fresh_letters: the letters of ``xy`` that do not occur in ``L`` (at least one).
    """

    local_part: Language
    dangling_word: str
    local_alphabet: frozenset[str]
    fresh_letters: frozenset[str]

    @property
    def x(self) -> str:
        return self.dangling_word[0]

    @property
    def y(self) -> str:
        return self.dangling_word[1]


def _used_letters(language: Language) -> frozenset[str]:
    """Return the letters that actually occur in some word of the language."""
    trimmed = language.automaton.trim()
    return frozenset(label for _, label, _ in trimmed.letter_transitions if label is not None)


def one_dangling_decomposition(language: Language) -> OneDanglingDecomposition | None:
    """Return a one-dangling decomposition of the language, or ``None`` if there is none.

    The search tries every two-letter word ``xy`` of the language with ``x != y``,
    removes it, and checks that the rest is local and does not use at least one
    of ``x`` and ``y``.
    """
    two_letter_words = sorted(
        word for word in language.words_up_to_length(2) if len(word) == 2 and word[0] != word[1]
    )
    for word in two_letter_words:
        word_automaton = EpsilonNFA.for_word(word, language.alphabet)
        rest_automaton = operations.difference(language.automaton, word_automaton).trim()
        rest = Language(
            rest_automaton.with_alphabet(language.alphabet),
            name=f"({language.name}) \\ {word}" if language.name else None,
        )
        used = _used_letters(rest)
        fresh = frozenset(letter for letter in word if letter not in used)
        if not fresh:
            continue
        if not local.is_local(rest):
            continue
        return OneDanglingDecomposition(
            local_part=rest,
            dangling_word=word,
            local_alphabet=used,
            fresh_letters=fresh,
        )
    return None


def is_one_dangling(language: Language) -> bool:
    """Return whether the language is one-dangling (Definition 7.8)."""
    return one_dangling_decomposition(language) is not None
