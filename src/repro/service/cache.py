"""Session-level language cache shared across queries of a serving session.

The implementation lives in :class:`repro.resilience.engine.LanguageCache`,
next to the dispatcher whose analyses it memoizes — the core engine uses it
for :func:`~repro.resilience.engine.resilience_many`, so it cannot depend on
this higher-level package.  This module re-exports it as part of the service
API; see the class docstring for what is cached and why.
"""

from __future__ import annotations

from ..resilience.engine import LanguageCache

__all__ = ["LanguageCache"]
