"""Session and cross-process caches of the serving layer.

The implementations live next to the dispatcher whose analyses they memoize —
:class:`repro.resilience.engine.LanguageCache` (with its
:class:`~repro.resilience.engine.CacheStats`) and
:class:`repro.resilience.store.AnalysisStore` — because the core engine uses
them for :func:`~repro.resilience.engine.resilience_many` and cannot depend on
this higher-level package.  This module re-exports them as part of the service
API; see the class docstrings for the full cache hierarchy (instance memo →
session string cache → canonical cross-instance cache → on-disk store) and
``src/repro/service/README.md`` for when each layer hits.
"""

from __future__ import annotations

from ..resilience.engine import CacheStats, LanguageCache
from ..resilience.store import (
    AnalysisStore,
    ResultStore,
    StoreBackend,
    StoredAnalysis,
    StoreStats,
    code_version_salt,
    result_code_salt,
)

__all__ = [
    "AnalysisStore",
    "CacheStats",
    "LanguageCache",
    "ResultStore",
    "StoreBackend",
    "StoreStats",
    "StoredAnalysis",
    "code_version_salt",
    "result_code_salt",
]
