"""Cooperative per-workload cancellation for the serving runtime.

A :class:`CancellationToken` travels *with* a workload through the serving
stack — admission front-end, exchange, node, warm server, worker chunk loop —
and lets any layer stop the workload's remaining queries without tearing down
shared infrastructure.  Cancellation is cooperative and never loses outcomes:
a query skipped because its token fired surfaces as a structured
:class:`~repro.service.outcome.QueryOutcome` (``admission-rejected`` for a
deadline, ``error`` for an explicit cancel/abandonment), so the
one-outcome-per-query contract holds for cancelled workloads too.

Two trigger modes:

* **explicit** — :meth:`CancellationToken.cancel` flips the token from any
  thread (the async front-end cancels on consumer abandonment);
* **deadline** — a token built with ``deadline_at`` (a ``time.monotonic()``
  instant) expires by itself; every check point compares against the clock,
  so a workload whose deadline passes *mid-execution* stops between queries
  instead of running stale to completion.

Check points, outermost to innermost:

* the serial execution loop and the chunk-dispatch loop in
  :class:`~repro.service.server.ResilienceServer` consult the token between
  queries / before each dispatch (parent process);
* the **worker chunk loop** (:func:`~repro.service.serve._worker_run_many`)
  checks between the queries of an in-flight chunk, through a shared-memory
  flag byte the parent binds per token (fork platforms only — the flag array
  is inherited at pool fork; on other start methods the parent-side checks
  still apply) plus the deadline instant shipped with the chunk
  (``CLOCK_MONOTONIC`` is system-wide on Linux, so parent and worker agree).
"""

from __future__ import annotations

import multiprocessing
import time

from .outcome import ADMISSION_REJECTED, ERROR

#: Flag-byte codes a bound token writes into the shared cancel array.  Workers
#: cannot see the parent's reason string, so the code selects both the outcome
#: status and a generic reason.
FLAG_LIVE = 0
FLAG_CANCELLED = 1
FLAG_DEADLINE = 2

_STATUS_TO_FLAG = {ERROR: FLAG_CANCELLED, ADMISSION_REJECTED: FLAG_DEADLINE}

#: Worker-side decode of a tripped flag byte: ``code -> (status, reason)``.
FLAG_STATES = {
    FLAG_CANCELLED: (ERROR, "WorkloadCancelled: workload cancelled during execution"),
    FLAG_DEADLINE: (
        ADMISSION_REJECTED,
        "DeadlineExceeded: workload deadline passed during execution",
    ),
}

#: The (status, reason) of a deadline observed directly against the clock.
DEADLINE_STATE = (
    ADMISSION_REJECTED,
    "DeadlineExceeded: workload deadline passed during execution",
)


def make_cancel_flags(slots: int):
    """A shared cancel-flag array, or ``None`` where it cannot work.

    The array is plain shared memory (no lock — single-byte writes are atomic)
    inherited by worker processes at pool fork, which is exactly why it only
    exists under the ``fork`` start method: spawned workers could not inherit
    it, and pickling it into the pool initializer is not supported.
    """
    try:
        if multiprocessing.get_start_method() != "fork":
            return None
        return multiprocessing.RawArray("b", slots)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        return None


class CancellationToken:
    """One workload's cooperative cancellation state.

    Thread-safe in the ways the runtime needs: :meth:`cancel` may race
    :meth:`state` checks and the server's slot binding from different threads
    — the worst outcome of any interleaving is one extra query executing,
    never a lost or duplicated outcome.
    """

    __slots__ = ("deadline_at", "_status", "_reason", "_flags", "_slot")

    def __init__(self, *, deadline_at: float | None = None) -> None:
        self.deadline_at = deadline_at
        self._status: str | None = None
        self._reason: str | None = None
        self._flags = None
        self._slot: int | None = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called (deadline expiry not included —
        deadlines are evaluated lazily at each check point via :meth:`state`)."""
        return self._status is not None

    def cancel(self, reason: str, *, status: str = ERROR) -> None:
        """Trip the token: later check points skip execution.

        ``status`` selects the structured outcome of skipped queries —
        :data:`~repro.service.outcome.ERROR` (default) or
        :data:`~repro.service.outcome.ADMISSION_REJECTED`.
        """
        self._status = status
        self._reason = reason
        # Propagate into the shared flag byte if a server bound one, waking
        # the in-flight worker chunk's between-queries check.
        flags, slot = self._flags, self._slot
        if flags is not None and slot is not None:
            flags[slot] = _STATUS_TO_FLAG.get(status, FLAG_CANCELLED)

    def state(self, now: float | None = None) -> tuple[str, str] | None:
        """``(status, reason)`` if the token has fired, else ``None``.

        The parent-side check point: explicit cancellation wins over a
        deadline that also expired (its reason is the more specific one).
        """
        if self._status is not None:
            return (self._status, self._reason or "WorkloadCancelled")
        if self.deadline_at is not None:
            if (time.monotonic() if now is None else now) > self.deadline_at:
                return DEADLINE_STATE
        return None

    # ------------------------------------------------------------- slot binding
    # Server-internal: ResilienceServer binds each distinct token of a serve
    # call to one byte of its shared flag array for the call's duration.

    def bind_flag(self, flags, slot: int) -> None:
        self._flags = flags
        self._slot = slot
        # cancel() may have raced the bind: make the flag reflect it.
        if self._status is not None:
            flags[slot] = _STATUS_TO_FLAG.get(self._status, FLAG_CANCELLED)

    def unbind_flag(self) -> None:
        self._flags = None
        self._slot = None


def cancel_lookup(cancel):
    """Normalize a ``cancel=`` argument into an ``index -> token`` lookup.

    Accepts ``None`` (no lookup), one :class:`CancellationToken` (applies to
    every query), or a mapping of workload index to token (the merged-round
    shape the async front-end uses, where each entry of a round keeps its own
    token).  Returns ``None`` or a callable.
    """
    if cancel is None:
        return None
    if isinstance(cancel, CancellationToken):
        return lambda index: cancel
    getter = cancel.get
    return lambda index: getter(index)
