"""Workload model for the resilience serving layer.

A workload is an ordered fleet of :class:`QuerySpec` items, each pairing a
query with optional per-query execution policy: a forced method, forced
semantics, and a node and/or wall-clock budget for the exact fallback.  Specs
are plain frozen dataclasses so they pickle cheaply across process boundaries.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..languages.core import Language
from ..rpq.query import RPQ

QueryLike = Language | RPQ | str


@dataclass(frozen=True)
class QuerySpec:
    """One query of a workload, with its per-query execution policy.

    Attributes:
        query: the query, as a :class:`Language`, an :class:`RPQ` or a regular
            expression string (strings are parsed once per distinct expression
            through the session's :class:`~repro.service.cache.LanguageCache`).
        method: force a specific algorithm, as in
            :func:`~repro.resilience.engine.resilience`; ``None`` lets the
            scheduler pick the fastest sound algorithm.
        unsafe: skip the applicability check of a forced ``method``.
        semantics: force ``"set"`` or ``"bag"`` reporting.
        max_nodes: node budget for the exact fallback; an overrun becomes a
            ``"budget-exceeded"`` outcome instead of an exception.
        max_seconds: wall-clock budget for the exact fallback (machine
            dependent — see the package docstring for the reproducibility
            caveat).
    """

    query: QueryLike
    method: str | None = None
    unsafe: bool = False
    semantics: str | None = None
    max_nodes: int | None = None
    max_seconds: float | None = None

    def display_name(self) -> str:
        """A human-readable label for the query (used in outcomes and errors).

        Must never raise: it runs inside the scheduler's error handler, where a
        crash would replace the original error and abort the fleet — so a
        query of an unsupported type falls back to its ``repr``.
        """
        if isinstance(self.query, str):
            return self.query
        if isinstance(self.query, RPQ):
            return self.query.name
        if isinstance(self.query, Language):
            return self.query.name or str(self.query)
        return repr(self.query)


@dataclass(frozen=True)
class Workload:
    """An ordered fleet of :class:`QuerySpec` items served against one database."""

    specs: tuple[QuerySpec, ...]

    @classmethod
    def coerce(cls, workload: "Workload | QueryLike | Iterable[QuerySpec | QueryLike]") -> "Workload":
        """Normalize user input into a :class:`Workload`.

        Accepts an existing workload, a single bare query, or any iterable
        mixing ready-made :class:`QuerySpec` items with bare queries (strings,
        languages, RPQs), which get default policy.  A bare string is one
        query, never iterated character by character.
        """
        if isinstance(workload, Workload):
            return workload
        if isinstance(workload, (str, Language, RPQ, QuerySpec)):
            workload = [workload]
        specs = tuple(
            item if isinstance(item, QuerySpec) else QuerySpec(item) for item in workload
        )
        return cls(specs)

    @classmethod
    def from_queries(
        cls,
        queries: Iterable[QueryLike],
        *,
        method: str | None = None,
        unsafe: bool = False,
        semantics: str | None = None,
        max_nodes: int | None = None,
        max_seconds: float | None = None,
    ) -> "Workload":
        """Build a workload applying the same policy to every query."""
        return cls(
            tuple(
                QuerySpec(
                    query,
                    method=method,
                    unsafe=unsafe,
                    semantics=semantics,
                    max_nodes=max_nodes,
                    max_seconds=max_seconds,
                )
                for query in queries
            )
        )

    def __iter__(self) -> Iterator[QuerySpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)
