"""Async serving front-end: admission control over an exchange of warm nodes.

:class:`AsyncResilienceServer` is the top layer of the three-layer serving
stack (front-end → exchange → nodes).  It multiplexes *concurrent* workloads
onto an :class:`~repro.service.exchange.base.Exchange` — by default a
:class:`~repro.service.exchange.local.LocalExchange` wrapping one warm
:class:`~repro.service.server.ResilienceServer`, but equally a
fingerprint-routed fleet
(:class:`~repro.service.exchange.threads.ThreadExchange`,
:class:`~repro.service.exchange.http.HttpExchange`) — behind an ``asyncio``
API:

* :meth:`~AsyncResilienceServer.submit` admits a workload into an internal
  admission queue and returns an async iterator of its
  :class:`~repro.service.outcome.QueryOutcome` objects;
* a dedicated drain thread pops admitted workloads, packs them into a
  :class:`~repro.service.exchange.base.WorkloadEnvelope` (one part per
  distinct database) and streams the exchange's merged outcomes back into
  each submitting workload's :class:`asyncio.Queue` (via
  ``loop.call_soon_threadsafe``) as they complete;
* :meth:`~AsyncResilienceServer.metrics` snapshots the whole runtime —
  fleet-aggregated cache counters and pool state, per-node
  :class:`~repro.service.exchange.base.NodeStats`, admission counters,
  per-status latency histograms — as a :class:`ServerMetrics`, and
  :meth:`~AsyncResilienceServer.metrics_endpoint` serves that snapshot as
  JSON (or Prometheus text exposition, content-negotiated) over a tiny
  stdlib HTTP endpoint for ops tooling to scrape.

Admission semantics
-------------------

Workloads are admitted into priority classes: **lower ``priority`` values are
served first**, and within one class workloads drain FIFO (by submission
order).  The drain thread serves *rounds*: each round merges the waiting
workloads of the single best (lowest) nonempty priority class into one
combined envelope and streams it through the exchange, so concurrent
same-class workloads genuinely share the serving capacity within a round
while a higher class never yields it to a lower one.  ``round_share`` caps
how many queries one workload may contribute to a round (its *concurrency
share*): a workload larger than its share is served across consecutive
rounds, keeping one huge submission from monopolizing a round against its
peers.  Shares are *weighted*: a workload's cap is
``max(1, round(round_share * weight))``, with per-class default weights via
``share_weights`` and a per-submission override — heavier clients get
proportionally more of each round, and the floor of one spec per round
guarantees no positive-weight workload starves.

Admission is bounded: when ``max_queue_depth`` workloads are already waiting,
:meth:`~AsyncResilienceServer.submit` does not block and does not raise — it
returns an iterator of structured :data:`~repro.service.outcome.ADMISSION_REJECTED`
outcomes (one per query), so back-pressure is data the caller can retry on.  A
``deadline`` (seconds) bounds the workload end to end: still unserved when it
passes, the workload is rejected outright; already executing, the deadline
travels with the workload as a cooperative
:class:`~repro.service.cancellation.CancellationToken` checked between
queries — down to the in-flight worker chunk — so the unserved tail surfaces
as ``admission-rejected`` outcomes instead of running stale to completion.

Outcome-stream contract
-----------------------

Per workload, the same contract as ``serve_iter``: the multiset of outcomes
equals the blocking :meth:`~repro.service.server.ResilienceServer.serve`
list for that workload (indices are workload-local), with no ordering
guarantee beyond it — re-sorting by ``outcome.index`` reproduces the serial
reference exactly, which the conformance harness pins for the async variants.
Outcomes are never shared or duplicated across workloads: every admitted query
yields exactly one outcome on exactly its own iterator.

A consumer that abandons its iterator mid-stream (``break``, task
cancellation, GC) marks the workload abandoned: already-queued outcomes are
dropped, its unserved queries are never dispatched (the abandonment cancels
the workload's token, stopping even an in-flight chunk between queries), and
later workloads are unaffected — pinned by the abandonment regression tests.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from bisect import bisect_left
from collections import deque
from collections.abc import AsyncIterator, Iterable, Mapping
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ReproError
from ..graphdb.database import BagGraphDatabase, GraphDatabase
from ..resilience.engine import CacheStats
from .cache import LanguageCache
from .cancellation import CancellationToken
from .exchange.base import EnvelopePart, Exchange, NodeStats, WorkloadEnvelope
from .exchange.local import LocalExchange
from .outcome import ADMISSION_REJECTED, ERROR, QueryOutcome
from .server import PoolStats, ResilienceServer
from .workload import QueryLike, QuerySpec, Workload

AnyDatabase = GraphDatabase | BagGraphDatabase

#: Upper bucket bounds (seconds) of the latency histograms; the implicit last
#: bucket is +inf.  Roughly log-spaced from 1 ms to 10 s — per-query serving
#: cost spans flow lookups (sub-ms, cache hits) to exact searches (seconds).
LATENCY_BUCKET_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: End-of-stream sentinel on a workload's outcome queue.
_DONE = object()

#: Token reason recorded when a consumer lets go of its outcome stream.
_ABANDON_REASON = "WorkloadAbandoned: consumer dropped the outcome stream"


def _synthetic_outcomes(
    specs: tuple[QuerySpec, ...], status: str, reason: str, *, start: int = 0
) -> list[QueryOutcome]:
    """Fabricate one structured outcome per spec from ``start`` on — the shared
    shape of every never-executed path (rejection, expiry, failure)."""
    return [
        QueryOutcome(
            index=index,
            query=specs[index].display_name(),
            status=status,
            method=specs[index].method,
            error=reason,
        )
        for index in range(start, len(specs))
    ]


class LatencyHistogram:
    """A fixed-bucket latency histogram (submit-to-delivery, seconds).

    Mutable and cheap to record into; :meth:`as_dict` snapshots it for the
    metrics surface.  Buckets are *non-cumulative* counts per
    :data:`LATENCY_BUCKET_BOUNDS` band (the last band is everything above the
    largest bound).
    """

    __slots__ = ("counts", "count", "sum_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(LATENCY_BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 for an empty histogram).

        Returns the upper bucket bound containing the quantile rank — a
        conservative (never underestimating) histogram quantile; the overflow
        bucket reports the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1] (got {q})")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank and bucket:
                return LATENCY_BUCKET_BOUNDS[min(index, len(LATENCY_BUCKET_BOUNDS) - 1)]
        return LATENCY_BUCKET_BOUNDS[-1]

    def as_dict(self) -> dict:
        buckets = {str(bound): count for bound, count in zip(LATENCY_BUCKET_BOUNDS, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {"buckets": buckets, "count": self.count, "sum_seconds": self.sum_seconds}

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        """Rebuild a histogram from an :meth:`as_dict` snapshot (round-trip
        exact), so consumers of a :class:`ServerMetrics` snapshot can compute
        quantiles without reaching into the live server."""
        histogram = cls()
        buckets = payload["buckets"]
        for index, bound in enumerate(LATENCY_BUCKET_BOUNDS):
            histogram.counts[index] = int(buckets.get(str(bound), 0))
        histogram.counts[-1] = int(buckets.get("inf", 0))
        histogram.count = int(payload["count"])
        histogram.sum_seconds = float(payload["sum_seconds"])
        return histogram


@dataclass(frozen=True)
class AdmissionStats:
    """A snapshot of the admission queue's counters.

    ``queued`` is instantaneous (waiting workloads per priority class right
    now); ``admitted`` and ``rejected`` are cumulative per class over the
    server's lifetime.  ``rejected`` counts both depth-bound refusals and
    deadline expiries; ``deadline_expired`` separates out the latter.
    ``in_flight`` is the number of workloads in the round being served this
    instant.
    """

    queued: dict[int, int]
    admitted: dict[int, int]
    rejected: dict[int, int]
    deadline_expired: int
    depth: int
    in_flight: int

    def as_dict(self) -> dict:
        def keyed(counter: dict[int, int]) -> dict[str, int]:
            return {str(priority): count for priority, count in sorted(counter.items())}

        return {
            "queued": keyed(self.queued),
            "admitted": keyed(self.admitted),
            "rejected": keyed(self.rejected),
            "deadline_expired": self.deadline_expired,
            "depth": self.depth,
            "in_flight": self.in_flight,
        }


@dataclass(frozen=True)
class ServerMetrics:
    """One coherent snapshot of an :class:`AsyncResilienceServer`'s state.

    Aggregates the full serving runtime: fleet-wide
    :class:`~repro.resilience.engine.CacheStats` and
    :class:`~repro.service.server.PoolStats` roll-ups (via their
    ``aggregate`` hooks — over a single-node
    :class:`~repro.service.exchange.local.LocalExchange` the roll-up equals
    the node's own counters), the per-node
    :class:`~repro.service.exchange.base.NodeStats` snapshots behind them,
    the admission queue's :class:`AdmissionStats`, and per-outcome-status
    latency histograms (submit-to-delivery seconds).  :meth:`to_json` is the
    JSON wire format the metrics endpoint serves, :meth:`to_prometheus` the
    text exposition — scraping and the programmatic snapshot agree by
    construction (pinned in CI).
    """

    cache: CacheStats
    pool: PoolStats
    admission: AdmissionStats
    latency: dict[str, dict]
    nodes: tuple[NodeStats, ...] = ()
    #: Envelope parts the exchange answered via its in-process serial
    #: fallback after exhausting failover (see ``RoutedExchange``).
    degraded_serves: int = 0

    def outcome_counts(self) -> dict[str, int]:
        """Delivered outcomes per status (derived from the latency histograms)."""
        return {status: histogram["count"] for status, histogram in self.latency.items()}

    def latency_quantiles(
        self, qs: tuple[float, ...] = (0.5, 0.99), *, scale: float = 1.0
    ) -> dict[str, dict]:
        """Conservative latency quantiles per outcome status.

        Returns ``{status: {"p50": ..., "p99": ..., "count": n}}`` (keys
        follow ``qs``) computed from the snapshot's histograms via
        :meth:`LatencyHistogram.quantile`, so every value is an upper bucket
        bound — never an underestimate.  ``scale`` multiplies the quantile
        values (``1e3`` for milliseconds); counts are unscaled.
        """
        summary: dict[str, dict] = {}
        for status, payload in sorted(self.latency.items()):
            histogram = LatencyHistogram.from_dict(payload)
            entry: dict[str, float | int] = {
                f"p{q * 100:g}": histogram.quantile(q) * scale for q in qs
            }
            entry["count"] = histogram.count
            summary[status] = entry
        return summary

    def as_dict(self) -> dict:
        return {
            "cache": self.cache.as_dict(),
            "pool": self.pool.as_dict(),
            "admission": self.admission.as_dict(),
            "latency": self.latency,
            "outcomes": self.outcome_counts(),
            "nodes": {snapshot.node_id: snapshot.as_dict() for snapshot in self.nodes},
            "degraded_serves": self.degraded_serves,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4) of the snapshot.

        Fleet roll-ups are unlabelled; per-node series carry a ``node`` label;
        latency renders as native histograms (cumulative ``le`` buckets) with
        a ``status`` label per outcome status.
        """
        lines: list[str] = []

        def escape(value: str) -> str:
            return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")

        def emit(name: str, kind: str, help_text: str, samples) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                rendered = ""
                if labels:
                    inner = ",".join(f'{key}="{escape(str(val))}"' for key, val in labels.items())
                    rendered = "{" + inner + "}"
                lines.append(f"{name}{rendered} {value}")

        def per_class(counter: dict[int, int]):
            return [
                ({"priority": priority}, count)
                for priority, count in sorted(counter.items())
            ]

        admission = self.admission
        emit("repro_admission_queued", "gauge",
             "Waiting workloads per priority class.", per_class(admission.queued))
        emit("repro_admission_admitted_total", "counter",
             "Workloads admitted per priority class.", per_class(admission.admitted))
        emit("repro_admission_rejected_total", "counter",
             "Workloads rejected per priority class.", per_class(admission.rejected))
        emit("repro_admission_deadline_expired_total", "counter",
             "Workloads rejected because their deadline expired.",
             [({}, admission.deadline_expired)])
        emit("repro_admission_depth", "gauge",
             "Waiting workloads right now.", [({}, admission.depth)])
        emit("repro_admission_in_flight", "gauge",
             "Workloads in the round being served right now.",
             [({}, admission.in_flight)])
        for name, value in sorted(self.cache.as_dict().items()):
            if name in CacheStats.GAUGE_FIELDS:
                # Point-in-time footprint gauges (entries, bytes_estimate):
                # a ``_total`` suffix would mark them as monotone counters
                # and break rate() queries the moment eviction shrinks them.
                emit(f"repro_cache_{name}", "gauge",
                     f"Fleet-wide language-cache gauge: {name}.", [({}, value)])
            else:
                emit(f"repro_cache_{name}_total", "counter",
                     f"Fleet-wide language-cache counter: {name}.", [({}, value)])
        pool = self.pool.as_dict()
        for name, kind in (
            ("pools_created", "counter"), ("chunks_dispatched", "counter"),
            ("chunks_retried", "counter"), ("crashes", "counter"),
            ("pool_width", "gauge"),
        ):
            emit(f"repro_pool_{name}" + ("_total" if kind == "counter" else ""), kind,
                 f"Fleet-wide worker-pool counter: {name}.", [({}, pool[name])])
        emit("repro_degraded_serves_total", "counter",
             "Envelope parts served by the in-process serial fallback after "
             "exhausted failover.", [({}, self.degraded_serves)])
        emit("repro_node_alive", "gauge", "Whether the node is serving.",
             [({"node": s.node_id}, int(s.alive)) for s in self.nodes])
        emit("repro_node_databases", "gauge", "Databases held warm per node.",
             [({"node": s.node_id}, s.databases) for s in self.nodes])
        emit("repro_node_envelopes_served_total", "counter",
             "Sub-workloads accepted per node.",
             [({"node": s.node_id}, s.envelopes_served) for s in self.nodes])
        emit("repro_node_pool_crashes_total", "counter",
             "Worker crashes observed per node.",
             [({"node": s.node_id}, s.pool.crashes) for s in self.nodes])
        emit("repro_node_pool_chunks_dispatched_total", "counter",
             "Chunks dispatched per node.",
             [({"node": s.node_id}, s.pool.chunks_dispatched) for s in self.nodes])
        emit("repro_node_cache_result_hits_total", "counter",
             "Result-level cache hits per node (node-owned caches only).",
             [({"node": s.node_id}, s.cache.result_hits) for s in self.nodes])
        emit("repro_outcomes_total", "counter", "Outcomes delivered per status.",
             [({"status": status}, count)
              for status, count in sorted(self.outcome_counts().items())])
        lines.append(
            "# HELP repro_latency_seconds Submit-to-delivery latency per outcome status."
        )
        lines.append("# TYPE repro_latency_seconds histogram")
        for status, histogram in sorted(self.latency.items()):
            label = escape(status)
            cumulative = 0
            for bound in LATENCY_BUCKET_BOUNDS:
                cumulative += histogram["buckets"][str(bound)]
                lines.append(
                    f'repro_latency_seconds_bucket{{status="{label}",le="{bound}"}} {cumulative}'
                )
            lines.append(
                f'repro_latency_seconds_bucket{{status="{label}",le="+Inf"}} {histogram["count"]}'
            )
            lines.append(
                f'repro_latency_seconds_sum{{status="{label}"}} {histogram["sum_seconds"]}'
            )
            lines.append(
                f'repro_latency_seconds_count{{status="{label}"}} {histogram["count"]}'
            )
        return "\n".join(lines) + "\n"


class MetricsEndpoint:
    """A minimal stdlib HTTP endpoint serving a metrics snapshot.

    ``GET /metrics`` (or ``/``) returns ``ServerMetrics.to_json()`` evaluated
    at scrape time; other paths 404.  Prometheus scrapers get the text
    exposition instead via content negotiation: ``?format=prometheus`` or an
    ``Accept`` header asking for ``text/plain`` selects
    ``ServerMetrics.to_prometheus()``.  Runs a daemonic
    :class:`~http.server.ThreadingHTTPServer` bound to ``host:port`` —
    ``port=0`` picks a free port, exposed as :attr:`port` / :attr:`url`.
    """

    def __init__(self, snapshot, *, host: str = "127.0.0.1", port: int = 0) -> None:
        # repro: allow[ipc-local-class] -- request handler closing over this
        # endpoint's snapshot; http.server instantiates it per connection in
        # this process and it never crosses a pickle boundary
        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path, _, query = self.path.partition("?")
                path = path.rstrip("/")
                if path not in ("", "/metrics"):
                    self.send_error(404)
                    return
                accept = self.headers.get("Accept", "")
                prometheus = (
                    "format=prometheus" in query.split("&") if query else False
                ) or "text/plain" in accept
                if prometheus:
                    body = snapshot().to_prometheus().encode("utf-8")
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                else:
                    body = snapshot().to_json().encode("utf-8")
                    content_type = "application/json"
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # pragma: no cover - silence
                pass

        self._http = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._http.server_address[0], self._http.server_address[1]
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="resilience-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        self._thread.join()


class _Admission:
    """One admitted (or rejected) workload and its delivery state.

    ``next_offset`` is how many specs have been contributed to serving rounds;
    ``remaining`` how many outcomes are still undelivered.  ``next_offset``
    and ``remaining`` are only touched under the server lock or on the drain
    thread, never concurrently.  ``abandoned`` flips (from the consumer side)
    when the outcome iterator is dropped mid-stream: the router then discards
    outcomes and the admission queue skips the unserved tail.  ``token`` is
    the workload's cooperative cancellation handle, shipped with every round
    it participates in; ``weight`` scales its round share.
    """

    __slots__ = (
        "seq", "priority", "deadline_at", "specs", "queue", "loop",
        "submitted_at", "next_offset", "remaining", "abandoned", "in_round",
        "database", "weight", "token",
    )

    def __init__(
        self,
        priority: int,
        deadline_at: float | None,
        specs: tuple[QuerySpec, ...],
        queue: "asyncio.Queue",
        loop: "asyncio.AbstractEventLoop",
        submitted_at: float,
        database: AnyDatabase,
        weight: float,
    ) -> None:
        self.seq = 0
        self.priority = priority
        self.deadline_at = deadline_at
        self.specs = specs
        self.queue = queue
        self.loop = loop
        self.submitted_at = submitted_at
        self.next_offset = 0
        self.remaining = len(specs)
        self.abandoned = False
        self.in_round = False
        self.database = database
        self.weight = weight
        self.token = CancellationToken(deadline_at=deadline_at)


class _OutcomeStream:
    """The async iterator :meth:`AsyncResilienceServer.submit` returns.

    A plain class rather than an async generator so that *abandonment* is
    observable no matter how the consumer lets go: ``aclose()`` (including on
    a stream that was never iterated — a generator's ``finally`` would never
    run there) and garbage collection both mark the workload abandoned, which
    stops outcome routing and keeps its unserved tail out of the pool.
    """

    __slots__ = ("_entry", "_finished")

    def __init__(self, entry: _Admission) -> None:
        self._entry = entry
        self._finished = False

    def __aiter__(self) -> "_OutcomeStream":
        return self

    async def __anext__(self) -> QueryOutcome:
        # Sticky end-of-stream: once finished (or abandoned), every later
        # __anext__ raises again instead of blocking on the drained queue.
        if self._finished or self._entry.abandoned:
            self._finished = True
            raise StopAsyncIteration
        item = await self._entry.queue.get()
        if item is _DONE:
            self._finished = True
            raise StopAsyncIteration
        return item

    def cancel(
        self, reason: str = "WorkloadCancelled: cancelled by the consumer"
    ) -> None:
        """Cooperatively cancel the workload while keeping the stream alive.

        Unlike abandonment, the consumer stays subscribed: every not-yet-run
        query — including the tail of a chunk already on a worker — surfaces
        as a structured ``error`` outcome carrying ``reason``, so the stream
        still completes with exactly one outcome per query.
        """
        self._entry.token.cancel(reason)

    async def aclose(self) -> None:
        self._entry.abandoned = True
        self._finished = True
        self._entry.token.cancel(_ABANDON_REASON)
        # Wake a consumer already blocked in __anext__'s queue.get() — the
        # abandonment flag alone can never reach it (deliveries stop).
        self._entry.queue.put_nowait(_DONE)

    def __del__(self) -> None:
        # GC can only collect an un-awaited stream (a blocked __anext__ holds
        # a reference), so flagging without a wake-up is enough here — and
        # put_nowait would not be safe from an arbitrary GC thread.  The token
        # cancel is a plain attribute write plus (at worst) one shared-memory
        # byte store, both safe from a GC context.
        self._entry.abandoned = True
        self._entry.token.cancel(_ABANDON_REASON)


class AsyncResilienceServer:
    """An asyncio front-end multiplexing workloads onto an exchange.

    Args:
        server: what to serve through — an
            :class:`~repro.service.exchange.base.Exchange` (routed fleets
            included), a :class:`~repro.service.server.ResilienceServer`
            (wrapped in a :class:`~repro.service.exchange.local.LocalExchange`
            — the single-node path, behavior-identical to the pre-exchange
            front-end), or a database, from which a local server is built
            with the remaining keyword arguments (``max_workers``,
            ``parallel``, ``cache``, ``store``).  The async server *owns*
            the exchange either way: closing the front-end closes it, its
            nodes and their pools.
        database: the default database submissions run against.  Required
            (here or per-:meth:`submit`) when wrapping a bare ``Exchange``;
            inferred — and not accepted — when wrapping a server or database.
        max_queue_depth: bound on *waiting* workloads; a submission arriving
            at the bound is rejected with structured
            :data:`~repro.service.outcome.ADMISSION_REJECTED` outcomes
            instead of queueing without limit.
        round_share: base per-workload concurrency share — the maximum number
            of queries a weight-1.0 workload may contribute to a single
            serving round (``None``: a workload always contributes all of its
            remaining queries).
        share_weights: default share weight per priority class (1.0 where
            unset).  A workload's round cap is ``max(1, round(round_share *
            weight))`` — the floor of one guarantees every waiting workload
            progresses every round of its class, so no positive weight can
            starve.
        autostart: start the drain thread lazily on the first submission
            (default).  ``autostart=False`` keeps every submission queued
            until :meth:`start` is called — the seam the admission-order
            tests (and pre-loading ops tooling) use.

    Use as an async context manager, or call :meth:`close` /
    :meth:`aclose`.  All methods are safe to call from one event loop;
    workloads may also be submitted from several event loops in different
    threads (each iterator is bound to its submitting loop).
    """

    def __init__(
        self,
        server: Exchange | ResilienceServer | AnyDatabase,
        *,
        database: AnyDatabase | None = None,
        max_queue_depth: int = 64,
        round_share: int | None = None,
        share_weights: Mapping[int, float] | None = None,
        autostart: bool = True,
        max_workers: int | None = None,
        parallel: bool = True,
        cache: LanguageCache | None = None,
        store=None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1 (got {max_queue_depth})")
        if round_share is not None and round_share < 1:
            raise ValueError(f"round_share must be >= 1 or None (got {round_share})")
        if share_weights:
            for priority, weight in share_weights.items():
                if weight <= 0:
                    raise ValueError(
                        f"share weights must be > 0 (priority {priority} got {weight})"
                    )
        if isinstance(server, Exchange):
            if max_workers is not None or cache is not None or store is not None or parallel is not True:
                raise ValueError(
                    "max_workers/parallel/cache/store configure a server built from a "
                    "database; an Exchange already owns its nodes' configuration"
                )
            self._exchange = server
            self._default_database = database
        elif isinstance(server, ResilienceServer):
            if max_workers is not None or cache is not None or store is not None or parallel is not True:
                raise ValueError(
                    "max_workers/parallel/cache/store configure a server built from a "
                    "database; an existing ResilienceServer already owns them"
                )
            if database is not None and database is not server.database:
                raise ValueError(
                    "database= names the default database of a bare Exchange; a "
                    "ResilienceServer already pins its own"
                )
            self._exchange = LocalExchange(server)
            self._default_database = server.database
        else:
            if database is not None:
                raise ValueError(
                    "database= names the default database of a bare Exchange; "
                    "positional `server` already is the database here"
                )
            self._exchange = LocalExchange(
                server, max_workers=max_workers, parallel=parallel, cache=cache, store=store
            )
            self._default_database = self._exchange.database
        self._max_queue_depth = max_queue_depth
        self._round_share = round_share
        self._share_weights = dict(share_weights) if share_weights else {}
        self._autostart = autostart

        # Reentrant: expiry runs under the lock and delivers outcomes, whose
        # latency recording takes the lock again.
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._waiting: dict[int, deque[_Admission]] = {}
        self._seq = 0
        self._drain_log: deque[tuple[int, int]] = deque(maxlen=4096)
        self._drain_thread: threading.Thread | None = None
        self._closing = False
        self._closed = False
        self._admitted: dict[int, int] = {}
        self._rejected: dict[int, int] = {}
        self._deadline_expired = 0
        self._in_flight = 0
        self._latency: dict[str, LatencyHistogram] = {}
        self._endpoints: list[MetricsEndpoint] = []

    # ------------------------------------------------------------------ accessors

    @property
    def exchange(self) -> Exchange:
        """The owned exchange every round is served through."""
        return self._exchange

    @property
    def server(self) -> ResilienceServer:
        """The wrapped warm server — single-node (:class:`LocalExchange`) only."""
        if isinstance(self._exchange, LocalExchange):
            return self._exchange.server
        raise ReproError(
            "no single wrapped server: this front-end serves through "
            f"{type(self._exchange).__name__}; use .exchange"
        )

    @property
    def cache(self) -> LanguageCache:
        """The wrapped server's cache — single-node (:class:`LocalExchange`) only."""
        return self.server.cache

    @property
    def database(self) -> AnyDatabase:
        """The default database submissions run against (may be ``None`` for a
        bare exchange configured per-submit)."""
        return self._default_database

    def worker_pids(self) -> frozenset[int]:
        """PIDs of the fleet's pool workers — stable PIDs across concurrent
        workloads prove they share warm pools (the acceptance observable)."""
        return self._exchange.worker_pids()

    def drain_log(self) -> tuple[tuple[int, int], ...]:
        """Diagnostic: ``(priority, submission_seq)`` per workload per round,
        in serving order (bounded: the most recent 4096 entries).  The
        admission-order tests assert on this — with every workload queued
        before :meth:`start`, priorities must be non-decreasing and
        same-class workloads must first appear in submission order."""
        with self._lock:
            return tuple(self._drain_log)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the drain thread (idempotent; implicit when ``autostart``)."""
        with self._lock:
            if self._closing or self._closed:
                raise ReproError("this AsyncResilienceServer is closed")
            self._start_locked()

    def _start_locked(self) -> None:
        if self._drain_thread is None:
            self._drain_thread = threading.Thread(
                target=self._drain_loop, name="async-resilience-drain", daemon=True
            )
            self._drain_thread.start()

    def close(self) -> None:
        """Drain down and close (idempotent): stop admissions, finish the
        in-flight round, fail still-waiting workloads with structured
        ``"error"`` outcomes, shut metrics endpoints and the exchange (and
        with it every node).  Blocking — from async code, use :meth:`aclose`."""
        with self._lock:
            already = self._closed
            self._closing = True
            self._wake.notify_all()
            thread = self._drain_thread
        if thread is not None:
            thread.join()
        with self._lock:
            leftovers = [entry for queue in self._waiting.values() for entry in queue]
            self._waiting.clear()
            self._closed = True
        for entry in leftovers:
            self._fail_entry(entry, "ServerClosed: async server closed before serving")
        if not already:
            endpoints, self._endpoints = self._endpoints, []
            for endpoint in endpoints:
                endpoint.close()
            self._exchange.close()

    async def aclose(self) -> None:
        """Async-friendly :meth:`close` (runs it on the default executor)."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    async def __aenter__(self) -> "AsyncResilienceServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __enter__(self) -> "AsyncResilienceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ admission

    async def submit(
        self,
        workload: Workload | Iterable[QuerySpec | QueryLike],
        *,
        priority: int = 0,
        deadline: float | None = None,
        database: AnyDatabase | None = None,
        weight: float | None = None,
    ) -> AsyncIterator[QueryOutcome]:
        """Admit a workload; iterate its outcomes as they complete.

        Args:
            workload: anything :meth:`~repro.service.workload.Workload.coerce`
                accepts.
            priority: admission class — **lower is served first**; FIFO
                within a class.
            deadline: maximum seconds until the workload's outcomes must be
                done.  Expiring unserved rejects it with
                ``admission-rejected`` outcomes; expiring *mid-execution*
                cancels the unserved tail cooperatively, yielding
                ``admission-rejected`` outcomes for the queries the deadline
                cut off (served queries keep their real outcomes).
            database: the database to run against, overriding the server's
                default; different submissions may target different databases
                and a routed exchange scatters them to their owning nodes.
            weight: share weight for this workload, overriding the
                ``share_weights`` default of its priority class.  The round
                cap is ``max(1, round(round_share * weight))``; must be > 0.

        Returns:
            an async iterator yielding exactly one
            :class:`~repro.service.outcome.QueryOutcome` per query, with
            workload-local ``index`` — re-sort by it to reproduce the
            blocking :meth:`~repro.service.server.ResilienceServer.serve`
            list.  A rejected submission yields one
            :data:`~repro.service.outcome.ADMISSION_REJECTED` outcome per
            query instead of raising.  The iterator's ``cancel()`` requests
            cooperative cancellation of whatever has not been served yet.

        Raises:
            ReproError: on a closed server (the one non-graceful refusal: the
                pool is gone, so no later capacity can serve a retry), or
                when no database is known (bare exchange, no default, no
                ``database=``).
        """
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds (got {deadline})")
        if weight is None:
            weight = self._share_weights.get(priority, 1.0)
        elif weight <= 0:
            raise ValueError(f"weight must be > 0 (got {weight})")
        db = database if database is not None else self._default_database
        if db is None:
            raise ReproError(
                "no database to serve against: this front-end wraps a bare "
                "exchange with no default; pass database= to submit()"
            )
        fleet = Workload.coerce(workload)
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        entry = _Admission(
            priority=priority,
            deadline_at=None if deadline is None else now + deadline,
            specs=fleet.specs,
            queue=asyncio.Queue(),
            loop=loop,
            submitted_at=now,
            database=db,
            weight=weight,
        )
        with self._lock:
            if self._closing or self._closed:
                raise ReproError("this AsyncResilienceServer is closed")
            self._seq += 1
            entry.seq = self._seq
            if entry.remaining == 0:
                # An empty workload needs no queue slot: complete it at once,
                # admitted whatever the queue depth.
                self._admitted[priority] = self._admitted.get(priority, 0) + 1
                entry.queue.put_nowait(_DONE)
                return self._outcomes(entry)
            # Expire overdue waiters first: a dead workload must neither
            # occupy a depth slot nor keep its consumer waiting for the
            # drain to reach its priority class.
            self._sweep_expired_locked()
            depth = sum(len(queue) for queue in self._waiting.values())
            if depth >= self._max_queue_depth:
                self._rejected[priority] = self._rejected.get(priority, 0) + 1
                self._reject_locked(
                    entry,
                    f"AdmissionRejected: queue depth {depth} at bound "
                    f"{self._max_queue_depth}",
                )
                return self._outcomes(entry)
            self._admitted[priority] = self._admitted.get(priority, 0) + 1
            self._waiting.setdefault(priority, deque()).append(entry)
            if self._autostart:
                self._start_locked()
            self._wake.notify_all()
        return self._outcomes(entry)

    def _reject_locked(self, entry: _Admission, reason: str) -> None:
        """Fill a never-queued entry with ``admission-rejected`` outcomes.

        Runs on the submitting thread (entry queue untouched by the drain),
        so outcomes go straight onto the asyncio queue.
        """
        elapsed = time.monotonic() - entry.submitted_at
        histogram = self._latency.setdefault(ADMISSION_REJECTED, LatencyHistogram())
        for outcome in _synthetic_outcomes(entry.specs, ADMISSION_REJECTED, reason):
            histogram.record(elapsed)
            entry.queue.put_nowait(outcome)
        entry.queue.put_nowait(_DONE)
        entry.remaining = 0

    def _outcomes(self, entry: _Admission) -> "_OutcomeStream":
        return _OutcomeStream(entry)

    # ------------------------------------------------------------------ draining

    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._closing and not any(self._waiting.values()):
                    self._wake.wait()
                if self._closing:
                    return  # close() fails whatever is still waiting
                round_slices = self._pop_round_locked()
                self._in_flight = len(round_slices)
            try:
                if round_slices:
                    self._serve_round(round_slices)
            finally:
                with self._lock:
                    self._in_flight = 0

    def _pop_round_locked(self) -> list[tuple[_Admission, int, int]]:
        """Pop the next round: the best priority class's waiting workloads.

        Returns ``(entry, start, stop)`` spec slices, each capped at the
        entry's weighted round share.  Abandoned entries are dropped; expired
        waiters are
        rejected *across every class* first (an expired low-priority
        workload behind sustained high-priority traffic must not wait for
        its class's turn to learn it was rejected).  Partially contributed
        entries are re-queued by :meth:`_serve_round` after the round
        completes.
        """
        self._sweep_expired_locked()
        while True:
            classes = sorted(priority for priority, queue in self._waiting.items() if queue)
            if not classes:
                return []
            queue = self._waiting[classes[0]]
            slices: list[tuple[_Admission, int, int]] = []
            while queue:
                entry = queue.popleft()
                if entry.abandoned:
                    continue
                start = entry.next_offset
                share = self._entry_share(entry)
                stop = (
                    len(entry.specs)
                    if share is None
                    else min(len(entry.specs), start + share)
                )
                entry.next_offset = stop
                entry.in_round = True
                slices.append((entry, start, stop))
                self._drain_log.append((entry.priority, entry.seq))
            if slices:
                return slices
            # the class emptied out (abandons/expiries): try the next one

    def _entry_share(self, entry: "_Admission") -> int | None:
        """The weighted round cap: ``max(1, round(round_share * weight))``.

        The floor of one query per round is the no-starvation guarantee —
        however small a positive weight, a waiting workload progresses on
        every round of its class.
        """
        if self._round_share is None:
            return None
        return max(1, round(self._round_share * entry.weight))

    def _sweep_expired_locked(self) -> None:
        """Drop dead waiters: expired deadlines (rejected) and abandoned
        iterators (discarded — nobody is listening).

        Runs on both admission (submit) and drain (round pop), so a dead
        workload stops occupying a queue-depth slot promptly even while the
        drain is busy with other priority classes.  Only never-started
        workloads expire *here* — a workload whose first round ran completes
        through the serving path, where its cancellation token turns the
        deadline into cooperative mid-execution cancellation instead.
        """
        now = time.monotonic()
        for queue in self._waiting.values():
            for entry in [entry for entry in queue if entry.abandoned]:
                queue.remove(entry)
            expired = [
                entry
                for entry in queue
                if entry.deadline_at is not None
                and entry.next_offset == 0
                and now > entry.deadline_at
            ]
            for entry in expired:
                queue.remove(entry)
                self._expire_locked(entry)

    def _expire_locked(self, entry: _Admission) -> None:
        self._rejected[entry.priority] = self._rejected.get(entry.priority, 0) + 1
        self._deadline_expired += 1
        waited = time.monotonic() - entry.submitted_at
        reason = f"AdmissionRejected: deadline expired after {waited:.3f}s in queue"
        for outcome in _synthetic_outcomes(entry.specs, ADMISSION_REJECTED, reason):
            self._deliver(entry, outcome)

    def _serve_round(self, slices: list[tuple[_Admission, int, int]]) -> None:
        """Serve one merged round through the exchange and route outcomes.

        Slices are grouped by database (identity, first-appearance order)
        into one :class:`WorkloadEnvelope` part per database; a
        single-database round is therefore a one-part envelope — the exact
        merged workload the pre-exchange front-end served directly.  Outcome
        indices come back envelope-global and are rewritten to workload-local
        before delivery.  Each entry's cancellation token rides along keyed
        by envelope index, so deadlines and consumer cancels cut execution
        cooperatively mid-round.  Any raise out of ``submit`` itself (closed
        exchange, broken beyond failover) fails every undelivered query of
        the round structurally — per-query failures are already outcomes.
        """
        groups: dict[int, tuple[AnyDatabase, list[QuerySpec], list[tuple[_Admission, int]]]] = {}
        order: list[int] = []
        for entry, start, stop in slices:
            key = id(entry.database)
            if key not in groups:
                groups[key] = (entry.database, [], [])
                order.append(key)
            _, merged, routed = groups[key]
            for local in range(start, stop):
                routed.append((entry, local))
                merged.append(entry.specs[local])
        parts: list[EnvelopePart] = []
        routing: list[tuple[_Admission, int]] = []
        for key in order:
            db, merged, routed = groups[key]
            parts.append(EnvelopePart(workload=Workload(tuple(merged)), database=db))
            routing.extend(routed)
        tokens = {
            global_index: entry.token
            for global_index, (entry, _) in enumerate(routing)
        }
        delivered = [False] * len(routing)
        try:
            iterator = self._exchange.submit(
                WorkloadEnvelope(tuple(parts)), cancel=tokens
            )
            try:
                for outcome in iterator:
                    entry, local = routing[outcome.index]
                    delivered[outcome.index] = True
                    self._deliver(entry, replace(outcome, index=local))
            finally:
                close = getattr(iterator, "close", None)
                if close is not None:
                    close()
        except Exception as error:
            reason = f"{type(error).__name__}: {error}"
            for position, (entry, local) in enumerate(routing):
                if not delivered[position]:
                    spec = entry.specs[local]
                    self._deliver(
                        entry,
                        QueryOutcome(
                            index=local,
                            query=spec.display_name(),
                            status=ERROR,
                            method=spec.method,
                            error=reason,
                        ),
                    )
            # Nothing about later specs can work either: fail the tails too,
            # completing every entry of the round instead of re-queueing.
            for entry, _, _ in slices:
                self._fail_entry(entry, reason)
            return
        # Re-queue entries that still have unserved specs (round share hit):
        # they keep their seq, so extendleft preserves FIFO within the class.
        with self._lock:
            partials = [
                entry
                for entry, _, stop in slices
                if stop < len(entry.specs) and not entry.abandoned
            ]
            for entry in reversed(partials):
                entry.in_round = False
                self._waiting.setdefault(entry.priority, deque()).appendleft(entry)

    def _fail_entry(self, entry: _Admission, reason: str) -> None:
        """Deliver ``"error"`` outcomes for every not-yet-served spec."""
        for outcome in _synthetic_outcomes(entry.specs, ERROR, reason, start=entry.next_offset):
            self._deliver(entry, outcome)
        entry.next_offset = len(entry.specs)

    def _deliver(self, entry: _Admission, outcome: QueryOutcome) -> None:
        """Bridge one outcome from the drain thread into the entry's loop."""
        entry.remaining -= 1
        done = entry.remaining <= 0
        with self._lock:
            if done and entry.in_round:
                # Completed workloads leave ``in_flight`` *before* their last
                # outcome reaches the consumer, so a snapshot taken after
                # draining an iterator never still counts it.
                entry.in_round = False
                self._in_flight = max(0, self._in_flight - 1)
            if entry.abandoned:
                return
            histogram = self._latency.setdefault(outcome.status, LatencyHistogram())
            histogram.record(time.monotonic() - entry.submitted_at)
        try:
            entry.loop.call_soon_threadsafe(entry.queue.put_nowait, outcome)
            if done:
                entry.loop.call_soon_threadsafe(entry.queue.put_nowait, _DONE)
        except RuntimeError:
            # The submitting event loop is gone: nobody can consume this
            # stream anymore, so treat the workload as abandoned and stop
            # spending pool time on its unserved tail.
            entry.abandoned = True
            entry.token.cancel(_ABANDON_REASON)

    # -------------------------------------------------------------------- metrics

    def metrics(self) -> ServerMetrics:
        """Snapshot the runtime (cache + pool + admission + latency) coherently."""
        with self._lock:
            queued = {
                priority: len(queue) for priority, queue in self._waiting.items() if queue
            }
            admission = AdmissionStats(
                queued=queued,
                admitted=dict(self._admitted),
                rejected=dict(self._rejected),
                deadline_expired=self._deadline_expired,
                depth=sum(queued.values()),
                in_flight=self._in_flight,
            )
            latency = {
                status: histogram.as_dict()
                for status, histogram in sorted(self._latency.items())
            }
        nodes = self._exchange.stats()
        # Per-node cache stats plus (exactly once) any fleet-shared cache the
        # exchange owns — nodes serving from a shared cache report empty
        # per-node CacheStats to keep this roll-up double-count-free.
        cache_parts = [snapshot.cache for snapshot in nodes]
        shared = getattr(self._exchange, "shared_cache_stats", lambda: None)()
        if shared is not None:
            cache_parts.append(shared)
        return ServerMetrics(
            cache=CacheStats.aggregate(cache_parts),
            pool=PoolStats.aggregate([snapshot.pool for snapshot in nodes]),
            admission=admission,
            latency=latency,
            nodes=nodes,
            degraded_serves=getattr(self._exchange, "degraded_serves", 0),
        )

    def metrics_endpoint(self, port: int = 0, *, host: str = "127.0.0.1") -> MetricsEndpoint:
        """Serve :meth:`metrics` as JSON over HTTP for ops tooling to scrape.

        ``port=0`` binds a free port (see the returned endpoint's ``url``).
        Endpoints are closed with the server; call the endpoint's ``close``
        to stop one earlier.
        """
        with self._lock:
            if self._closing or self._closed:
                raise ReproError("this AsyncResilienceServer is closed")
            endpoint = MetricsEndpoint(self.metrics, host=host, port=port)
            self._endpoints.append(endpoint)
            return endpoint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("draining" if self._drain_thread else "idle")
        with self._lock:
            depth = sum(len(queue) for queue in self._waiting.values())
        return (
            f"AsyncResilienceServer({self._exchange!r}, {state}, depth={depth}, "
            f"bound={self._max_queue_depth})"
        )
