"""Async serving front-end: admission control over one warm worker pool.

:class:`AsyncResilienceServer` multiplexes *concurrent* workloads onto a single
:class:`~repro.service.server.ResilienceServer` — one database, one warm
process pool, one session cache — behind an ``asyncio`` API:

* :meth:`~AsyncResilienceServer.submit` admits a workload into an internal
  admission queue and returns an async iterator of its
  :class:`~repro.service.outcome.QueryOutcome` objects;
* a dedicated drain thread pops admitted workloads and runs the blocking
  :meth:`~repro.service.server.ResilienceServer.serve_iter` on the shared
  pool, bridging each outcome back into the submitting workload's
  :class:`asyncio.Queue` (via ``loop.call_soon_threadsafe``) as it completes;
* :meth:`~AsyncResilienceServer.metrics` snapshots the whole runtime —
  cache counters, pool state, admission counters, per-status latency
  histograms — as a :class:`ServerMetrics`, and
  :meth:`~AsyncResilienceServer.metrics_endpoint` serves that snapshot as
  JSON over a tiny stdlib HTTP endpoint for ops tooling to scrape.

Admission semantics
-------------------

Workloads are admitted into priority classes: **lower ``priority`` values are
served first**, and within one class workloads drain FIFO (by submission
order).  The drain thread serves *rounds*: each round merges the waiting
workloads of the single best (lowest) nonempty priority class into one
combined workload and streams it through the shared pool, so concurrent
same-class workloads genuinely share the pool within a round while a higher
class never yields the pool to a lower one.  ``round_share`` caps how many
queries one workload may contribute to a round (its *concurrency share*): a
workload larger than its share is served across consecutive rounds, keeping
one huge submission from monopolizing a round against its peers.

Admission is bounded: when ``max_queue_depth`` workloads are already waiting,
:meth:`~AsyncResilienceServer.submit` does not block and does not raise — it
returns an iterator of structured :data:`~repro.service.outcome.ADMISSION_REJECTED`
outcomes (one per query), so back-pressure is data the caller can retry on.  A
``deadline`` (seconds) bounds *queue wait*: a workload still unserved when its
deadline passes is rejected the same way instead of running stale.  Once a
workload's first round starts, it always runs to completion.

Outcome-stream contract
-----------------------

Per workload, the same contract as ``serve_iter``: the multiset of outcomes
equals the blocking :meth:`~repro.service.server.ResilienceServer.serve`
list for that workload (indices are workload-local), with no ordering
guarantee beyond it — re-sorting by ``outcome.index`` reproduces the serial
reference exactly, which the conformance harness pins for the async variants.
Outcomes are never shared or duplicated across workloads: every admitted query
yields exactly one outcome on exactly its own iterator.

A consumer that abandons its iterator mid-stream (``break``, task
cancellation, GC) marks the workload abandoned: already-queued outcomes are
dropped, its unserved queries are never dispatched to the pool, and later
workloads are unaffected — pinned by the abandonment regression tests.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from bisect import bisect_left
from collections import deque
from collections.abc import AsyncIterator, Iterable
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ReproError
from ..graphdb.database import BagGraphDatabase, GraphDatabase
from ..resilience.engine import CacheStats
from .cache import LanguageCache
from .outcome import ADMISSION_REJECTED, ERROR, QueryOutcome
from .server import PoolStats, ResilienceServer
from .workload import QueryLike, QuerySpec, Workload

AnyDatabase = GraphDatabase | BagGraphDatabase

#: Upper bucket bounds (seconds) of the latency histograms; the implicit last
#: bucket is +inf.  Roughly log-spaced from 1 ms to 10 s — per-query serving
#: cost spans flow lookups (sub-ms, cache hits) to exact searches (seconds).
LATENCY_BUCKET_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: End-of-stream sentinel on a workload's outcome queue.
_DONE = object()


def _synthetic_outcomes(
    specs: tuple[QuerySpec, ...], status: str, reason: str, *, start: int = 0
) -> list[QueryOutcome]:
    """Fabricate one structured outcome per spec from ``start`` on — the shared
    shape of every never-executed path (rejection, expiry, failure)."""
    return [
        QueryOutcome(
            index=index,
            query=specs[index].display_name(),
            status=status,
            method=specs[index].method,
            error=reason,
        )
        for index in range(start, len(specs))
    ]


class LatencyHistogram:
    """A fixed-bucket latency histogram (submit-to-delivery, seconds).

    Mutable and cheap to record into; :meth:`as_dict` snapshots it for the
    metrics surface.  Buckets are *non-cumulative* counts per
    :data:`LATENCY_BUCKET_BOUNDS` band (the last band is everything above the
    largest bound).
    """

    __slots__ = ("counts", "count", "sum_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(LATENCY_BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 for an empty histogram).

        Returns the upper bucket bound containing the quantile rank — a
        conservative (never underestimating) histogram quantile; the overflow
        bucket reports the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1] (got {q})")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank and bucket:
                return LATENCY_BUCKET_BOUNDS[min(index, len(LATENCY_BUCKET_BOUNDS) - 1)]
        return LATENCY_BUCKET_BOUNDS[-1]

    def as_dict(self) -> dict:
        buckets = {str(bound): count for bound, count in zip(LATENCY_BUCKET_BOUNDS, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {"buckets": buckets, "count": self.count, "sum_seconds": self.sum_seconds}


@dataclass(frozen=True)
class AdmissionStats:
    """A snapshot of the admission queue's counters.

    ``queued`` is instantaneous (waiting workloads per priority class right
    now); ``admitted`` and ``rejected`` are cumulative per class over the
    server's lifetime.  ``rejected`` counts both depth-bound refusals and
    deadline expiries; ``deadline_expired`` separates out the latter.
    ``in_flight`` is the number of workloads in the round being served this
    instant.
    """

    queued: dict[int, int]
    admitted: dict[int, int]
    rejected: dict[int, int]
    deadline_expired: int
    depth: int
    in_flight: int

    def as_dict(self) -> dict:
        def keyed(counter: dict[int, int]) -> dict[str, int]:
            return {str(priority): count for priority, count in sorted(counter.items())}

        return {
            "queued": keyed(self.queued),
            "admitted": keyed(self.admitted),
            "rejected": keyed(self.rejected),
            "deadline_expired": self.deadline_expired,
            "depth": self.depth,
            "in_flight": self.in_flight,
        }


@dataclass(frozen=True)
class ServerMetrics:
    """One coherent snapshot of an :class:`AsyncResilienceServer`'s state.

    Aggregates the full serving runtime: the session cache's
    :class:`~repro.resilience.engine.CacheStats` (classifications, canonical
    interning, result-level hits/misses), the warm pool's
    :class:`~repro.service.server.PoolStats` (worker pids, forks, crashes,
    retries, chunks dispatched), the admission queue's
    :class:`AdmissionStats`, and per-outcome-status latency histograms
    (submit-to-delivery seconds).  :meth:`to_json` is the wire format the
    metrics endpoint serves — scraping and the programmatic snapshot agree by
    construction (pinned in CI).
    """

    cache: CacheStats
    pool: PoolStats
    admission: AdmissionStats
    latency: dict[str, dict]

    def outcome_counts(self) -> dict[str, int]:
        """Delivered outcomes per status (derived from the latency histograms)."""
        return {status: histogram["count"] for status, histogram in self.latency.items()}

    def as_dict(self) -> dict:
        return {
            "cache": self.cache.as_dict(),
            "pool": self.pool.as_dict(),
            "admission": self.admission.as_dict(),
            "latency": self.latency,
            "outcomes": self.outcome_counts(),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


class MetricsEndpoint:
    """A minimal stdlib HTTP endpoint serving a metrics snapshot as JSON.

    ``GET /metrics`` (or ``/``) returns ``ServerMetrics.to_json()`` evaluated
    at scrape time; other paths 404.  Runs a daemonic
    :class:`~http.server.ThreadingHTTPServer` bound to ``host:port`` —
    ``port=0`` picks a free port, exposed as :attr:`port` / :attr:`url`.
    """

    def __init__(self, snapshot, *, host: str = "127.0.0.1", port: int = 0) -> None:
        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0].rstrip("/")
                if path not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = snapshot().to_json().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # pragma: no cover - silence
                pass

        self._http = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._http.server_address[0], self._http.server_address[1]
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="resilience-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        self._thread.join()


class _Admission:
    """One admitted (or rejected) workload and its delivery state.

    ``next_offset`` is how many specs have been contributed to serving rounds;
    ``remaining`` how many outcomes are still undelivered.  ``next_offset``
    and ``remaining`` are only touched under the server lock or on the drain
    thread, never concurrently.  ``abandoned`` flips (from the consumer side)
    when the outcome iterator is dropped mid-stream: the router then discards
    outcomes and the admission queue skips the unserved tail.
    """

    __slots__ = (
        "seq", "priority", "deadline_at", "specs", "queue", "loop",
        "submitted_at", "next_offset", "remaining", "abandoned", "in_round",
    )

    def __init__(
        self,
        priority: int,
        deadline_at: float | None,
        specs: tuple[QuerySpec, ...],
        queue: "asyncio.Queue",
        loop: "asyncio.AbstractEventLoop",
        submitted_at: float,
    ) -> None:
        self.seq = 0
        self.priority = priority
        self.deadline_at = deadline_at
        self.specs = specs
        self.queue = queue
        self.loop = loop
        self.submitted_at = submitted_at
        self.next_offset = 0
        self.remaining = len(specs)
        self.abandoned = False
        self.in_round = False


class _OutcomeStream:
    """The async iterator :meth:`AsyncResilienceServer.submit` returns.

    A plain class rather than an async generator so that *abandonment* is
    observable no matter how the consumer lets go: ``aclose()`` (including on
    a stream that was never iterated — a generator's ``finally`` would never
    run there) and garbage collection both mark the workload abandoned, which
    stops outcome routing and keeps its unserved tail out of the pool.
    """

    __slots__ = ("_entry", "_finished")

    def __init__(self, entry: _Admission) -> None:
        self._entry = entry
        self._finished = False

    def __aiter__(self) -> "_OutcomeStream":
        return self

    async def __anext__(self) -> QueryOutcome:
        # Sticky end-of-stream: once finished (or abandoned), every later
        # __anext__ raises again instead of blocking on the drained queue.
        if self._finished or self._entry.abandoned:
            self._finished = True
            raise StopAsyncIteration
        item = await self._entry.queue.get()
        if item is _DONE:
            self._finished = True
            raise StopAsyncIteration
        return item

    async def aclose(self) -> None:
        self._entry.abandoned = True
        self._finished = True
        # Wake a consumer already blocked in __anext__'s queue.get() — the
        # abandonment flag alone can never reach it (deliveries stop).
        self._entry.queue.put_nowait(_DONE)

    def __del__(self) -> None:
        # GC can only collect an un-awaited stream (a blocked __anext__ holds
        # a reference), so flagging without a wake-up is enough here — and
        # put_nowait would not be safe from an arbitrary GC thread.
        self._entry.abandoned = True


class AsyncResilienceServer:
    """An asyncio front-end multiplexing workloads onto one warm server.

    Args:
        server: the :class:`~repro.service.server.ResilienceServer` to serve
            through — or a database, from which a server is built with the
            remaining keyword arguments (``max_workers``, ``parallel``,
            ``cache``, ``store``).  The async server *owns* the underlying
            server either way: closing the front-end closes it.
        max_queue_depth: bound on *waiting* workloads; a submission arriving
            at the bound is rejected with structured
            :data:`~repro.service.outcome.ADMISSION_REJECTED` outcomes
            instead of queueing without limit.
        round_share: per-workload concurrency share — the maximum number of
            queries one workload may contribute to a single serving round
            (``None``: a workload always contributes all of its remaining
            queries).
        autostart: start the drain thread lazily on the first submission
            (default).  ``autostart=False`` keeps every submission queued
            until :meth:`start` is called — the seam the admission-order
            tests (and pre-loading ops tooling) use.

    Use as an async context manager, or call :meth:`close` /
    :meth:`aclose`.  All methods are safe to call from one event loop;
    workloads may also be submitted from several event loops in different
    threads (each iterator is bound to its submitting loop).
    """

    def __init__(
        self,
        server: ResilienceServer | AnyDatabase,
        *,
        max_queue_depth: int = 64,
        round_share: int | None = None,
        autostart: bool = True,
        max_workers: int | None = None,
        parallel: bool = True,
        cache: LanguageCache | None = None,
        store=None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1 (got {max_queue_depth})")
        if round_share is not None and round_share < 1:
            raise ValueError(f"round_share must be >= 1 or None (got {round_share})")
        if isinstance(server, ResilienceServer):
            if max_workers is not None or cache is not None or store is not None or parallel is not True:
                raise ValueError(
                    "max_workers/parallel/cache/store configure a server built from a "
                    "database; an existing ResilienceServer already owns them"
                )
            self._server = server
        else:
            self._server = ResilienceServer(
                server, max_workers=max_workers, parallel=parallel, cache=cache, store=store
            )
        self._max_queue_depth = max_queue_depth
        self._round_share = round_share
        self._autostart = autostart

        # Reentrant: expiry runs under the lock and delivers outcomes, whose
        # latency recording takes the lock again.
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._waiting: dict[int, deque[_Admission]] = {}
        self._seq = 0
        self._drain_log: deque[tuple[int, int]] = deque(maxlen=4096)
        self._drain_thread: threading.Thread | None = None
        self._closing = False
        self._closed = False
        self._admitted: dict[int, int] = {}
        self._rejected: dict[int, int] = {}
        self._deadline_expired = 0
        self._in_flight = 0
        self._latency: dict[str, LatencyHistogram] = {}
        self._endpoints: list[MetricsEndpoint] = []

    # ------------------------------------------------------------------ accessors

    @property
    def server(self) -> ResilienceServer:
        """The wrapped warm server (owned: closed with the front-end)."""
        return self._server

    @property
    def cache(self) -> LanguageCache:
        return self._server.cache

    @property
    def database(self) -> AnyDatabase:
        return self._server.database

    def worker_pids(self) -> frozenset[int]:
        """PIDs of the shared pool's workers — stable PIDs across concurrent
        workloads prove they share one warm pool (the acceptance observable)."""
        return self._server.worker_pids()

    def drain_log(self) -> tuple[tuple[int, int], ...]:
        """Diagnostic: ``(priority, submission_seq)`` per workload per round,
        in serving order (bounded: the most recent 4096 entries).  The
        admission-order tests assert on this — with every workload queued
        before :meth:`start`, priorities must be non-decreasing and
        same-class workloads must first appear in submission order."""
        with self._lock:
            return tuple(self._drain_log)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the drain thread (idempotent; implicit when ``autostart``)."""
        with self._lock:
            if self._closing or self._closed:
                raise ReproError("this AsyncResilienceServer is closed")
            self._start_locked()

    def _start_locked(self) -> None:
        if self._drain_thread is None:
            self._drain_thread = threading.Thread(
                target=self._drain_loop, name="async-resilience-drain", daemon=True
            )
            self._drain_thread.start()

    def close(self) -> None:
        """Drain down and close (idempotent): stop admissions, finish the
        in-flight round, fail still-waiting workloads with structured
        ``"error"`` outcomes, shut metrics endpoints and the wrapped server.
        Blocking — from async code, use :meth:`aclose`."""
        with self._lock:
            already = self._closed
            self._closing = True
            self._wake.notify_all()
            thread = self._drain_thread
        if thread is not None:
            thread.join()
        with self._lock:
            leftovers = [entry for queue in self._waiting.values() for entry in queue]
            self._waiting.clear()
            self._closed = True
        for entry in leftovers:
            self._fail_entry(entry, "ServerClosed: async server closed before serving")
        if not already:
            endpoints, self._endpoints = self._endpoints, []
            for endpoint in endpoints:
                endpoint.close()
            self._server.close()

    async def aclose(self) -> None:
        """Async-friendly :meth:`close` (runs it on the default executor)."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    async def __aenter__(self) -> "AsyncResilienceServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __enter__(self) -> "AsyncResilienceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ admission

    async def submit(
        self,
        workload: Workload | Iterable[QuerySpec | QueryLike],
        *,
        priority: int = 0,
        deadline: float | None = None,
    ) -> AsyncIterator[QueryOutcome]:
        """Admit a workload; iterate its outcomes as they complete.

        Args:
            workload: anything :meth:`~repro.service.workload.Workload.coerce`
                accepts.
            priority: admission class — **lower is served first**; FIFO
                within a class.
            deadline: maximum seconds the workload may *wait in the queue*.
                Expiring unserved rejects it with ``admission-rejected``
                outcomes; once serving starts the deadline no longer applies.

        Returns:
            an async iterator yielding exactly one
            :class:`~repro.service.outcome.QueryOutcome` per query, with
            workload-local ``index`` — re-sort by it to reproduce the
            blocking :meth:`~repro.service.server.ResilienceServer.serve`
            list.  A rejected submission yields one
            :data:`~repro.service.outcome.ADMISSION_REJECTED` outcome per
            query instead of raising.

        Raises:
            ReproError: on a closed server (the one non-graceful refusal: the
                pool is gone, so no later capacity can serve a retry).
        """
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds (got {deadline})")
        fleet = Workload.coerce(workload)
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        entry = _Admission(
            priority=priority,
            deadline_at=None if deadline is None else now + deadline,
            specs=fleet.specs,
            queue=asyncio.Queue(),
            loop=loop,
            submitted_at=now,
        )
        with self._lock:
            if self._closing or self._closed:
                raise ReproError("this AsyncResilienceServer is closed")
            self._seq += 1
            entry.seq = self._seq
            if entry.remaining == 0:
                # An empty workload needs no queue slot: complete it at once,
                # admitted whatever the queue depth.
                self._admitted[priority] = self._admitted.get(priority, 0) + 1
                entry.queue.put_nowait(_DONE)
                return self._outcomes(entry)
            # Expire overdue waiters first: a dead workload must neither
            # occupy a depth slot nor keep its consumer waiting for the
            # drain to reach its priority class.
            self._sweep_expired_locked()
            depth = sum(len(queue) for queue in self._waiting.values())
            if depth >= self._max_queue_depth:
                self._rejected[priority] = self._rejected.get(priority, 0) + 1
                self._reject_locked(
                    entry,
                    f"AdmissionRejected: queue depth {depth} at bound "
                    f"{self._max_queue_depth}",
                )
                return self._outcomes(entry)
            self._admitted[priority] = self._admitted.get(priority, 0) + 1
            self._waiting.setdefault(priority, deque()).append(entry)
            if self._autostart:
                self._start_locked()
            self._wake.notify_all()
        return self._outcomes(entry)

    def _reject_locked(self, entry: _Admission, reason: str) -> None:
        """Fill a never-queued entry with ``admission-rejected`` outcomes.

        Runs on the submitting thread (entry queue untouched by the drain),
        so outcomes go straight onto the asyncio queue.
        """
        elapsed = time.monotonic() - entry.submitted_at
        histogram = self._latency.setdefault(ADMISSION_REJECTED, LatencyHistogram())
        for outcome in _synthetic_outcomes(entry.specs, ADMISSION_REJECTED, reason):
            histogram.record(elapsed)
            entry.queue.put_nowait(outcome)
        entry.queue.put_nowait(_DONE)
        entry.remaining = 0

    def _outcomes(self, entry: _Admission) -> "_OutcomeStream":
        return _OutcomeStream(entry)

    # ------------------------------------------------------------------ draining

    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._closing and not any(self._waiting.values()):
                    self._wake.wait()
                if self._closing:
                    return  # close() fails whatever is still waiting
                round_slices = self._pop_round_locked()
                self._in_flight = len(round_slices)
            try:
                if round_slices:
                    self._serve_round(round_slices)
            finally:
                with self._lock:
                    self._in_flight = 0

    def _pop_round_locked(self) -> list[tuple[_Admission, int, int]]:
        """Pop the next round: the best priority class's waiting workloads.

        Returns ``(entry, start, stop)`` spec slices, each capped at the
        round share.  Abandoned entries are dropped; expired waiters are
        rejected *across every class* first (an expired low-priority
        workload behind sustained high-priority traffic must not wait for
        its class's turn to learn it was rejected).  Partially contributed
        entries are re-queued by :meth:`_serve_round` after the round
        completes.
        """
        self._sweep_expired_locked()
        while True:
            classes = sorted(priority for priority, queue in self._waiting.items() if queue)
            if not classes:
                return []
            queue = self._waiting[classes[0]]
            slices: list[tuple[_Admission, int, int]] = []
            while queue:
                entry = queue.popleft()
                if entry.abandoned:
                    continue
                start = entry.next_offset
                stop = (
                    len(entry.specs)
                    if self._round_share is None
                    else min(len(entry.specs), start + self._round_share)
                )
                entry.next_offset = stop
                entry.in_round = True
                slices.append((entry, start, stop))
                self._drain_log.append((entry.priority, entry.seq))
            if slices:
                return slices
            # the class emptied out (abandons/expiries): try the next one

    def _sweep_expired_locked(self) -> None:
        """Drop dead waiters: expired deadlines (rejected) and abandoned
        iterators (discarded — nobody is listening).

        Runs on both admission (submit) and drain (round pop), so a dead
        workload stops occupying a queue-depth slot promptly even while the
        drain is busy with other priority classes.  Only never-started
        workloads expire — a workload whose first round ran always
        completes.
        """
        now = time.monotonic()
        for queue in self._waiting.values():
            for entry in [entry for entry in queue if entry.abandoned]:
                queue.remove(entry)
            expired = [
                entry
                for entry in queue
                if entry.deadline_at is not None
                and entry.next_offset == 0
                and now > entry.deadline_at
            ]
            for entry in expired:
                queue.remove(entry)
                self._expire_locked(entry)

    def _expire_locked(self, entry: _Admission) -> None:
        self._rejected[entry.priority] = self._rejected.get(entry.priority, 0) + 1
        self._deadline_expired += 1
        waited = time.monotonic() - entry.submitted_at
        reason = f"AdmissionRejected: deadline expired after {waited:.3f}s in queue"
        for outcome in _synthetic_outcomes(entry.specs, ADMISSION_REJECTED, reason):
            self._deliver(entry, outcome)

    def _serve_round(self, slices: list[tuple[_Admission, int, int]]) -> None:
        """Serve one merged round on the shared warm server and route outcomes.

        The merged workload concatenates each entry's spec slice; outcome
        indices come back merged-global and are rewritten to workload-local
        before delivery.  Any raise out of ``serve_iter`` itself (closed
        server, broken beyond retry) fails every undelivered query of the
        round structurally — per-query failures are already outcomes.
        """
        merged: list[QuerySpec] = []
        routing: list[tuple[_Admission, int]] = []
        for entry, start, stop in slices:
            for local in range(start, stop):
                routing.append((entry, local))
                merged.append(entry.specs[local])
        delivered = [False] * len(routing)
        try:
            iterator = self._server.serve_iter(Workload(tuple(merged)))
            try:
                for outcome in iterator:
                    entry, local = routing[outcome.index]
                    delivered[outcome.index] = True
                    self._deliver(entry, replace(outcome, index=local))
            finally:
                iterator.close()
        except Exception as error:
            reason = f"{type(error).__name__}: {error}"
            for position, (entry, local) in enumerate(routing):
                if not delivered[position]:
                    spec = entry.specs[local]
                    self._deliver(
                        entry,
                        QueryOutcome(
                            index=local,
                            query=spec.display_name(),
                            status=ERROR,
                            method=spec.method,
                            error=reason,
                        ),
                    )
            # Nothing about later specs can work either: fail the tails too,
            # completing every entry of the round instead of re-queueing.
            for entry, _, _ in slices:
                self._fail_entry(entry, reason)
            return
        # Re-queue entries that still have unserved specs (round share hit):
        # they keep their seq, so extendleft preserves FIFO within the class.
        with self._lock:
            partials = [
                entry
                for entry, _, stop in slices
                if stop < len(entry.specs) and not entry.abandoned
            ]
            for entry in reversed(partials):
                entry.in_round = False
                self._waiting.setdefault(entry.priority, deque()).appendleft(entry)

    def _fail_entry(self, entry: _Admission, reason: str) -> None:
        """Deliver ``"error"`` outcomes for every not-yet-served spec."""
        for outcome in _synthetic_outcomes(entry.specs, ERROR, reason, start=entry.next_offset):
            self._deliver(entry, outcome)
        entry.next_offset = len(entry.specs)

    def _deliver(self, entry: _Admission, outcome: QueryOutcome) -> None:
        """Bridge one outcome from the drain thread into the entry's loop."""
        entry.remaining -= 1
        done = entry.remaining <= 0
        with self._lock:
            if done and entry.in_round:
                # Completed workloads leave ``in_flight`` *before* their last
                # outcome reaches the consumer, so a snapshot taken after
                # draining an iterator never still counts it.
                entry.in_round = False
                self._in_flight = max(0, self._in_flight - 1)
            if entry.abandoned:
                return
            histogram = self._latency.setdefault(outcome.status, LatencyHistogram())
            histogram.record(time.monotonic() - entry.submitted_at)
        try:
            entry.loop.call_soon_threadsafe(entry.queue.put_nowait, outcome)
            if done:
                entry.loop.call_soon_threadsafe(entry.queue.put_nowait, _DONE)
        except RuntimeError:
            # The submitting event loop is gone: nobody can consume this
            # stream anymore, so treat the workload as abandoned.
            entry.abandoned = True

    # -------------------------------------------------------------------- metrics

    def metrics(self) -> ServerMetrics:
        """Snapshot the runtime (cache + pool + admission + latency) coherently."""
        with self._lock:
            queued = {
                priority: len(queue) for priority, queue in self._waiting.items() if queue
            }
            admission = AdmissionStats(
                queued=queued,
                admitted=dict(self._admitted),
                rejected=dict(self._rejected),
                deadline_expired=self._deadline_expired,
                depth=sum(queued.values()),
                in_flight=self._in_flight,
            )
            latency = {
                status: histogram.as_dict()
                for status, histogram in sorted(self._latency.items())
            }
        return ServerMetrics(
            cache=self._server.cache.stats.snapshot(),
            pool=self._server.pool_stats(),
            admission=admission,
            latency=latency,
        )

    def metrics_endpoint(self, port: int = 0, *, host: str = "127.0.0.1") -> MetricsEndpoint:
        """Serve :meth:`metrics` as JSON over HTTP for ops tooling to scrape.

        ``port=0`` binds a free port (see the returned endpoint's ``url``).
        Endpoints are closed with the server; call the endpoint's ``close``
        to stop one earlier.
        """
        with self._lock:
            if self._closing or self._closed:
                raise ReproError("this AsyncResilienceServer is closed")
            endpoint = MetricsEndpoint(self.metrics, host=host, port=port)
            self._endpoints.append(endpoint)
            return endpoint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("draining" if self._drain_thread else "idle")
        with self._lock:
            depth = sum(len(queue) for queue in self._waiting.values())
        return (
            f"AsyncResilienceServer({self._server!r}, {state}, depth={depth}, "
            f"bound={self._max_queue_depth})"
        )
