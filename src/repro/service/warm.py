"""Store-warming pass: pre-analyse a query corpus before traffic arrives.

Cold starts pay the full analysis price for every first-seen query class —
parsing, the infix-free construction, classification — and, for repeated
query × database pairs, the resilience computation itself.  This module moves
that cost to a deploy-time pass: :func:`warm_queries` pre-classifies a corpus
of queries into an :class:`~repro.service.cache.AnalysisStore`, and
:func:`warm_trace` additionally pre-computes the results of a
:class:`~repro.traffic.generator.TrafficTrace`'s query mix into a
:class:`~repro.service.cache.ResultStore`, so a fresh process's first serve
reports store hits and **zero** classifications (pinned by
``benchmarks/bench_cache_tier.py``).

The pass is a plain cache client: everything it writes goes through the same
:class:`~repro.service.cache.LanguageCache` code paths a live server uses, so
a warmed store can never diverge from what serving itself would have written.
Run it from the command line as ``python -m repro.service.warm`` (see
``--help``; documented in ``src/repro/service/README.md``).

This module deliberately never imports :mod:`repro.traffic` at module level
(the traffic package imports the service package); :func:`warm_trace`
duck-types the trace — anything with ``.requests`` (each carrying a
``workload`` and a ``database_key``) and ``.databases`` works.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass
from collections.abc import Iterable, Mapping

from ..resilience.engine import reforce_planned_method, resilience, warm_database
from .cache import AnalysisStore, LanguageCache, ResultStore
from .workload import QuerySpec


@dataclass(frozen=True)
class WarmReport:
    """What one warming pass did (returned by the warm functions and the CLI).

    Attributes:
        queries: corpus entries processed (specs, strings or languages).
        classes: distinct canonical language classes seen.
        classifications: classifications actually run — entries already
            present in the analysis store resolve without one.
        analyses_written: entries written to the analysis store.
        results_computed: resilience computations executed for the result
            store (already-stored keys are skipped).
        results_written: entries written to the result store.
        skipped: corpus entries that failed to analyse (parse errors,
            inapplicable forced methods, ...) — warming is best-effort, a bad
            corpus entry never aborts the pass.
        compacted: store entries evicted by the post-pass compaction.
    """

    queries: int = 0
    classes: int = 0
    classifications: int = 0
    analyses_written: int = 0
    results_computed: int = 0
    results_written: int = 0
    skipped: tuple[str, ...] = ()
    compacted: int = 0

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["skipped"] = list(self.skipped)
        return payload


def _as_spec(entry) -> QuerySpec:
    return entry if isinstance(entry, QuerySpec) else QuerySpec(entry)


def warm_queries(
    corpus: Iterable,
    *,
    store: AnalysisStore,
    result_store: ResultStore | None = None,
    databases: "Mapping[str, object] | Iterable | None" = None,
    cache: LanguageCache | None = None,
) -> WarmReport:
    """Pre-classify a query corpus into an analysis store.

    ``corpus`` holds queries (strings, languages, RPQs) or full
    :class:`QuerySpec` items.  With ``result_store`` and ``databases``, the
    pass additionally computes and persists each query's resilience on every
    database — budget fields on specs are ignored (results are budget-blind;
    see :meth:`LanguageCache.lookup_result`).  Pass ``cache`` to reuse a
    pre-configured cache (it must carry the same stores).
    """
    if cache is None:
        cache = LanguageCache(store=store, result_store=result_store)
    specs = [_as_spec(entry) for entry in corpus]
    skipped: list[str] = []
    writes_before = store.stats().writes
    result_writes_before = 0 if result_store is None else result_store.stats().writes
    analysed: list[QuerySpec] = []
    for spec in specs:
        try:
            language = cache.language(spec.query)
            cache.method(language)
        except Exception as error:
            skipped.append(f"{spec.display_name()!r}: {error}")
            continue
        analysed.append(spec)
    computed = 0
    if result_store is not None and databases:
        if isinstance(databases, Mapping):
            database_list = [databases[key] for key in sorted(databases)]
        else:
            database_list = list(databases)
        for database in database_list:
            warm_database(database)
            for spec in analysed:
                computed += _warm_result(cache, spec, database, skipped)
    return WarmReport(
        queries=len(specs),
        classes=cache.stats.canonical_misses,
        classifications=cache.stats.classifications,
        analyses_written=store.stats().writes - writes_before,
        results_computed=computed,
        results_written=(
            0 if result_store is None else result_store.stats().writes - result_writes_before
        ),
        skipped=tuple(skipped),
    )


def _warm_result(cache: LanguageCache, spec: QuerySpec, database, skipped: list[str]) -> int:
    """Compute and store one query × database result; returns computations run."""
    try:
        language = cache.language(spec.query)
        # Deliberately budget-less: a stored result serves only un-budgeted
        # lookups, and a completed computation is budget-independent.
        cached = cache.lookup_result(
            language,
            database,
            semantics=spec.semantics,
            method=spec.method,
            unsafe=spec.unsafe,
        )
        if cached is not None:
            return 0
        run_method, run_unsafe = reforce_planned_method(
            spec.method, spec.unsafe, lambda: cache.method(language)
        )
        result = resilience(
            language,
            database,
            method=run_method,
            unsafe=run_unsafe,
            semantics=spec.semantics,
        )
        cache.store_result(
            language,
            database,
            result,
            semantics=spec.semantics,
            method=spec.method,
            unsafe=spec.unsafe,
        )
        return 1
    except Exception as error:
        skipped.append(f"{spec.display_name()!r}: {error}")
        return 0


def warm_trace(
    trace,
    *,
    store: AnalysisStore,
    result_store: ResultStore | None = None,
    results: bool = True,
) -> WarmReport:
    """Warm the stores with a traffic trace's exact query mix.

    ``trace`` is duck-typed to :class:`~repro.traffic.generator.TrafficTrace`:
    ``.requests`` (each with ``.workload`` iterating specs and a
    ``.database_key``) and ``.databases`` (key → database).  Every distinct
    spec is analysed once; with ``results=True`` (and a ``result_store``),
    each spec's resilience is computed against exactly the databases its
    requests target — the warm set matches what serving the trace would
    compute, no more.
    """
    cache = LanguageCache(store=store, result_store=result_store)
    by_database: dict[str, list[QuerySpec]] = {}
    seen: set[tuple[str, tuple]] = set()
    corpus: list[QuerySpec] = []
    for request in trace.requests:
        for spec in request.workload:
            dedup_key = (
                request.database_key,
                (spec.display_name(), spec.method, spec.semantics, spec.unsafe),
            )
            if dedup_key in seen:
                continue
            seen.add(dedup_key)
            corpus.append(spec)
            by_database.setdefault(request.database_key, []).append(spec)
    report = warm_queries(corpus, store=store, result_store=None, cache=cache)
    computed = 0
    skipped = list(report.skipped)
    if results and result_store is not None:
        for key in sorted(by_database):
            database = trace.databases[key]
            warm_database(database)
            for spec in by_database[key]:
                computed += _warm_result(cache, spec, database, skipped)
    return WarmReport(
        queries=report.queries,
        classes=report.classes,
        classifications=report.classifications,
        analyses_written=report.analyses_written,
        results_computed=computed,
        results_written=0 if result_store is None else result_store.stats().writes,
        skipped=tuple(skipped),
    )


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro.service.warm`` — warm stores from a corpus.

    The corpus is either ad-hoc queries (``--query``, repeatable) or a
    generated :class:`~repro.traffic.generator.TrafficTrace`
    (``--trace-seed`` / ``--trace-requests``, using the default traffic
    profile — the same corpus ``BENCH_soak`` serves).  Prints a JSON
    :class:`WarmReport` to stdout.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.warm",
        description="Pre-classify a query corpus into shared analysis/result stores.",
    )
    parser.add_argument(
        "--analysis-store", required=True, metavar="DIR",
        help="directory of the AnalysisStore to warm",
    )
    parser.add_argument(
        "--result-store", metavar="DIR",
        help="directory of the ResultStore to warm (optional)",
    )
    parser.add_argument(
        "--query", action="append", default=[], metavar="REGEX",
        help="ad-hoc corpus query (repeatable)",
    )
    parser.add_argument(
        "--trace-seed", type=int, metavar="N",
        help="warm from a generated TrafficTrace with this seed",
    )
    parser.add_argument(
        "--trace-requests", type=int, default=32, metavar="N",
        help="requests in the generated trace (default 32)",
    )
    parser.add_argument(
        "--compact-entries", type=int, metavar="N",
        help="after warming, bound each store to N entries (oldest evicted)",
    )
    parser.add_argument(
        "--compact-age", type=float, metavar="SECONDS",
        help="after warming, drop store entries older than SECONDS",
    )
    options = parser.parse_args(argv)
    if not options.query and options.trace_seed is None:
        parser.error("nothing to warm: pass --query and/or --trace-seed")

    store = AnalysisStore(options.analysis_store)
    result_store = None if options.result_store is None else ResultStore(options.result_store)

    reports: list[WarmReport] = []
    if options.trace_seed is not None:
        # Imported here, not at module level: repro.traffic imports the
        # service package, so a module-level import would be circular.
        from ..traffic.generator import TrafficProfile, generate_traffic

        trace = generate_traffic(
            TrafficProfile(seed=options.trace_seed, requests=options.trace_requests)
        )
        reports.append(warm_trace(trace, store=store, result_store=result_store))
    if options.query:
        reports.append(
            warm_queries(options.query, store=store, result_store=result_store)
        )

    compacted = 0
    if options.compact_entries is not None or options.compact_age is not None:
        for target in (store, result_store):
            if target is not None:
                compacted += target.compact(
                    max_entries=options.compact_entries,
                    max_age_seconds=options.compact_age,
                )

    merged = WarmReport(
        queries=sum(r.queries for r in reports),
        classes=sum(r.classes for r in reports),
        classifications=sum(r.classifications for r in reports),
        analyses_written=sum(r.analyses_written for r in reports),
        results_computed=sum(r.results_computed for r in reports),
        results_written=sum(r.results_written for r in reports),
        skipped=tuple(line for r in reports for line in r.skipped),
        compacted=compacted,
    )
    json.dump(merged.as_dict(), sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    raise SystemExit(main())
