"""A persistent serving runtime: warm worker pool + streamed outcomes.

:class:`ResilienceServer` owns one database and (lazily) one
:class:`~concurrent.futures.ProcessPoolExecutor`.  The pool outlives
individual :meth:`serve` calls: the database is shipped to each worker exactly
once — through the pool initializer, when the pool is created — and every
subsequent workload reuses the already-forked, already-warmed workers.  This
amortizes the dominant fixed costs of :func:`~repro.service.serve.resilience_serve`
(fork + database pickle + index warm-up) across a session.

Two consumption styles:

* :meth:`serve` returns the full outcome list in workload order — identical
  to :func:`~repro.service.serve.resilience_serve` for the same inputs;
* :meth:`serve_iter` yields each :class:`~repro.service.outcome.QueryOutcome`
  as it completes (planning failures first, then execution results in
  completion order), so callers see flow-tractable answers while exact
  stragglers are still searching.  Re-sorting the streamed outcomes by
  ``index`` reproduces :meth:`serve` exactly — pinned by the conformance
  suite.

Fault tolerance: a worker process dying (OOM kill, hard crash) breaks a
:class:`ProcessPoolExecutor` permanently.  The server discards the broken
pool, transparently re-runs each affected chunk once on a fresh pool, and
only reports ``"error"`` outcomes for queries that fail a second time — a
single crash usually costs latency, not answers, and never the server.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable, Iterator, Mapping
from concurrent.futures import FIRST_COMPLETED, CancelledError, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, fields

from ..exceptions import ReproError
from ..graphdb.database import BagGraphDatabase, GraphDatabase
from ..resilience.engine import warm_database
from ..resilience.result import ResilienceResult
from ..resilience.store import AnalysisStore
from .cache import LanguageCache
from .cancellation import CancellationToken, cancel_lookup, make_cancel_flags
from .outcome import ERROR, OK, QueryOutcome
from .scheduler import ScheduledQuery, plan_workload, runs_exact_class
from .serve import _execute, _worker_init, _worker_run_many, cancelled_outcome
from .workload import QueryLike, QuerySpec, Workload

AnyDatabase = GraphDatabase | BagGraphDatabase

#: Width of the shared cancel-flag array each server allocates: the number of
#: distinct workload tokens one serve call can bind for worker-side checks.
#: Tokens beyond it (or on non-fork platforms) still get parent-side and
#: deadline checks — binding is an optimization, never a correctness need.
CANCEL_SLOTS = 128

#: ``cancel=`` argument shape accepted by the serve entry points.
CancelArg = CancellationToken | Mapping[int, CancellationToken] | None

#: How long :meth:`ResilienceServer._stream` waits on in-flight futures
#: before re-poking the pool's management thread (see :func:`_nudge_pool`).
WAKEUP_NUDGE_SECONDS = 0.25


def _nudge_pool(pool: ProcessPoolExecutor | None) -> None:
    """Poke a pool's management thread awake (CPython < 3.12 lost wakeup).

    Before 3.12 (python/cpython#105829), ``_ThreadWakeup.wakeup`` and
    ``clear`` race: the management thread can drain the wake byte of a
    submit it has not yet seen, then block in select with the work item
    still sitting in ``_pending_work_items`` — a permanent hang unless a
    later submit or result arrives, which the last chunk of a round never
    gets.  Re-writing one byte into the (private, hence the defensive
    ``except``) wakeup pipe makes the management thread re-run its
    pending-work scan; sent under ``_shutdown_lock`` exactly like
    ``submit`` does, and harmless when the race never happened.
    """
    if pool is None:
        return
    try:
        wakeup = pool._executor_manager_thread_wakeup
        with pool._shutdown_lock:
            if not pool._broken and not wakeup._closed:
                wakeup.wakeup()
    except (AttributeError, OSError, RuntimeError):  # pragma: no cover
        pass  # internals moved or the pool is tearing down: nothing to nudge


@dataclass(frozen=True)
class PoolStats:
    """A point-in-time snapshot of one server's worker-pool activity.

    Counters are cumulative over the server's lifetime (pool replacements
    included), so deltas between snapshots are meaningful.  Part of the
    metrics surface scraped by the async front-end's
    :meth:`~repro.service.async_server.AsyncResilienceServer.metrics`.

    Attributes:
        pools_created: process pools forked so far (1 on a healthy warm
            server; each crash replacement or width growth adds one).
        pool_width: worker count of the live pool (0 while cold/closed).
        worker_pids: PIDs of the live workers, sorted (empty while cold).
        chunks_dispatched: tasks submitted to a pool, retries included.
        chunks_retried: crashed chunks re-dispatched onto a fresh pool.
        crashes: ``BrokenProcessPool`` events observed (worker deaths).
    """

    pools_created: int
    pool_width: int
    worker_pids: tuple[int, ...]
    chunks_dispatched: int
    chunks_retried: int
    crashes: int

    def as_dict(self) -> dict:
        """The snapshot as a plain dict — the metrics-surface serialization."""
        payload = asdict(self)
        payload["worker_pids"] = list(self.worker_pids)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PoolStats":
        """Rebuild a snapshot from :meth:`as_dict` output (the wire format)."""
        data = {field.name: payload[field.name] for field in fields(cls)}
        data["worker_pids"] = tuple(data["worker_pids"])
        return cls(**data)

    @classmethod
    def aggregate(cls, parts: Iterable["PoolStats"]) -> "PoolStats":
        """Combine per-node snapshots into one fleet-wide snapshot.

        Counters sum; ``pool_width`` sums (total live workers across nodes);
        ``worker_pids`` concatenates sorted.  Aggregating a single snapshot is
        the identity, which keeps the one-node metrics surface unchanged.
        """
        pools_created = pool_width = chunks_dispatched = chunks_retried = crashes = 0
        pids: list[int] = []
        for part in parts:
            pools_created += part.pools_created
            pool_width += part.pool_width
            chunks_dispatched += part.chunks_dispatched
            chunks_retried += part.chunks_retried
            crashes += part.crashes
            pids.extend(part.worker_pids)
        return cls(
            pools_created=pools_created,
            pool_width=pool_width,
            worker_pids=tuple(sorted(pids)),
            chunks_dispatched=chunks_dispatched,
            chunks_retried=chunks_retried,
            crashes=crashes,
        )


class ResilienceServer:
    """Serve resilience workloads against one database with a warm worker pool.

    Args:
        database: the set or bag database every workload runs against.  One
            server, one database: the workers' copy is shipped once and kept
            warm, so serving a different database requires a different server
            (:meth:`serve` raises on a mismatched explicit ``database=``).
        max_workers: pool width cap; defaults to ``os.cpu_count()``.  The pool
            is created on the first parallel call, sized to
            ``min(max_workers, that call's query count)``.
        parallel: ``False`` pins the server to the serial in-process path
            (identical outcomes, no pool) — useful as the reference
            configuration in differential tests.
        cache: optional session :class:`LanguageCache` (a fresh canonical
            cache by default).  The cache lives in the *parent* process:
            planning dedupes equal and equivalent queries before anything is
            shipped to a worker.
        store: optional :class:`~repro.resilience.store.AnalysisStore`
            persisting analyses across processes; mutually exclusive with
            ``cache`` (pass ``LanguageCache(store=...)`` to combine).

    Use as a context manager (or call :meth:`close`) to release the pool.
    """

    def __init__(
        self,
        database: AnyDatabase,
        *,
        max_workers: int | None = None,
        parallel: bool = True,
        cache: LanguageCache | None = None,
        store: AnalysisStore | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1 (got {max_workers})")
        if cache is not None and store is not None:
            raise ValueError(
                "pass the store through the cache (LanguageCache(store=...)), not both"
            )
        self._database = database
        self._max_workers = max_workers
        self._parallel = parallel
        self._cache = cache if cache is not None else LanguageCache(store=store)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_width = 0
        self._closed = False
        self._pools_created = 0
        self._chunks_dispatched = 0
        self._chunks_retried = 0
        self._crashes = 0
        # Shared cancel-flag bytes, inherited by workers at pool fork (fork
        # start method only — ``None`` elsewhere).  Allocated up front so
        # every pool this server ever forks shares the same mapping.
        self._cancel_flags = make_cancel_flags(CANCEL_SLOTS)
        self._free_slots = list(range(CANCEL_SLOTS - 1, -1, -1))

    # ------------------------------------------------------------------ accessors

    @property
    def database(self) -> AnyDatabase:
        return self._database

    @property
    def cache(self) -> LanguageCache:
        """The session language cache shared by every call on this server."""
        return self._cache

    @property
    def database_fingerprint(self) -> str:
        """Content digest of the served database (stable across processes)."""
        return self._database.content_fingerprint()

    def worker_pids(self) -> frozenset[int]:
        """PIDs of the live pool workers (empty before the first parallel call).

        Diagnostic surface for tests and operators: unchanged PIDs across
        :meth:`serve` calls prove the pool stayed warm (no re-fork).
        """
        if self._pool is None:
            return frozenset()
        return frozenset(self._pool._processes or ())

    def pool_stats(self) -> PoolStats:
        """Snapshot the pool's lifetime activity counters (see :class:`PoolStats`)."""
        return PoolStats(
            pools_created=self._pools_created,
            pool_width=self._pool_width,
            worker_pids=tuple(sorted(self.worker_pids())),
            chunks_dispatched=self._chunks_dispatched,
            chunks_retried=self._chunks_retried,
            crashes=self._crashes,
        )

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Shut down the worker pool (idempotent); the server refuses further calls."""
        self._discard_pool(wait=True)
        self._closed = True

    def __enter__(self) -> "ResilienceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _discard_pool(self, *, wait: bool) -> None:
        pool, self._pool = self._pool, None
        self._pool_width = 0
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def _ensure_pool(self, task_count: int) -> ProcessPoolExecutor:
        """Return the warm pool, creating (or replacing) one on demand.

        The pool is replaced when it is known-broken (best-effort check here;
        a broken pool that slips through is caught by the submit-time retry in
        :meth:`_stream`) and when a larger workload arrives than the pool was
        sized for — growth re-forks once, but a small warm-up call must not
        cap throughput for the rest of the session.  The pool never shrinks.

        Raises :class:`~repro.exceptions.ReproError` on a closed server (a
        generator resumed after :meth:`close` must never fork a pool nothing
        would shut down; the ``_closed`` guards in :meth:`_stream` make this
        a backstop, not a path).
        """
        if self._closed:
            raise ReproError("this ResilienceServer is closed")
        width = max(1, min(self._max_workers, task_count))
        if self._pool is not None and (
            getattr(self._pool, "_broken", False) or self._pool_width < width
        ):
            self._discard_pool(wait=False)
        if self._pool is None:
            self._pool_width = width
            self._pools_created += 1
            self._pool = ProcessPoolExecutor(
                max_workers=width,
                initializer=_worker_init,
                initargs=(self._database, self._cancel_flags),
            )
        return self._pool

    def _check_serveable(self, database: AnyDatabase | None) -> None:
        if self._closed:
            raise ReproError("this ResilienceServer is closed")
        if database is None or database is self._database:
            return
        if database.content_fingerprint() != self._database.content_fingerprint():
            raise ReproError(
                "this ResilienceServer's warm workers hold a different database; "
                "create a new server to serve another database"
            )

    # ------------------------------------------------------------------ serving

    def serve(
        self,
        workload: Workload | Iterable[QuerySpec | QueryLike],
        *,
        database: AnyDatabase | None = None,
        cancel: CancelArg = None,
    ) -> list[QueryOutcome]:
        """Serve one workload; outcomes in workload order.

        Outcome-identical to :func:`~repro.service.serve.resilience_serve`
        with the same arguments — the warm pool changes cost, never results.
        ``database`` is an optional cross-check: serving is always against the
        server's own database, and a different one raises instead of silently
        answering from the warm copy.
        """
        outcomes = list(self.serve_iter(workload, database=database, cancel=cancel))
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes

    def serve_iter(
        self,
        workload: Workload | Iterable[QuerySpec | QueryLike],
        *,
        database: AnyDatabase | None = None,
        cancel: CancelArg = None,
    ) -> Iterator[QueryOutcome]:
        """Yield outcomes as they complete (planning failures first).

        The multiset of yielded outcomes is exactly :meth:`serve`'s list;
        only the order differs, and only on the parallel path (serially,
        execution order is the scheduler's flow-first order).  Flow-tractable
        queries are batched several to a task, so their outcomes stream at
        chunk granularity; exact queries stream one by one.

        ``cancel`` threads cooperative cancellation through execution: one
        :class:`~repro.service.cancellation.CancellationToken` covering the
        whole workload, or a mapping of workload index to token (the merged
        async round keeps a token per admission).  A tripped token's
        not-yet-executed queries — including the tail of a chunk already on a
        worker — surface as structured skipped outcomes instead of running;
        already-completed outcomes of the call are unaffected, so the
        one-outcome-per-query contract survives cancellation.
        """
        self._check_serveable(database)
        fleet = Workload.coerce(workload)
        scheduled, failed = plan_workload(fleet, self._cache)
        failed.sort(key=lambda outcome: outcome.index)
        # Result-level cache: queries whose (class, database, semantics,
        # method) tuple was answered by an earlier serve on this session's
        # cache replay the memoized result without touching the pool.  The
        # lookup happens here — at planning time, before anything executes —
        # so a query never observes results produced later in its own call,
        # keeping serial and parallel serving outcome-identical.
        hits: list[QueryOutcome] = []
        to_run: list[ScheduledQuery] = []
        for item in scheduled:
            cached = self._cache.lookup_result(
                item.language,
                self._database,
                semantics=item.spec.semantics,
                method=item.spec.method,
                unsafe=item.spec.unsafe,
                max_nodes=item.spec.max_nodes,
                max_seconds=item.spec.max_seconds,
            )
            if cached is None:
                to_run.append(item)
            else:
                hits.append(self._hit_outcome(item, cached))
        return self._stream(to_run, failed + hits, cancel)

    def _tokens_for(
        self, scheduled: list[ScheduledQuery], cancel: CancelArg
    ) -> dict[int, CancellationToken]:
        """Map each scheduled item's workload index to its cancel token."""
        lookup = cancel_lookup(cancel)
        if lookup is None:
            return {}
        tokens: dict[int, CancellationToken] = {}
        for item in scheduled:
            token = lookup(item.index)
            if token is not None:
                tokens[item.index] = token
        return tokens

    def _stream(
        self,
        scheduled: list[ScheduledQuery],
        failed: list[QueryOutcome],
        cancel: CancelArg = None,
    ) -> Iterator[QueryOutcome]:
        yield from failed
        if not scheduled:
            return
        tokens = self._tokens_for(scheduled, cancel)
        if not self._parallel or self._max_workers == 1 or len(scheduled) == 1:
            warm_database(self._database)
            for item in scheduled:
                token = tokens.get(item.index)
                state = token.state() if token is not None else None
                if state is not None:
                    yield cancelled_outcome(item, *state)
                    continue
                outcome = _execute(item, self._database)
                self._record_outcome(item, outcome)
                yield outcome
            return

        if self._closed:
            # The generator was resumed after close(): never fork a new pool
            # on a closed server, fail the remaining work structurally.
            yield from self._crash_outcomes(
                scheduled, "PoolShutDown: server closed before execution"
            )
            return
        self._ensure_pool(len(scheduled))
        # Bind each distinct token to a shared flag byte so the in-flight
        # chunk loop on the workers sees explicit cancellations; the control
        # map ships (slot, deadline) per query with every chunk.
        control, bound_tokens = self._bind_tokens(tokens)
        # Batch the cheap flow queries so they don't pay one IPC round-trip
        # (plus a Language pickle) each, but hand the potentially exponential
        # exact queries out one at a time — chunking them would pack the tail
        # of the schedule onto one or two workers.
        flow_items = [item for item in scheduled if not runs_exact_class(item.planned_method)]
        exact_items = [item for item in scheduled if runs_exact_class(item.planned_method)]
        chunksize = max(1, len(flow_items) // (self._pool_width * 4))
        tasks = [
            flow_items[start : start + chunksize]
            for start in range(0, len(flow_items), chunksize)
        ] + [[item] for item in exact_items]

        # Each future remembers the pool it was submitted to (when a worker
        # crash breaks a pool mid-stream, only that pool is discarded — a
        # replacement pool created by a retry must survive) and its attempt
        # number: a chunk that fell victim to a crash is retried once on a
        # fresh pool before its queries are failed structurally, so a single
        # worker death usually costs latency, not answers.
        pending: dict[Future, tuple[list[ScheduledQuery], ProcessPoolExecutor, int]] = {}

        def dispatch(chunk: list[ScheduledQuery], attempt: int) -> Future | None:
            future = self._submit(chunk, len(scheduled), control)
            if future is not None:
                pending[future] = (chunk, self._pool, attempt)
            return future

        def retry_or_fail(
            chunk: list[ScheduledQuery], attempt: int, reason: str
        ) -> Iterator[QueryOutcome]:
            if not self._closed and attempt < 1 and dispatch(chunk, attempt + 1) is not None:
                self._chunks_retried += 1
                return iter(())  # resubmitted on the replacement pool
            return self._crash_outcomes(chunk, reason)

        try:
            for chunk in tasks:
                if tokens:
                    # Dispatch-time check point: a token tripped after
                    # planning stops its queries from ever reaching the pool.
                    live: list[ScheduledQuery] = []
                    now = time.monotonic()
                    for item in chunk:
                        token = tokens.get(item.index)
                        state = token.state(now) if token is not None else None
                        if state is not None:
                            yield cancelled_outcome(item, *state)
                        else:
                            live.append(item)
                    if not live:
                        continue
                    chunk = live
                if self._closed:
                    # The generator was resumed after close(): never fork a
                    # new pool on a closed server, fail the work structurally.
                    yield from self._crash_outcomes(
                        chunk, "PoolShutDown: server closed before execution"
                    )
                elif dispatch(chunk, 0) is None:
                    # The pool broke twice in a row (fresh replacement
                    # included); fail the chunk's queries structurally.
                    yield from self._crash_outcomes(
                        chunk, "BrokenProcessPool: worker pool broke before execution"
                    )
            while pending:
                # Futures whose pool was discarded under us (close() between
                # resumptions of this generator, or a crash replacement) may
                # never complete — and the ones shutdown() cancelled linger in
                # CANCELLED state without the notification wait() blocks on
                # (only the executor's own machinery promotes a future to
                # CANCELLED_AND_NOTIFIED).  Retry or fail them structurally
                # instead of blocking in wait() forever.
                orphaned = [
                    future
                    for future, (_, pool, _) in pending.items()
                    if pool is not self._pool and (future.cancelled() or not future.done())
                ]
                for future in orphaned:
                    chunk, _, attempt = pending.pop(future)
                    future.cancel()
                    yield from retry_or_fail(
                        chunk, attempt, "PoolShutDown: worker pool was shut down mid-stream"
                    )
                if not pending:
                    break
                done, _ = wait(
                    pending, timeout=WAKEUP_NUDGE_SECONDS, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Nothing finished within the nudge window: either the
                    # chunks are genuinely slow (the nudge is a no-op then)
                    # or the management thread missed a wakeup and the work
                    # never reached the call queue.  The orphan sweep above
                    # guarantees every pending future belongs to the live
                    # pool, so that is the one to poke.
                    _nudge_pool(self._pool)
                    continue
                for future in done:
                    chunk, pool, attempt = pending.pop(future)
                    try:
                        outcomes = future.result()
                        self._record_chunk(chunk, outcomes)
                        yield from outcomes
                    except BrokenProcessPool:
                        self._crashes += 1
                        if self._pool is pool:
                            self._discard_pool(wait=False)
                        yield from retry_or_fail(
                            chunk, attempt, "BrokenProcessPool: worker process died mid-query"
                        )
                    except CancelledError:
                        yield from retry_or_fail(
                            chunk, attempt, "PoolShutDown: task cancelled by pool shutdown"
                        )
                    except Exception as error:  # pragma: no cover - defensive
                        yield from self._crash_outcomes(chunk, f"{type(error).__name__}: {error}")
        finally:
            # Reached on exhaustion, on an abandoned generator (GeneratorExit)
            # and on errors alike: never leave orphaned tasks burning workers.
            for future in pending:
                future.cancel()
            self._unbind_tokens(bound_tokens)

    def _bind_tokens(
        self, tokens: dict[int, CancellationToken]
    ) -> tuple[dict[int, tuple[int | None, float | None]], list[tuple[CancellationToken, int]]]:
        """Bind distinct tokens to flag slots; build the per-query control map.

        Returns ``(control, bound)`` where ``control`` maps workload index to
        ``(slot, deadline_at)`` for every query that needs a worker-side check
        and ``bound`` records the slot leases to release afterwards.  Slot
        exhaustion (or a missing flag array) degrades gracefully: those tokens
        keep parent-side checks and any deadline still ships with the chunk.
        """
        control: dict[int, tuple[int | None, float | None]] = {}
        bound: list[tuple[CancellationToken, int]] = []
        if not tokens:
            return control, bound
        slots_by_token: dict[int, int | None] = {}
        for index, token in tokens.items():
            key = id(token)
            if key not in slots_by_token:
                slot: int | None = None
                if self._cancel_flags is not None and self._free_slots:
                    slot = self._free_slots.pop()
                    token.bind_flag(self._cancel_flags, slot)
                    bound.append((token, slot))
                slots_by_token[key] = slot
            control[index] = (slots_by_token[key], token.deadline_at)
        return control, bound

    def _unbind_tokens(self, bound: list[tuple[CancellationToken, int]]) -> None:
        for token, slot in bound:
            token.unbind_flag()
            if self._cancel_flags is not None:
                self._cancel_flags[slot] = 0
            self._free_slots.append(slot)

    def _submit(
        self,
        chunk: list[ScheduledQuery],
        task_count: int,
        control: dict[int, tuple[int | None, float | None]] | None = None,
    ) -> Future | None:
        """Submit one task, replacing the pool and retrying once if it broke.

        A worker crash breaks a :class:`ProcessPoolExecutor` permanently and
        is only reliably observable at submit time (the ``_broken`` check in
        :meth:`_ensure_pool` is a best-effort fast path over a private flag).
        Returns ``None`` only if even a freshly created pool cannot accept
        work.
        """
        chunk_control = None
        if control:
            chunk_control = {
                item.index: control[item.index] for item in chunk if item.index in control
            } or None
        for _ in range(2):
            pool = self._ensure_pool(task_count)
            try:
                future = pool.submit(_worker_run_many, chunk, chunk_control)
            except (BrokenProcessPool, RuntimeError) as error:
                if isinstance(error, BrokenProcessPool):
                    self._crashes += 1
                self._discard_pool(wait=False)
            else:
                self._chunks_dispatched += 1
                return future
        return None

    @staticmethod
    def _hit_outcome(item: ScheduledQuery, result: ResilienceResult) -> QueryOutcome:
        """Build the outcome of a result-cache hit.

        Field-identical to what :func:`~repro.service.serve._execute` builds
        for the same result — the cache changes cost, never outcomes.
        """
        return QueryOutcome(
            index=item.index,
            query=item.spec.display_name(),
            status=OK,
            method=result.method,
            result=result,
            nodes_explored=result.details.get("nodes_explored"),
        )

    def _record_outcome(self, item: ScheduledQuery, outcome: QueryOutcome) -> None:
        """Feed a completed outcome into the session's result-level cache.

        Successful results are memoized; error and budget-exceeded outcomes
        are counted as ``result_uncacheable`` instead, so the cacheable hit
        rate stays honest under error-heavy traffic.
        """
        if outcome.status == OK and outcome.result is not None:
            self._cache.store_result(
                item.language,
                self._database,
                outcome.result,
                semantics=item.spec.semantics,
                method=item.spec.method,
                unsafe=item.spec.unsafe,
            )
        else:
            self._cache.note_uncacheable_result()

    def _record_chunk(
        self, chunk: list[ScheduledQuery], outcomes: list[QueryOutcome]
    ) -> None:
        by_index = {item.index: item for item in chunk}
        for outcome in outcomes:
            item = by_index.get(outcome.index)
            if item is not None:
                self._record_outcome(item, outcome)

    @staticmethod
    def _crash_outcomes(chunk: list[ScheduledQuery], error: str) -> Iterator[QueryOutcome]:
        for item in chunk:
            yield QueryOutcome(
                index=item.index,
                query=item.spec.display_name(),
                status=ERROR,
                method=item.planned_method,
                error=error,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("warm" if self._pool is not None else "cold")
        return (
            f"ResilienceServer({self._database!r}, max_workers={self._max_workers}, "
            f"{state}, db={self.database_fingerprint[:12]})"
        )
