"""Parallel resilience serving: process-pool fan-out over a planned workload.

:func:`resilience_serve` is the entry point.  It plans the workload
(:func:`~repro.service.scheduler.plan_workload`), then executes every scheduled
query either serially in-process (``parallel=False``) or fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Both paths run the exact
same per-query function on deterministic compiled plans, so they produce
identical outcomes for any workload without ``max_seconds`` budgets (wall
clocks are the one nondeterministic input; see the package docstring) — the
serial mode is the semantics, the pool is purely an execution strategy.

Each worker process receives the database once (through the pool initializer)
and warms its fact index a single time; individual tasks then only ship the
scheduled query, whose language carries its memoized infix-free sublanguage —
workers never recompute the expensive per-query derivations done at planning
time.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor

from ..exceptions import SearchBudgetExceeded
from ..graphdb.database import BagGraphDatabase, GraphDatabase
from ..resilience.engine import reforce_planned_method, resilience, warm_database
from .cache import LanguageCache
from .outcome import BUDGET_EXCEEDED, ERROR, OK, QueryOutcome
from .scheduler import ScheduledQuery, plan_workload, runs_exact_class
from .workload import QueryLike, QuerySpec, Workload

AnyDatabase = GraphDatabase | BagGraphDatabase


def _execute(item: ScheduledQuery, database: AnyDatabase) -> QueryOutcome:
    """Run one scheduled query, converting failures into structured outcomes."""
    spec = item.spec
    try:
        run_method, run_unsafe = reforce_planned_method(
            spec.method, spec.unsafe, lambda: item.planned_method
        )
        result = resilience(
            item.language,
            database,
            method=run_method,
            unsafe=run_unsafe,
            semantics=spec.semantics,
            exact_max_nodes=spec.max_nodes,
            exact_max_seconds=spec.max_seconds,
        )
    except SearchBudgetExceeded as error:
        return QueryOutcome(
            index=item.index,
            query=spec.display_name(),
            status=BUDGET_EXCEEDED,
            method=item.planned_method,
            error=f"{type(error).__name__}: {error}",
            nodes_explored=error.nodes_explored,
        )
    except Exception as error:
        return QueryOutcome(
            index=item.index,
            query=spec.display_name(),
            status=ERROR,
            method=item.planned_method,
            error=f"{type(error).__name__}: {error}",
        )
    return QueryOutcome(
        index=item.index,
        query=spec.display_name(),
        status=OK,
        method=result.method,
        result=result,
        nodes_explored=result.details.get("nodes_explored"),
    )


# ---------------------------------------------------------------------- workers

_WORKER_DATABASE: AnyDatabase | None = None


def _worker_init(database: AnyDatabase) -> None:
    global _WORKER_DATABASE
    _WORKER_DATABASE = database
    warm_database(database)


def _worker_run(item: ScheduledQuery) -> QueryOutcome:
    assert _WORKER_DATABASE is not None, "worker used before initialization"
    return _execute(item, _WORKER_DATABASE)


# ------------------------------------------------------------------ entry point

def resilience_serve(
    workload: Workload | Iterable[QuerySpec | QueryLike],
    database: AnyDatabase,
    *,
    max_workers: int | None = None,
    parallel: bool = True,
    cache: LanguageCache | None = None,
) -> list[QueryOutcome]:
    """Serve a resilience workload against one database, optionally in parallel.

    Args:
        workload: a :class:`Workload`, or any iterable mixing
            :class:`QuerySpec` items and bare queries (strings, languages,
            RPQs).
        database: the shared set or bag database.
        max_workers: process-pool width; defaults to ``os.cpu_count()``.  A
            width of 1 runs serially (a single-worker pool would only add IPC
            overhead for identical results).
        parallel: ``False`` forces the serial in-process path; its outcomes
            are identical to the parallel path's by construction (same
            per-query function, deterministic compiled plans, outcomes carry
            no timing) for every workload without ``max_seconds`` budgets —
            time budgets consult the wall clock and may trip differently under
            pool contention.
        cache: optional session :class:`LanguageCache` to share planning work
            across multiple serve calls.

    Returns:
        one :class:`QueryOutcome` per workload entry, in workload order.
        Failures never abort the fleet: budget overruns of the exact fallback
        surface as ``"budget-exceeded"`` outcomes and any other per-query
        error as an ``"error"`` outcome.
    """
    fleet = Workload.coerce(workload)
    scheduled, outcomes = plan_workload(fleet, cache)

    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1 (got {max_workers})")

    if not parallel or max_workers == 1 or len(scheduled) <= 1:
        warm_database(database)
        outcomes.extend(_execute(item, database) for item in scheduled)
    else:
        workers = min(max_workers, len(scheduled))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(database,),
        ) as pool:
            # Batch the cheap flow queries so they don't pay one IPC round-trip
            # (plus a Language pickle) each, but hand the potentially
            # exponential exact queries out one at a time — chunking them would
            # pack the tail of the schedule onto one or two workers.  Both map
            # calls submit eagerly, and outcomes are re-sorted by index below,
            # so the split never affects results.
            flow_items = [item for item in scheduled if not runs_exact_class(item.planned_method)]
            exact_items = [item for item in scheduled if runs_exact_class(item.planned_method)]
            chunksize = max(1, len(flow_items) // (workers * 4))
            flow_results = pool.map(_worker_run, flow_items, chunksize=chunksize)
            exact_results = pool.map(_worker_run, exact_items)
            outcomes.extend(flow_results)
            outcomes.extend(exact_results)

    outcomes.sort(key=lambda outcome: outcome.index)
    return outcomes
