"""Parallel resilience serving: process-pool fan-out over a planned workload.

:func:`resilience_serve` is the one-shot entry point: it spins up a
:class:`~repro.service.server.ResilienceServer` for a single workload and
tears it down again.  Callers serving several workloads against the same
database should hold a server instead — its process pool stays warm across
calls, so only the first serve pays fork and database-warmup cost.

Both execution paths run the exact same per-query function
(:func:`_execute`) on deterministic compiled plans, so serial and parallel
serving produce identical outcomes for any workload without ``max_seconds``
budgets (wall clocks are the one nondeterministic input; see the package
docstring) — the serial mode is the semantics, the pool is purely an
execution strategy.

Each worker process receives the database once (through the pool initializer)
and warms its fact index a single time; individual tasks then only ship the
scheduled query, whose language carries its memoized infix-free sublanguage.
Workers additionally *intern* languages by their scheduled
:attr:`~repro.service.scheduler.ScheduledQuery.intern_key` (canonical
fingerprint or expression string): the first task of an equivalence class
installs its language in the worker's intern table, and every later repeat or
equivalent query on that worker runs against the installed instance — shared
memoized analyses instead of a freshly unpickled copy per task.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import replace

from ..exceptions import SearchBudgetExceeded
from ..graphdb.database import BagGraphDatabase, GraphDatabase
from ..languages.core import Language
from ..resilience.engine import reforce_planned_method, resilience, warm_database
from ..resilience.store import AnalysisStore
from .cache import LanguageCache
from .cancellation import DEADLINE_STATE, FLAG_LIVE, FLAG_STATES
from .outcome import BUDGET_EXCEEDED, ERROR, OK, QueryOutcome
from .scheduler import ScheduledQuery
from .workload import QueryLike, QuerySpec, Workload

AnyDatabase = GraphDatabase | BagGraphDatabase


def _execute(item: ScheduledQuery, database: AnyDatabase) -> QueryOutcome:
    """Run one scheduled query, converting failures into structured outcomes."""
    spec = item.spec
    try:
        run_method, run_unsafe = reforce_planned_method(
            spec.method, spec.unsafe, lambda: item.planned_method
        )
        result = resilience(
            item.language,
            database,
            method=run_method,
            unsafe=run_unsafe,
            semantics=spec.semantics,
            exact_max_nodes=spec.max_nodes,
            exact_max_seconds=spec.max_seconds,
        )
    except SearchBudgetExceeded as error:
        return QueryOutcome(
            index=item.index,
            query=spec.display_name(),
            status=BUDGET_EXCEEDED,
            method=item.planned_method,
            error=f"{type(error).__name__}: {error}",
            nodes_explored=error.nodes_explored,
        )
    except Exception as error:
        return QueryOutcome(
            index=item.index,
            query=spec.display_name(),
            status=ERROR,
            method=item.planned_method,
            error=f"{type(error).__name__}: {error}",
        )
    return QueryOutcome(
        index=item.index,
        query=spec.display_name(),
        status=OK,
        method=result.method,
        result=result,
        nodes_explored=result.details.get("nodes_explored"),
    )


def cancelled_outcome(item: ScheduledQuery, status: str, reason: str) -> QueryOutcome:
    """The structured outcome of a query skipped by a tripped cancel token."""
    return QueryOutcome(
        index=item.index,
        query=item.spec.display_name(),
        status=status,
        method=item.planned_method,
        error=reason,
    )


# ---------------------------------------------------------------------- workers

_WORKER_DATABASE: AnyDatabase | None = None
_WORKER_LANGUAGES: dict[str, Language] = {}
_WORKER_CANCEL_FLAGS = None


# repro: allow[dead-symbol] -- worker-protocol entry point: imported by
# service.server (and the exchange nodes) to initialize their warm pools
def _worker_init(database: AnyDatabase, cancel_flags=None) -> None:
    global _WORKER_DATABASE, _WORKER_CANCEL_FLAGS
    _WORKER_DATABASE = database
    _WORKER_CANCEL_FLAGS = cancel_flags
    _WORKER_LANGUAGES.clear()
    warm_database(database)


def _intern_scheduled(item: ScheduledQuery) -> ScheduledQuery:
    """Resolve a task's language through the worker's intern table.

    The first language of each intern key wins; later tasks with the same key
    run against the installed instance (relabelled to their own display name
    when an *equivalent* query spelled the language differently), accumulating
    memoized analyses per worker instead of per task.
    """
    if item.intern_key is None:
        return item
    interned = _WORKER_LANGUAGES.setdefault(item.intern_key, item.language)
    if interned is item.language:
        return item
    language = interned if interned.name == item.language.name else interned.relabelled(item.language.name)
    return replace(item, language=language)


def _worker_run(item: ScheduledQuery) -> QueryOutcome:
    assert _WORKER_DATABASE is not None, "worker used before initialization"
    return _execute(_intern_scheduled(item), _WORKER_DATABASE)


def _worker_cancel_state(entry: tuple[int | None, float | None], now: float):
    """Decode one control entry into a fired ``(status, reason)`` or ``None``.

    ``entry`` is ``(flag_slot, deadline_at)``: the slot indexes the shared
    cancel-flag array inherited at pool fork (``None`` when unbound or on
    non-fork platforms); the deadline is a parent ``time.monotonic()`` instant,
    comparable here because ``CLOCK_MONOTONIC`` is system-wide on Linux.
    """
    slot, deadline_at = entry
    if slot is not None and _WORKER_CANCEL_FLAGS is not None:
        code = _WORKER_CANCEL_FLAGS[slot]
        if code != FLAG_LIVE:
            return FLAG_STATES.get(code, FLAG_STATES[1])
    if deadline_at is not None and now > deadline_at:
        return DEADLINE_STATE
    return None


# repro: allow[dead-symbol] -- worker-protocol entry point: imported by
# service.server as the chunk task its pools execute
def _worker_run_many(
    items: list[ScheduledQuery],
    control: dict[int, tuple[int | None, float | None]] | None = None,
) -> list[QueryOutcome]:
    """Run a chunk of scheduled queries in one IPC round-trip.

    ``control`` (workload index -> cancel-control entry) makes the chunk loop
    a cancellation check point: the token state is re-read *between queries*,
    so a workload cancelled or expired while its chunk is already on a worker
    stops mid-chunk, finishing the tail as structured skipped outcomes.
    """
    if not control:
        return [_worker_run(item) for item in items]
    outcomes = []
    for item in items:
        entry = control.get(item.index)
        state = _worker_cancel_state(entry, time.monotonic()) if entry else None
        if state is not None:
            outcomes.append(cancelled_outcome(item, *state))
        else:
            outcomes.append(_worker_run(item))
    return outcomes


# ------------------------------------------------------------------ entry point

def resilience_serve(
    workload: Workload | Iterable[QuerySpec | QueryLike],
    database: AnyDatabase,
    *,
    max_workers: int | None = None,
    parallel: bool = True,
    cache: LanguageCache | None = None,
    store: AnalysisStore | None = None,
) -> list[QueryOutcome]:
    """Serve a resilience workload against one database, optionally in parallel.

    Args:
        workload: a :class:`Workload`, or any iterable mixing
            :class:`QuerySpec` items and bare queries (strings, languages,
            RPQs).
        database: the shared set or bag database.
        max_workers: process-pool width; defaults to ``os.cpu_count()``.  A
            width of 1 runs serially (a single-worker pool would only add IPC
            overhead for identical results).
        parallel: ``False`` forces the serial in-process path; its outcomes
            are identical to the parallel path's by construction (same
            per-query function, deterministic compiled plans, outcomes carry
            no timing) for every workload without ``max_seconds`` budgets —
            time budgets consult the wall clock and may trip differently under
            pool contention.
        cache: optional session :class:`LanguageCache` to share planning work
            across multiple serve calls.
        store: optional :class:`~repro.resilience.store.AnalysisStore`
            persisting classifications and infix-free sublanguages across
            processes (mutually exclusive with ``cache``; pass the store
            through ``LanguageCache(store=...)`` to combine them).

    Returns:
        one :class:`QueryOutcome` per workload entry, in workload order.
        Failures never abort the fleet: budget overruns of the exact fallback
        surface as ``"budget-exceeded"`` outcomes and any other per-query
        error as an ``"error"`` outcome.
    """
    from .server import ResilienceServer

    with ResilienceServer(
        database,
        max_workers=max_workers,
        parallel=parallel,
        cache=cache,
        store=store,
    ) as server:
        return server.serve(workload)
