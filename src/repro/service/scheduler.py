"""Workload scheduling: classify first, run cheap flow queries before exact.

Planning a workload resolves every query through the session
:class:`~repro.service.cache.LanguageCache` (one parse + one infix-free
computation + one classification per *distinct* query) and orders execution so
that all flow-tractable queries run before any exact fallback.  Exact queries
have unbounded worst-case cost, so flow-first guarantees a pathological exact
query can never head-block the polynomial ones: every tractable query is
dispatched (and, serially, answered) before the first potentially-exponential
search starts.  The trade-off is makespan under a pool — a longest-job-first
order could overlap the exact stragglers with the flow batch — but predictable
latency for the tractable majority is the serving priority, and streaming
outcomes as they complete (ROADMAP) is what would surface the early answers to
callers.

Queries that fail planning itself (e.g. a malformed regex) become
``"error"`` outcomes immediately and are excluded from execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..languages.core import Language
from .cache import LanguageCache
from .outcome import ERROR, QueryOutcome
from .workload import QuerySpec, Workload

#: Dispatch methods in scheduling order: cheap flow algorithms first, the
#: (potentially exponential) exact fallback last.
_METHOD_PRIORITY = {
    "trivial-epsilon": 0,
    "local-flow": 1,
    "bcl-flow": 2,
    "one-dangling-flow": 3,
    "exact": 4,
}


def runs_exact_class(method: str) -> bool:
    """Whether a planned method sorts with the (potentially exponential) exact
    fallback.  Unknown methods do too: they fail validation at execution, so
    they belong with the unbounded tail, not the cheap flow prefix.  Single
    source of truth for the scheduler's ordering and the pool's batching split.
    """
    return _METHOD_PRIORITY.get(method, len(_METHOD_PRIORITY)) >= _METHOD_PRIORITY["exact"]


@dataclass(frozen=True)
class ScheduledQuery:
    """One planned query: its workload position, resolved language and method.

    The ``language`` carries its memoized infix-free sublanguage, so shipping a
    scheduled query to a worker process ships the expensive derivation with it.
    ``intern_key`` identifies the language's equivalence class (its canonical
    fingerprint when the session cache computed one, else the expression
    string): worker processes intern languages under this key, so a warm
    worker serves repeat or equivalent queries from its own memoized instance
    instead of the freshly unpickled copy.
    """

    index: int
    spec: QuerySpec
    language: Language
    planned_method: str
    intern_key: str | None = None


def _intern_key(spec: QuerySpec, language: Language) -> str | None:
    """The worker-side interning key of a scheduled query (cheap: never
    *computes* a fingerprint, only reuses one the cache already memoized)."""
    if language._fingerprint is not None:
        return f"fp:{language._fingerprint}"
    if isinstance(spec.query, str):
        return f"re:{spec.query}"
    return None


def plan_workload(
    workload: Workload, cache: LanguageCache | None = None
) -> tuple[list[ScheduledQuery], list[QueryOutcome]]:
    """Plan a workload: resolve, classify and order every query.

    Returns the executable queries in scheduling order (flow-tractable first,
    exact last, stable by workload position within each class) plus the
    outcomes of queries that already failed during planning.
    """
    if cache is None:
        cache = LanguageCache()
    scheduled: list[ScheduledQuery] = []
    failed: list[QueryOutcome] = []
    for index, spec in enumerate(workload):
        try:
            language = cache.language(spec.query)
            if spec.method is None:
                planned = cache.method(language)
            else:
                planned = spec.method
                # The dispatcher path computes (and memoizes) the infix-free
                # sublanguage while classifying; warm it for forced methods too
                # so workers always receive it precomputed — except for epsilon
                # languages, whose execution short-circuits before needing it.
                if not language.contains(""):
                    language.infix_free()
        except Exception as error:
            failed.append(
                QueryOutcome(
                    index=index,
                    query=spec.display_name(),
                    status=ERROR,
                    method=spec.method,
                    error=f"{type(error).__name__}: {error}",
                )
            )
            continue
        scheduled.append(
            ScheduledQuery(index, spec, language, planned, _intern_key(spec, language))
        )
    scheduled.sort(
        key=lambda item: (
            _METHOD_PRIORITY.get(item.planned_method, len(_METHOD_PRIORITY)),
            item.index,
        )
    )
    return scheduled, failed
