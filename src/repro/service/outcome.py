"""Structured per-query outcomes of the resilience serving layer.

The service never lets one pathological query kill a fleet: budget overruns
and per-query errors are captured as data on the :class:`QueryOutcome` instead
of raised mid-serve.  Outcomes deliberately carry no timing information, so a
parallel serve is value-identical to a serial one (the parity the tests pin
down); wall-clock measurements belong to the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resilience.result import ResilienceResult

#: The query was answered; :attr:`QueryOutcome.result` holds the result.
OK = "ok"
#: The exact fallback exceeded its per-query node or time budget.
BUDGET_EXCEEDED = "budget-exceeded"
#: The query failed (parse error, inapplicable forced method, ...).
ERROR = "error"
#: The async front-end refused the query before execution: its workload was
#: turned away at admission (queue depth over the bound, or a submit deadline
#: that expired while waiting).  Nothing ran — resubmitting later may succeed.
ADMISSION_REJECTED = "admission-rejected"


@dataclass(frozen=True)
class QueryOutcome:
    """The outcome of serving one query of a workload.

    Attributes:
        index: position of the query in the submitted workload (outcomes are
            always returned in workload order, whatever order they ran in).
        query: human-readable query label.
        status: :data:`OK`, :data:`BUDGET_EXCEEDED`, :data:`ERROR` or
            :data:`ADMISSION_REJECTED`.
        method: the algorithm that ran (for :data:`OK`) or was planned when the
            query failed; ``None`` when the query never got past planning.
        result: the resilience result for :data:`OK` outcomes, else ``None``.
        error: ``"ExceptionType: message"`` for non-:data:`OK` outcomes.
        nodes_explored: search nodes expanded before a budget overrun (also
            mirrored from the result's details for exact :data:`OK` outcomes).
    """

    index: int
    query: str
    status: str
    method: str | None = None
    result: ResilienceResult | None = None
    error: str | None = None
    nodes_explored: int | None = None

    @property
    def ok(self) -> bool:
        return self.status == OK

    def __repr__(self) -> str:
        value = self.result.value if self.result is not None else None
        return (
            f"QueryOutcome(#{self.index} {self.query!r} {self.status}"
            f" method={self.method!r} value={value})"
        )
