"""Parallel resilience serving with shared language caches.

This package turns the single-query dispatcher of :mod:`repro.resilience` into
a serving subsystem for query fleets:

* **Workload model** (:mod:`~repro.service.workload`): a
  :class:`~repro.service.workload.Workload` is an ordered fleet of
  :class:`~repro.service.workload.QuerySpec` items — query plus optional
  forced method, forced semantics, and per-query ``max_nodes`` /
  ``max_seconds`` budgets for the exact fallback.
* **Session language cache** (:mod:`~repro.service.cache`): duplicate *and
  equivalent* queries resolve to one shared
  :class:`~repro.languages.core.Language` — the canonical layer fingerprints
  every query by its minimal DFA, so ``(ab)*a`` and ``a(ba)*`` share one
  memoized infix-free sublanguage and one classification; an optional
  :class:`~repro.service.cache.AnalysisStore` persists those analyses on disk
  across processes (see ``src/repro/service/README.md`` for the full cache
  hierarchy).
* **Scheduler** (:mod:`~repro.service.scheduler`): every query is classified
  first and flow-tractable queries run before exact fallbacks.
* **Serving** (:mod:`~repro.service.serve`, :mod:`~repro.service.server`):
  :func:`~repro.service.serve.resilience_serve` executes one planned workload
  serially or over a process pool and returns structured
  :class:`~repro.service.outcome.QueryOutcome` objects in workload order;
  :class:`~repro.service.server.ResilienceServer` keeps the pool (and the
  workers' database copy) warm across calls and adds
  :meth:`~repro.service.server.ResilienceServer.serve_iter`, which streams
  outcomes as they complete.
* **Exchange layer** (:mod:`~repro.service.exchange`): transport-agnostic
  routing between front-end and nodes.  A
  :class:`~repro.service.exchange.base.WorkloadEnvelope` travels through an
  :class:`~repro.service.exchange.base.Exchange` —
  :class:`~repro.service.exchange.local.LocalExchange` (one in-process
  server, the default),
  :class:`~repro.service.exchange.threads.ThreadExchange` (an in-process
  fleet of nodes routed by database fingerprint, with failover), or
  :class:`~repro.service.exchange.http.HttpExchange` (the same fleet over
  stdlib HTTP) — managed by a
  :class:`~repro.service.exchange.manager.NodeManager` (spawn / drain /
  kill / replace).
* **Async front-end** (:mod:`~repro.service.async_server`):
  :class:`~repro.service.async_server.AsyncResilienceServer` multiplexes
  concurrent workloads onto an exchange through an admission queue
  (priority classes, FIFO within class, bounded depth with structured
  ``admission-rejected`` outcomes, end-to-end deadlines with cooperative
  mid-execution cancellation, weighted per-workload round shares) and
  exposes the runtime as a
  :class:`~repro.service.async_server.ServerMetrics` snapshot — scrapeable
  as JSON or Prometheus text via
  :meth:`~repro.service.async_server.AsyncResilienceServer.metrics_endpoint`.

Budget semantics
----------------

Budgets apply to the exact branch-and-bound fallback only — the flow
reductions are polynomial and never consult them.  ``max_nodes`` caps
branch-and-bound nodes and is fully deterministic: the same query, database
and budget either succeed identically or trip at the same node count on every
machine.  ``max_seconds`` is a wall-clock cap checked at every search node; it
is machine-dependent, so use it as an operational guard, not in reproducible
experiments.  A tripped budget never raises out of the serve: it yields an
outcome with ``status == "budget-exceeded"`` carrying ``nodes_explored``,
and the rest of the fleet completes.  Any other per-query failure (malformed
regex, inapplicable forced method, ...) yields ``status == "error"`` with the
exception type and message preserved; genuinely unexpected errors are thereby
never mislabelled as budget overruns.

Parallel equivalence
--------------------

For workloads whose specs use no ``max_seconds`` budget,
``resilience_serve(..., parallel=False)`` and any ``max_workers`` produce
identical outcome lists: both paths run the same per-query function on
deterministic compiled plans and outcomes carry no timing.  The process pool
is an execution strategy, never a semantic.  A ``max_seconds`` budget is the
one escape from this guarantee — it consults the wall clock, so a query near
its deadline may succeed serially yet trip under pool contention (or vice
versa); keep time budgets out of reproducibility pipelines.

Quickstart::

    from repro.service import QuerySpec, Workload, resilience_serve

    workload = Workload.coerce([
        "ax*b",                                 # flow-tractable, default policy
        QuerySpec("aa", max_nodes=10_000),      # exact, node-budgeted
    ])
    outcomes = resilience_serve(workload, database, max_workers=4)
    for outcome in outcomes:
        print(outcome.query, outcome.status, outcome.result)
"""

from .async_server import (
    AdmissionStats,
    AsyncResilienceServer,
    LatencyHistogram,
    MetricsEndpoint,
    ServerMetrics,
)
from .cache import AnalysisStore, CacheStats, LanguageCache, ResultStore, StoreStats
from .cancellation import CancellationToken
from .exchange import (
    CircuitBreaker,
    EnvelopePart,
    Exchange,
    HealthMonitor,
    HttpExchange,
    LocalExchange,
    NodeManager,
    NodeStats,
    RetryPolicy,
    Router,
    ThreadExchange,
    WorkloadEnvelope,
)
from .outcome import ADMISSION_REJECTED, BUDGET_EXCEEDED, ERROR, OK, QueryOutcome
from .scheduler import ScheduledQuery, plan_workload
from .serve import resilience_serve
from .server import PoolStats, ResilienceServer
from .workload import QuerySpec, Workload

__all__ = [
    "ADMISSION_REJECTED",
    "BUDGET_EXCEEDED",
    "ERROR",
    "OK",
    "AdmissionStats",
    "AnalysisStore",
    "AsyncResilienceServer",
    "CacheStats",
    "CancellationToken",
    "CircuitBreaker",
    "EnvelopePart",
    "Exchange",
    "HealthMonitor",
    "HttpExchange",
    "LanguageCache",
    "LatencyHistogram",
    "LocalExchange",
    "MetricsEndpoint",
    "NodeManager",
    "NodeStats",
    "PoolStats",
    "RetryPolicy",
    "QueryOutcome",
    "QuerySpec",
    "ResilienceServer",
    "ResultStore",
    "Router",
    "ScheduledQuery",
    "ServerMetrics",
    "StoreStats",
    "ThreadExchange",
    "Workload",
    "WorkloadEnvelope",
    "plan_workload",
    "resilience_serve",
]


def __getattr__(name: str):
    # The warming pass lives in its own module so ``python -m
    # repro.service.warm`` does not re-execute it through this package
    # import; attribute access still resolves for discoverability.
    if name in ("WarmReport", "warm_queries", "warm_trace"):
        from . import warm

        return getattr(warm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
