"""The in-process exchange: one warm server, zero routing overhead.

:class:`LocalExchange` is the refactored default under
:class:`~repro.service.async_server.AsyncResilienceServer`: it wraps exactly
one :class:`~repro.service.server.ResilienceServer` and forwards envelope
parts straight to :meth:`~repro.service.server.ResilienceServer.serve_iter`
— the same call, on the same thread, that the front-end made before the
exchange layer existed, so the single-node serving path is behavior-identical
to the pre-exchange stack (pinned by the async conformance variants and the
``BENCH_async.json`` admission-overhead guard).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import replace

from ...exceptions import ReproError
from ..cache import LanguageCache
from ..outcome import QueryOutcome
from ..server import ResilienceServer
from .base import AnyDatabase, CancelMap, Exchange, NodeStats, WorkloadEnvelope

#: The synthetic node id of the wrapped server in stats/heartbeat output.
LOCAL_NODE_ID = "local"


class LocalExchange(Exchange):
    """One in-process :class:`ResilienceServer` behind the exchange contract.

    Accepts either a ready server or a database plus
    :class:`~repro.service.server.ResilienceServer` keyword arguments to
    build one.  The exchange owns the server either way: closing the
    exchange closes it.
    """

    def __init__(self, server: ResilienceServer | AnyDatabase, **server_kwargs) -> None:
        if isinstance(server, ResilienceServer):
            if server_kwargs:
                raise ValueError(
                    "server construction arguments "
                    f"({', '.join(sorted(server_kwargs))}) only apply when "
                    "LocalExchange builds the server from a database"
                )
            self._server = server
        else:
            self._server = ResilienceServer(server, **server_kwargs)
        self._envelopes_served = 0
        self._closed = False

    @property
    def server(self) -> ResilienceServer:
        """The wrapped server — the front-end's escape hatch for direct use."""
        return self._server

    @property
    def cache(self) -> LanguageCache:
        return self._server.cache

    @property
    def database(self) -> AnyDatabase:
        return self._server.database

    def submit(
        self, envelope: WorkloadEnvelope, *, cancel: CancelMap = None
    ) -> Iterator[QueryOutcome]:
        if self._closed:
            raise ReproError("this LocalExchange is closed")
        self._envelopes_served += len(envelope.parts)
        if len(envelope.parts) == 1:
            # The hot path: hand the server's own generator straight through.
            # Planning happens eagerly here (serve_iter plans before returning
            # its generator), exactly as when the front-end held the server.
            part = envelope.parts[0]
            return self._server.serve_iter(
                part.workload, database=part.database, cancel=cancel
            )
        return self._submit_parts(envelope, cancel)

    def _submit_parts(
        self, envelope: WorkloadEnvelope, cancel: CancelMap
    ) -> Iterator[QueryOutcome]:
        """Multi-part envelopes serve sequentially with index remapping.

        Every part must still match the wrapped server's database (the server
        cross-checks); a local exchange cannot scatter.
        """
        for offset, part in zip(envelope.offsets(), envelope.parts):
            sub_cancel = cancel
            if isinstance(cancel, Mapping):
                sub_cancel = {
                    local: token
                    for global_index, token in cancel.items()
                    if 0 <= (local := global_index - offset) < len(part)
                }
            for outcome in self._server.serve_iter(
                part.workload, database=part.database, cancel=sub_cancel
            ):
                yield replace(outcome, index=outcome.index + offset)

    def stats(self) -> tuple[NodeStats, ...]:
        return (
            NodeStats(
                node_id=LOCAL_NODE_ID,
                alive=not self._closed,
                databases=1,
                envelopes_served=self._envelopes_served,
                cache=self._server.cache.stats.snapshot(),
                pool=self._server.pool_stats(),
            ),
        )

    def close(self) -> None:
        self._closed = True
        self._server.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalExchange({self._server!r})"
