"""Fault-tolerance primitives: retry policies, circuit breakers, supervision.

The HTTP rung of the exchange ladder crosses real sockets, where three
failure shapes exist that the in-process rungs never see: *transient* faults
(a refused connection during a restart, a dropped stream), *suspected death*
(probes failing repeatedly), and *confirmed death* (a node that stays dark
past any grace).  This module gives each shape its own mechanism:

* :class:`RetryPolicy` — bounded retry with exponential backoff and
  *deterministic* jitter (a seeded :class:`random.Random` stream, so two runs
  of the same seed retry on the same schedule).  Applied by
  :class:`~repro.service.exchange.http.HttpNode` to control requests and to
  idempotent serve re-dispatch — a serve stream that dies before its first
  outcome is retried on the same node; after the first outcome the exchange's
  kill-check-before-yield failover takes over instead, because the tail must
  be recomputed on another node, not replayed on this one.
* :class:`CircuitBreaker` — the classic closed → open → half-open automaton,
  counted in supervisor *ticks* rather than wall time so tests can drive it
  deterministically.  ``closed``: probes flow.  After ``failure_threshold``
  consecutive failures the breaker opens; for ``cooldown_ticks`` ticks probes
  are skipped entirely (a dark node costs nothing per tick), then one
  half-open probe is allowed — success recloses, failure re-opens.
* :class:`HealthMonitor` — the supervision loop owning one breaker per node.
  Runs as a daemon thread on an interval (:meth:`start`) or manually
  (:meth:`tick`).  On every reclose it calls the node handle's
  ``invalidate_shipped()``: a node that answers probes again after being dark
  has typically *restarted*, and a restarted node has lost every database the
  handle believes it shipped.  Nodes that stay dead for ``replace_after``
  consecutive ticks are replaced through the manager (identity-preserving, so
  rendezvous routing hands the replacement exactly the corpse's keys).

Everything here is transport-agnostic: breakers and the monitor speak only
the :class:`~repro.service.exchange.base.Node` contract, so a
``ThreadExchange`` fleet can be supervised identically in tests.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (manager -> health)
    from .base import Node
    from .manager import NodeManager

#: Circuit states (:attr:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes:
        attempts: total tries, the first included (``1`` disables retry).
        base_delay: seconds slept before the first retry.
        multiplier: backoff factor between consecutive retries.
        jitter: fractional headroom added per delay — delay ``d`` becomes
            ``d * (1 + jitter * u)`` with ``u`` drawn from the policy's seeded
            RNG stream, so schedules decorrelate across policies without
            losing replayability.
        seed: the jitter stream seed; equal policies sleep equal schedules.
        attempt_timeout: per-attempt budget in seconds — transports use it as
            their socket timeout (``None``: keep the transport's default).
        total_budget: total seconds across all attempts; a retry that would
            start after the budget is abandoned and the last error raised.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    attempt_timeout: float | None = None
    total_budget: float | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ReproError(f"retry attempts must be >= 1 (got {self.attempts})")
        if self.base_delay < 0 or self.multiplier < 1.0 or self.jitter < 0:
            raise ReproError(
                "retry backoff needs base_delay >= 0, multiplier >= 1, "
                f"jitter >= 0 (got {self.base_delay}, {self.multiplier}, "
                f"{self.jitter})"
            )

    def sleep_schedule(self) -> tuple[float, ...]:
        """The ``attempts - 1`` inter-attempt delays, jitter applied.

        A pure function of the policy (the RNG is seeded per call), so the
        schedule is replayable and inspectable.
        """
        rng = random.Random(self.seed)
        delays: list[float] = []
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            delays.append(delay * (1.0 + self.jitter * rng.random()))
            delay *= self.multiplier
        return tuple(delays)

    def run(
        self,
        operation: Callable[[], object],
        *,
        retriable: tuple[type[BaseException], ...] = (ConnectionError, OSError),
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Call ``operation`` under this policy, re-raising the final failure.

        Only ``retriable`` exceptions consume attempts; anything else
        propagates immediately (an application-level refusal is not a
        network fault).  ``sleep`` is injectable for tests.
        """
        started = time.monotonic()
        schedule = self.sleep_schedule()
        for attempt in range(self.attempts):
            try:
                return operation()
            except retriable:
                if attempt == self.attempts - 1:
                    raise
                delay = schedule[attempt]
                if (
                    self.total_budget is not None
                    and time.monotonic() - started + delay > self.total_budget
                ):
                    raise
                sleep(delay)
        raise ReproError("unreachable: retry loop exited without returning")


class CircuitBreaker:
    """One node's closed → open → half-open probe automaton.

    Counted in supervisor *ticks*, not wall time: :meth:`allow_probe` is
    asked once per tick and answers whether spending a probe on this node is
    worthwhile right now.  The holder (:class:`HealthMonitor`) synchronizes
    access; the breaker itself is plain state.
    """

    def __init__(self, *, failure_threshold: int = 3, cooldown_ticks: int = 1) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1 (got {failure_threshold})"
            )
        if cooldown_ticks < 0:
            raise ReproError(f"cooldown_ticks must be >= 0 (got {cooldown_ticks})")
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._cooldown_left = 0

    def allow_probe(self) -> bool:
        """Whether this tick should probe the node (advances open cooldown)."""
        if self.state != OPEN:
            return True
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return False
        self.state = HALF_OPEN
        return True

    def record_success(self) -> bool:
        """Note a successful probe; ``True`` when this *recloses* the circuit
        (the caller must treat the node as freshly restarted)."""
        reclosed = self.state != CLOSED
        self.state = CLOSED
        self.consecutive_failures = 0
        return reclosed

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = OPEN
            self.opens += 1
            self._cooldown_left = self.cooldown_ticks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.state}, failures={self.consecutive_failures}, "
            f"opens={self.opens})"
        )


class HealthMonitor:
    """Background health supervision over a :class:`NodeManager` fleet.

    One :class:`CircuitBreaker` per node id.  Each :meth:`tick`:

    1. skips nodes whose breaker is open and still cooling down (no probe
       spent on a node known to be dark);
    2. probes everyone else via ``node.heartbeat()``;
    3. on success: closes the breaker — and when that transition *recloses*
       a previously open/half-open circuit, calls the handle's
       ``invalidate_shipped()`` so the next serve re-ships databases to what
       is very likely a restarted process;
    4. on failure (or a skipped dark tick): counts the node's consecutive
       suspect ticks, and once they reach ``replace_after`` replaces the node
       through the manager (identity-preserving) and resets its breaker.

    Drive it either way: :meth:`start` runs :meth:`tick` every ``interval``
    seconds on a daemon thread (stopped by :meth:`stop`, which the manager's
    ``close`` calls); calling :meth:`tick` directly gives tests a fully
    deterministic clock.
    """

    def __init__(
        self,
        manager: "NodeManager",
        *,
        interval: float = 0.5,
        failure_threshold: int = 3,
        cooldown_ticks: int = 1,
        replace_after: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ReproError(f"monitor interval must be > 0 (got {interval})")
        if replace_after is not None and replace_after < 1:
            raise ReproError(f"replace_after must be >= 1 (got {replace_after})")
        self._manager = manager
        self._interval = interval
        self._failure_threshold = failure_threshold
        self._cooldown_ticks = cooldown_ticks
        self._replace_after = replace_after
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._suspect_ticks: dict[str, int] = {}
        self._ticks = 0
        self._recloses = 0
        self._replacements = 0
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "HealthMonitor":
        """Run :meth:`tick` every ``interval`` seconds until :meth:`stop`."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stopped.clear()
            thread = threading.Thread(
                target=self._supervise, name="health-monitor", daemon=True
            )
            self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        """Stop the supervision thread (idempotent; safe if never started)."""
        self._stopped.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)

    def _supervise(self) -> None:
        while not self._stopped.wait(self._interval):
            self.tick()

    # ------------------------------------------------------------ one sweep

    def tick(self) -> dict[str, str]:
        """One supervision sweep; returns ``node_id -> breaker state``."""
        with self._lock:
            return self._tick_locked()

    def _tick_locked(self) -> dict[str, str]:
        self._ticks += 1
        states: dict[str, str] = {}
        for node_id in self._manager.node_ids():
            node = self._manager.node(node_id)
            breaker = self._breakers.get(node_id)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self._failure_threshold,
                    cooldown_ticks=self._cooldown_ticks,
                )
                self._breakers[node_id] = breaker
            if breaker.allow_probe():
                if self._probe(node):
                    if breaker.record_success():
                        self._recloses += 1
                        node.invalidate_shipped()
                    self._suspect_ticks[node_id] = 0
                else:
                    breaker.record_failure()
                    self._suspect_ticks[node_id] = (
                        self._suspect_ticks.get(node_id, 0) + 1
                    )
            else:
                # Open circuit, still cooling down: the node stays suspect
                # without costing a probe.
                self._suspect_ticks[node_id] = self._suspect_ticks.get(node_id, 0) + 1
            self._maybe_replace_locked(node_id, breaker)
            states[node_id] = self._breakers[node_id].state
        return states

    @staticmethod
    def _probe(node: "Node") -> bool:
        try:
            return node.heartbeat()
        # repro: allow[err-swallowed-except] -- a probe that *raises* is a
        # failed probe; the breaker records it and supervision continues
        except Exception:
            return False

    def _maybe_replace_locked(self, node_id: str, breaker: CircuitBreaker) -> None:
        if self._replace_after is None or self._manager.launcher is None:
            return
        if self._suspect_ticks.get(node_id, 0) < self._replace_after:
            return
        try:
            self._manager.replace(node_id)
        # repro: allow[err-swallowed-except] -- replacement is opportunistic:
        # a failed launch leaves the corpse registered and the next tick
        # tries again; the exchange meanwhile degrades structurally
        except Exception:
            return
        self._replacements += 1
        self._suspect_ticks[node_id] = 0
        self._breakers[node_id] = CircuitBreaker(
            failure_threshold=self._failure_threshold,
            cooldown_ticks=self._cooldown_ticks,
        )

    # ----------------------------------------------------------- observability

    def states(self) -> dict[str, str]:
        """Current breaker state per supervised node id (no probing)."""
        with self._lock:
            return {node_id: b.state for node_id, b in self._breakers.items()}

    def breaker(self, node_id: str) -> CircuitBreaker:
        with self._lock:
            try:
                return self._breakers[node_id]
            except KeyError:
                raise ReproError(
                    f"no breaker for {node_id!r}: the monitor has not ticked "
                    "over this node yet"
                ) from None

    @property
    def ticks(self) -> int:
        with self._lock:
            return self._ticks

    @property
    def recloses(self) -> int:
        """Circuits that went open/half-open and then closed again."""
        with self._lock:
            return self._recloses

    @property
    def replacements(self) -> int:
        with self._lock:
            return self._replacements

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HealthMonitor(ticks={self.ticks}, recloses={self.recloses}, "
            f"replacements={self.replacements})"
        )
