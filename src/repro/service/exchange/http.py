"""The HTTP rung of the exchange ladder: nodes behind stdlib sockets.

One :class:`HttpNodeServer` wraps a
:class:`~repro.service.exchange.nodes.ThreadNode` runtime behind a
``ThreadingHTTPServer`` — the serving semantics are byte-identical to the
in-process node because it *is* the in-process node, reached through a
socket.  :class:`HttpNode` is the client-side handle implementing the
:class:`~repro.service.exchange.base.Node` contract over ``http.client``,
so :class:`HttpExchange` is nothing but :class:`RoutedExchange` over a
fleet of HTTP node handles: routing, scatter/gather and failover are the
exact code paths the thread exchange runs.

Wire format: JSON envelopes on every endpoint.  Databases, workloads and
outcomes travel as base64-pickled payloads *inside* the JSON — the nodes
are trusted peers running this same codebase (exactly the trust model of
the process pool's pickle channel), not an open API; do not expose a node
to untrusted callers.  Outcome streaming uses newline-delimited JSON with
chunked transfer, so the client sees each outcome as the node finishes it.

Endpoints::

    GET  /healthz            -> {"node_id": ..., "alive": true}
    GET  /stats              -> NodeStats.as_dict()
    POST /databases          <- {"database": b64}        -> {"fingerprint": fp}
    POST /serve              <- {"fingerprint": fp, "workload": b64,
                                 "deadlines": {index: seconds_remaining}}
                             -> ndjson: {"outcome": b64} ... {"done": count}
    POST /kill               -> abrupt runtime teardown (fault injection)

Cancellation over the wire is deadline-only and best-effort: remaining
seconds ship with the serve request and the node rebuilds tokens against
its own monotonic clock; explicit cancel flags do not cross the socket
(the client simply stops reading, and failover/abandonment semantics are
enforced client-side by the routed exchange).
"""

from __future__ import annotations

import base64
import json
import pickle
import threading
from collections.abc import Iterator, Mapping
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic

from ...exceptions import ReproError
from ..cancellation import CancellationToken
from ..outcome import QueryOutcome
from ..workload import Workload
from .base import AnyDatabase, CancelMap, Node, NodeStats
from .manager import NodeLauncher, NodeManager
from .nodes import ThreadNode
from .router import Router
from .threads import RoutedExchange


def encode_payload(obj) -> str:
    """Pickle an object into a JSON-safe base64 string (trusted peers only)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


# ------------------------------------------------------------------- node side


class _NodeRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The runtime is attached to the server object by HttpNodeServer.
    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass

    def _reply_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        return json.loads(self.rfile.read(length) or b"{}")

    def do_GET(self) -> None:
        runtime: ThreadNode = self.server.runtime
        if self.path == "/healthz":
            self._reply_json({"node_id": runtime.node_id, "alive": runtime.alive})
        elif self.path == "/stats":
            self._reply_json(runtime.stats().as_dict())
        else:
            self._reply_json({"error": f"unknown path {self.path}"}, status=404)

    def do_POST(self) -> None:
        runtime: ThreadNode = self.server.runtime
        try:
            if self.path == "/databases":
                request = self._read_json()
                database = decode_payload(request["database"])
                fingerprint = runtime.ensure_database(database)
                # Keep the decoded object so /serve ships only the fingerprint.
                self.server.databases[fingerprint] = database
                self._reply_json({"fingerprint": fingerprint})
            elif self.path == "/serve":
                self._serve(runtime, self._read_json())
            elif self.path == "/kill":
                runtime.kill()
                self._reply_json({"killed": True})
            else:
                self._reply_json({"error": f"unknown path {self.path}"}, status=404)
        except ReproError as error:
            self._reply_json({"error": str(error)}, status=409)
        except Exception as error:  # pragma: no cover - defensive
            self._reply_json({"error": f"{type(error).__name__}: {error}"}, status=500)

    def _serve(self, runtime: ThreadNode, request: dict) -> None:
        fingerprint = request["fingerprint"]
        database = self.server.databases.get(fingerprint)
        if database is None:
            self._reply_json(
                {"error": f"database {fingerprint!r} not registered"}, status=409
            )
            return
        workload: Workload = decode_payload(request["workload"])
        cancel = None
        deadlines = request.get("deadlines") or {}
        if deadlines:
            now = monotonic()
            cancel = {
                int(index): CancellationToken(deadline_at=now + max(0.0, seconds))
                for index, seconds in deadlines.items()
            }
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        count = 0
        for outcome in runtime.serve_iter(workload, database, cancel=cancel):
            self._write_chunk({"outcome": encode_payload(outcome)})
            count += 1
        self._write_chunk({"done": count})
        self.wfile.write(b"0\r\n\r\n")

    def _write_chunk(self, payload: dict) -> None:
        line = json.dumps(payload).encode() + b"\n"
        self.wfile.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        self.wfile.flush()


class HttpNodeServer:
    """One serving node behind a loopback (or LAN) socket.

    The runtime is a plain :class:`ThreadNode`; the HTTP layer adds only
    transport.  ``port=0`` binds an ephemeral port — read :attr:`address`.
    """

    def __init__(
        self,
        node_id: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int | None = None,
        parallel: bool = True,
    ) -> None:
        self.runtime = ThreadNode(node_id, max_workers=max_workers, parallel=parallel)
        self._httpd = ThreadingHTTPServer((host, port), _NodeRequestHandler)
        self._httpd.runtime = self.runtime
        # ensure_database returns only the fingerprint over the wire; the
        # server keeps the decoded database objects for /serve lookups.
        self._httpd.databases = {}
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=f"http-node-{node_id}", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    def close(self) -> None:
        self.runtime.close()
        self._httpd.shutdown()
        self._httpd.server_close()


# ----------------------------------------------------------------- client side


class HttpNode(Node):
    """Client-side handle to a remote node, speaking the wire format above.

    ``alive`` is the client's belief: it flips to ``False`` on any failed
    request (connection refused, node-side error) and back to ``True`` only
    through a successful :meth:`heartbeat` probe.
    """

    def __init__(self, node_id: str, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.node_id = node_id
        self._host = host
        self._port = port
        self._timeout = timeout
        self._alive = True
        self._killed = False
        self._shipped: set[str] = set()

    # ------------------------------------------------------------------ state

    @property
    def alive(self) -> bool:
        return self._alive and not self._killed

    @property
    def killed(self) -> bool:
        return self._killed

    def heartbeat(self) -> bool:
        try:
            payload = self._request_json("GET", "/healthz")
            self._alive = bool(payload.get("alive"))
        except Exception:
            self._alive = False
        return self.alive

    # ---------------------------------------------------------------- serving

    def ensure_database(self, database: AnyDatabase) -> str:
        fingerprint = database.content_fingerprint()
        if fingerprint not in self._shipped:
            reply = self._request_json(
                "POST", "/databases", {"database": encode_payload(database)}
            )
            self._shipped.add(reply["fingerprint"])
        return fingerprint

    def serve_iter(
        self,
        workload: Workload,
        database: AnyDatabase,
        *,
        cancel: CancelMap = None,
    ) -> Iterator[QueryOutcome]:
        fingerprint = self.ensure_database(database)
        deadlines: dict[int, float] = {}
        if cancel is not None:
            now = monotonic()
            items: Iterator = (
                cancel.items()
                if isinstance(cancel, Mapping)
                else ((index, cancel) for index in range(len(workload)))
            )
            for index, token in items:
                if token is not None and token.deadline_at is not None:
                    deadlines[index] = token.deadline_at - now
        request = {
            "fingerprint": fingerprint,
            "workload": encode_payload(workload),
            "deadlines": deadlines,
        }
        connection = self._connect()
        try:
            body = json.dumps(request)
            connection.request(
                "POST", "/serve", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            if response.status != 200:
                detail = response.read().decode(errors="replace")
                raise ReproError(
                    f"node {self.node_id!r} refused workload "
                    f"(HTTP {response.status}): {detail}"
                )
            count = None
            served = 0
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except ValueError as error:
                    # A node dying mid-response can splice error payloads into
                    # the chunk stream; treat any corruption as node failure.
                    self._alive = False
                    raise ReproError(
                        f"node {self.node_id!r} stream corrupted: {error}"
                    ) from error
                if "outcome" in message:
                    served += 1
                    yield decode_payload(message["outcome"])
                elif "done" in message:
                    count = message["done"]
            if count is None or count != served:
                self._alive = False
                raise ReproError(
                    f"node {self.node_id!r} stream ended early "
                    f"({served} outcomes, terminator={count!r})"
                )
        except (ConnectionError, OSError) as error:
            self._alive = False
            raise ReproError(
                f"node {self.node_id!r} connection failed: {error}"
            ) from error
        finally:
            connection.close()

    # -------------------------------------------------------------- lifecycle

    def stats(self) -> NodeStats:
        return NodeStats.from_dict(self._request_json("GET", "/stats"))

    def kill(self) -> None:
        self._killed = True
        try:
            self._request_json("POST", "/kill")
        # repro: allow[err-swallowed-except] -- kill is best-effort: the node
        # may already be gone, and the client-side killed flag is the truth
        except Exception:
            pass

    def close(self) -> None:
        self._alive = False

    # --------------------------------------------------------------- plumbing

    def _connect(self) -> HTTPConnection:
        return HTTPConnection(self._host, self._port, timeout=self._timeout)

    def _request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        connection = self._connect()
        try:
            body = json.dumps(payload) if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            if response.status != 200:
                self._alive = False
                raise ReproError(
                    f"node {self.node_id!r} {method} {path} -> HTTP {response.status}: "
                    + data.decode(errors="replace")
                )
            return json.loads(data)
        except (ConnectionError, OSError) as error:
            self._alive = False
            raise ReproError(
                f"node {self.node_id!r} connection failed: {error}"
            ) from error
        finally:
            connection.close()


class HttpNodeLauncher(NodeLauncher):
    """Launches loopback :class:`HttpNodeServer`\\ s and hands out handles.

    In-process by construction (each node is a daemon HTTP server thread in
    this interpreter) — the transport is real, the deployment is a harness.
    Launching against remote hosts means constructing :class:`HttpNode`
    handles yourself and registering them on the manager.
    """

    def __init__(self, *, host: str = "127.0.0.1", max_workers: int | None = None, parallel: bool = True) -> None:
        self._host = host
        self._max_workers = max_workers
        self._parallel = parallel
        self._servers: list[HttpNodeServer] = []

    def launch(self, node_id: str) -> HttpNode:
        server = HttpNodeServer(
            node_id,
            host=self._host,
            max_workers=self._max_workers,
            parallel=self._parallel,
        )
        self._servers.append(server)
        host, port = server.address
        return HttpNode(node_id, host, port)

    def close(self) -> None:
        for server in self._servers:
            server.close()
        self._servers.clear()


class HttpExchange(RoutedExchange):
    """Fingerprint-routed serving over HTTP nodes.

    Same routing, scatter/gather and failover engine as
    :class:`~repro.service.exchange.threads.ThreadExchange`; only the node
    transport differs.
    """

    def __init__(
        self,
        nodes: int = 2,
        *,
        manager: NodeManager | None = None,
        router: Router | None = None,
        max_failovers: int = 3,
        host: str = "127.0.0.1",
        max_workers: int | None = None,
        parallel: bool = True,
    ) -> None:
        if manager is None:
            manager = NodeManager(
                HttpNodeLauncher(host=host, max_workers=max_workers, parallel=parallel)
            )
        if not manager.node_ids():
            if nodes < 1:
                raise ValueError(f"an HttpExchange needs >= 1 node (got {nodes})")
            manager.spawn(nodes)
        super().__init__(manager, router=router, max_failovers=max_failovers)
