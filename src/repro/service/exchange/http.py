"""The HTTP rung of the exchange ladder: nodes behind stdlib sockets.

One :class:`HttpNodeServer` wraps a
:class:`~repro.service.exchange.nodes.ThreadNode` runtime behind a
``ThreadingHTTPServer`` — the serving semantics are byte-identical to the
in-process node because it *is* the in-process node, reached through a
socket.  :class:`HttpNode` is the client-side handle implementing the
:class:`~repro.service.exchange.base.Node` contract over ``http.client``,
so :class:`HttpExchange` is nothing but :class:`RoutedExchange` over a
fleet of HTTP node handles: routing, scatter/gather and failover are the
exact code paths the thread exchange runs.

Wire format: JSON envelopes on every endpoint.  Databases, workloads and
outcomes travel as base64-pickled payloads *inside* the JSON — the nodes
are trusted peers running this same codebase (exactly the trust model of
the process pool's pickle channel), not an open API; do not expose a node
to untrusted callers.  Outcome streaming uses newline-delimited JSON with
chunked transfer, so the client sees each outcome as the node finishes it.

Endpoints::

    GET  /healthz            -> {"node_id": ..., "alive": true}
    GET  /stats              -> NodeStats.as_dict()
    POST /databases          <- {"database": b64}        -> {"fingerprint": fp}
    POST /serve              <- {"fingerprint": fp, "workload": b64,
                                 "deadlines": {index: seconds_remaining}}
                             -> ndjson: {"outcome": b64} ... {"done": count}
    POST /kill               -> abrupt runtime teardown (fault injection)

Cancellation over the wire is deadline-only and best-effort: remaining
seconds ship with the serve request and the node rebuilds tokens against
its own monotonic clock; explicit cancel flags do not cross the socket
(the client simply stops reading, and failover/abandonment semantics are
enforced client-side by the routed exchange).

Fault tolerance (see :mod:`~repro.service.exchange.health`): a handle
built with a :class:`~repro.service.exchange.health.RetryPolicy` retries
transport faults on control requests, and re-dispatches a serve whose
stream died *before its first outcome* on the same node (idempotent by
determinism); once an outcome has been yielded, a dead stream raises so
the exchange's kill-check-before-yield failover recomputes the tail on
another node.  The node side bounds its database map with an LRU
(``max_databases``); a client holding a stale shipped-set — node
restarted, or its database was evicted — gets a 409 on ``/serve`` and
transparently re-ships once.
"""

from __future__ import annotations

import base64
import json
import pickle
import sys
import threading
from collections import OrderedDict
from collections.abc import Iterator, Mapping
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, sleep

from ...exceptions import ReproError
from ..cancellation import CancellationToken
from ..outcome import QueryOutcome
from ..workload import Workload
from .base import AnyDatabase, CancelMap, Node, NodeStats
from .health import RetryPolicy
from .manager import NodeLauncher, NodeManager
from .nodes import ThreadNode
from .router import Router
from .threads import RoutedExchange

#: Exception shapes the client treats as transport faults: retriable on
#: control requests and on serve dispatch before the first outcome.
#: ``HTTPException`` covers a peer replying garbage (truncated or corrupted
#: responses surface as ``BadStatusLine`` / ``IncompleteRead``).
TRANSPORT_FAULTS = (ConnectionError, HTTPException, OSError)

#: Default bound on databases a node holds warm (see ``max_databases``).
DEFAULT_MAX_DATABASES = 32


class _StaleDatabaseError(ReproError):
    """The node no longer holds a database this handle believes it shipped."""


def encode_payload(obj) -> str:
    """Pickle an object into a JSON-safe base64 string (trusted peers only)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


# ------------------------------------------------------------------- node side


class _NodeRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The runtime is attached to the server object by HttpNodeServer.
    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass

    def _reply_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        return json.loads(self.rfile.read(length) or b"{}")

    def do_GET(self) -> None:
        runtime: ThreadNode = self.server.runtime
        if self.path == "/healthz":
            self._reply_json({"node_id": runtime.node_id, "alive": runtime.alive})
        elif self.path == "/stats":
            self._reply_json(runtime.stats().as_dict())
        else:
            self._reply_json({"error": f"unknown path {self.path}"}, status=404)

    def do_POST(self) -> None:
        runtime: ThreadNode = self.server.runtime
        try:
            if self.path == "/databases":
                request = self._read_json()
                database = decode_payload(request["database"])
                fingerprint = runtime.ensure_database(database)
                # Keep the decoded object so /serve ships only the fingerprint.
                self.server.databases.put(fingerprint, database)
                self._reply_json({"fingerprint": fingerprint})
            elif self.path == "/serve":
                self._serve(runtime, self._read_json())
            elif self.path == "/kill":
                runtime.kill()
                self._reply_json({"killed": True})
            else:
                self._reply_json({"error": f"unknown path {self.path}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            # The client abandoned the stream (failover, cancellation, or
            # injected network chaos): there is no one left to reply to, so
            # drop the connection quietly instead of tracebacking to stderr.
            self.close_connection = True
        except ReproError as error:
            self._reply_json({"error": str(error)}, status=409)
        except Exception as error:  # pragma: no cover - defensive
            self._reply_json({"error": f"{type(error).__name__}: {error}"}, status=500)

    def _serve(self, runtime: ThreadNode, request: dict) -> None:
        fingerprint = request["fingerprint"]
        database = self.server.databases.get(fingerprint)
        if database is None:
            self._reply_json(
                {"error": f"database {fingerprint!r} not registered"}, status=409
            )
            return
        workload: Workload = decode_payload(request["workload"])
        cancel = None
        deadlines = request.get("deadlines") or {}
        if deadlines:
            now = monotonic()
            cancel = {
                int(index): CancellationToken(deadline_at=now + max(0.0, seconds))
                for index, seconds in deadlines.items()
            }
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        count = 0
        for outcome in runtime.serve_iter(workload, database, cancel=cancel):
            self._write_chunk({"outcome": encode_payload(outcome)})
            count += 1
        self._write_chunk({"done": count})
        self.wfile.write(b"0\r\n\r\n")

    def _write_chunk(self, payload: dict) -> None:
        line = json.dumps(payload).encode() + b"\n"
        self.wfile.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        self.wfile.flush()


class _DatabaseLru:
    """Bounded ``fingerprint -> database`` map behind a node's ``/serve``.

    LRU over fingerprints — both shipping and serving count as touches.
    Evicting an entry also drops the runtime's warm server for that content
    (:meth:`ThreadNode.evict_database`), so a long-lived node under
    many-database traffic holds at most ``cap`` databases total.  A client
    whose database was evicted sees a 409 on ``/serve`` and re-ships.
    """

    def __init__(self, runtime: ThreadNode, cap: int) -> None:
        if cap < 1:
            raise ReproError(f"max_databases must be >= 1 (got {cap})")
        self._runtime = runtime
        self._cap = cap
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, AnyDatabase] = OrderedDict()

    def get(self, fingerprint: str) -> AnyDatabase | None:
        with self._lock:
            database = self._entries.get(fingerprint)
            if database is not None:
                self._entries.move_to_end(fingerprint)
            return database

    def put(self, fingerprint: str, database: AnyDatabase) -> None:
        evicted: list[str] = []
        with self._lock:
            self._entries[fingerprint] = database
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self._cap:
                victim, _ = self._entries.popitem(last=False)
                evicted.append(victim)
        # Server teardown happens outside the lock: closing pools is slow and
        # must not block concurrent /serve lookups.
        for victim in evicted:
            self._runtime.evict_database(victim)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _NodeHttpServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats client transport faults as routine.

    A handle abandoning a keep-alive connection (or a chaos proxy resetting
    it mid-stream) surfaces here as ``ConnectionResetError`` /
    ``BrokenPipeError``; the stock ``handle_error`` tracebacks those to
    stderr, which drowns real faults in noise under network chaos.
    """

    def handle_error(self, request, client_address):
        exc = sys.exception()
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)


class HttpNodeServer:
    """One serving node behind a loopback (or LAN) socket.

    The runtime is a plain :class:`ThreadNode`; the HTTP layer adds only
    transport.  ``port=0`` binds an ephemeral port — read :attr:`address`.
    ``max_databases`` bounds how many shipped databases (and their warm
    servers) the node retains, LRU over fingerprints.
    """

    def __init__(
        self,
        node_id: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int | None = None,
        parallel: bool = True,
        max_databases: int = DEFAULT_MAX_DATABASES,
    ) -> None:
        self.runtime = ThreadNode(node_id, max_workers=max_workers, parallel=parallel)
        self._httpd = _NodeHttpServer((host, port), _NodeRequestHandler)
        self._httpd.runtime = self.runtime
        # ensure_database returns only the fingerprint over the wire; the
        # server keeps the decoded database objects for /serve lookups.
        self._httpd.databases = _DatabaseLru(self.runtime, max_databases)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=f"http-node-{node_id}", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    def close(self) -> None:
        self.runtime.close()
        self._httpd.shutdown()
        self._httpd.server_close()


# ----------------------------------------------------------------- client side


class HttpNode(Node):
    """Client-side handle to a remote node, speaking the wire format above.

    ``alive`` is the client's belief: it flips to ``False`` on any failed
    request (connection refused, node-side error) and back to ``True`` only
    through a successful :meth:`heartbeat` probe.

    Args:
        timeout: per-request socket timeout in seconds (connection,
            per-read); a ``retry`` carrying ``attempt_timeout`` overrides it.
        retry: optional :class:`RetryPolicy` — transport faults on control
            requests retry under it, and a serve stream dying before its
            first outcome is re-dispatched on this same node (deterministic
            serving makes the re-dispatch idempotent).  ``None`` keeps the
            fail-fast behavior: one attempt, first fault raises.
    """

    def __init__(
        self,
        node_id: str,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.node_id = node_id
        self._host = host
        self._port = port
        if retry is not None and retry.attempt_timeout is not None:
            timeout = retry.attempt_timeout
        self._timeout = timeout
        self._retry = retry
        self._alive = True
        self._killed = False
        self._shipped: set[str] = set()

    # ------------------------------------------------------------------ state

    @property
    def alive(self) -> bool:
        return self._alive and not self._killed

    @property
    def killed(self) -> bool:
        return self._killed

    def heartbeat(self) -> bool:
        try:
            payload = self._request_json("GET", "/healthz")
            self._alive = bool(payload.get("alive"))
        except Exception:
            self._alive = False
        return self.alive

    # ---------------------------------------------------------------- serving

    def ensure_database(self, database: AnyDatabase) -> str:
        fingerprint = database.content_fingerprint()
        if fingerprint not in self._shipped:
            reply = self._request_json(
                "POST", "/databases", {"database": encode_payload(database)}
            )
            remote = reply.get("fingerprint")
            if remote != fingerprint:
                # Never cache the node's key on trust: a digest disagreement
                # means the peers run skewed code (or the payload was mangled
                # in transit) and every later routing decision would be wrong.
                raise ReproError(
                    f"node {self.node_id!r} fingerprint mismatch for shipped "
                    f"database: local {fingerprint!r} != node {remote!r}"
                )
            self._shipped.add(fingerprint)
        return fingerprint

    def invalidate_shipped(self) -> None:
        """Forget which databases were shipped (the node restarted or was
        replaced behind this address); the next serve re-ships on demand."""
        self._shipped.clear()

    def serve_iter(
        self,
        workload: Workload,
        database: AnyDatabase,
        *,
        cancel: CancelMap = None,
    ) -> Iterator[QueryOutcome]:
        fingerprint = self.ensure_database(database)
        deadlines: dict[int, float] = {}
        if cancel is not None:
            now = monotonic()
            items: Iterator = (
                cancel.items()
                if isinstance(cancel, Mapping)
                else ((index, cancel) for index in range(len(workload)))
            )
            for index, token in items:
                if token is not None and token.deadline_at is not None:
                    deadlines[index] = token.deadline_at - now
        request = {
            "fingerprint": fingerprint,
            "workload": encode_payload(workload),
            "deadlines": deadlines,
        }
        redispatch = iter(
            self._retry.sleep_schedule() if self._retry is not None else ()
        )
        reshipped = False
        while True:
            served = 0
            try:
                for outcome in self._serve_attempt(request):
                    served += 1
                    yield outcome
                return
            except _StaleDatabaseError:
                # The node no longer holds this content (restart, or LRU
                # eviction): drop the stale belief, re-ship once, re-dispatch.
                if reshipped:
                    raise
                reshipped = True
                self._shipped.discard(fingerprint)
                request["fingerprint"] = self.ensure_database(database)
            except TRANSPORT_FAULTS as error:
                # Re-dispatch is only idempotent before the first outcome
                # reached the caller; past that point the exchange's failover
                # must recompute the tail on another node instead.
                delay = next(redispatch, None) if served == 0 else None
                if delay is None:
                    self._alive = False
                    raise ReproError(
                        f"node {self.node_id!r} connection failed: {error}"
                    ) from error
                sleep(delay)

    def _serve_attempt(self, request: dict) -> Iterator[QueryOutcome]:
        """One ``POST /serve`` attempt; transport faults propagate raw."""
        connection = self._connect()
        try:
            body = json.dumps(request)
            connection.request(
                "POST", "/serve", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            if response.status != 200:
                detail = response.read().decode(errors="replace")
                if response.status == 409 and "not registered" in detail:
                    raise _StaleDatabaseError(
                        f"node {self.node_id!r} no longer holds this database: "
                        f"{detail}"
                    )
                raise ReproError(
                    f"node {self.node_id!r} refused workload "
                    f"(HTTP {response.status}): {detail}"
                )
            count = None
            served = 0
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except ValueError as error:
                    # A node dying mid-response can splice error payloads into
                    # the chunk stream; treat any corruption as node failure.
                    self._alive = False
                    raise ReproError(
                        f"node {self.node_id!r} stream corrupted: {error}"
                    ) from error
                if "outcome" in message:
                    served += 1
                    try:
                        outcome = decode_payload(message["outcome"])
                    except Exception as error:
                        self._alive = False
                        raise ReproError(
                            f"node {self.node_id!r} stream corrupted: {error}"
                        ) from error
                    yield outcome
                elif "done" in message:
                    count = message["done"]
            if count is None or count != served:
                self._alive = False
                raise ReproError(
                    f"node {self.node_id!r} stream ended early "
                    f"({served} outcomes, terminator={count!r})"
                )
        finally:
            connection.close()

    # -------------------------------------------------------------- lifecycle

    def stats(self) -> NodeStats:
        return NodeStats.from_dict(self._request_json("GET", "/stats"))

    def kill(self) -> None:
        self._killed = True
        try:
            self._request_json("POST", "/kill")
        # repro: allow[err-swallowed-except] -- kill is best-effort: the node
        # may already be gone, and the client-side killed flag is the truth
        except Exception:
            pass

    def close(self) -> None:
        self._alive = False

    # --------------------------------------------------------------- plumbing

    def _connect(self) -> HTTPConnection:
        return HTTPConnection(self._host, self._port, timeout=self._timeout)

    def _request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        try:
            if self._retry is None:
                return self._request_once(method, path, payload)
            return self._retry.run(
                lambda: self._request_once(method, path, payload),
                retriable=TRANSPORT_FAULTS,
            )
        except TRANSPORT_FAULTS as error:
            self._alive = False
            raise ReproError(
                f"node {self.node_id!r} connection failed: {error}"
            ) from error

    def _request_once(self, method: str, path: str, payload: dict | None) -> dict:
        """One control request; transport faults propagate raw (retriable)."""
        connection = self._connect()
        try:
            body = json.dumps(payload) if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            if response.status != 200:
                self._alive = False
                raise ReproError(
                    f"node {self.node_id!r} {method} {path} -> HTTP {response.status}: "
                    + data.decode(errors="replace")
                )
            return json.loads(data)
        finally:
            connection.close()


class HttpNodeLauncher(NodeLauncher):
    """Launches loopback :class:`HttpNodeServer`\\ s and hands out handles.

    In-process by construction (each node is a daemon HTTP server thread in
    this interpreter) — the transport is real, the deployment is a harness.
    Launching against remote hosts means constructing :class:`HttpNode`
    handles yourself and registering them on the manager.

    ``request_timeout`` / ``retry`` configure every handle this launcher
    hands out; ``max_databases`` bounds every node's database LRU.
    """

    #: Handle class :meth:`launch` constructs; subclasses substitute their
    #: own (the chaos launcher in ``tests/faults.py`` hands out handles whose
    #: transport misbehaves on cue), and ``replace()`` then inherits it.
    handle_class: type[HttpNode] = HttpNode

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        max_workers: int | None = None,
        parallel: bool = True,
        request_timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        max_databases: int = DEFAULT_MAX_DATABASES,
    ) -> None:
        self._host = host
        self._max_workers = max_workers
        self._parallel = parallel
        self._request_timeout = request_timeout
        self._retry = retry
        self._max_databases = max_databases
        self._servers: list[HttpNodeServer] = []

    def launch(self, node_id: str) -> HttpNode:
        server = HttpNodeServer(
            node_id,
            host=self._host,
            max_workers=self._max_workers,
            parallel=self._parallel,
            max_databases=self._max_databases,
        )
        self._servers.append(server)
        host, port = server.address
        return self.handle_class(
            node_id, host, port, timeout=self._request_timeout, retry=self._retry
        )

    def close(self) -> None:
        for server in self._servers:
            server.close()
        self._servers.clear()


class HttpExchange(RoutedExchange):
    """Fingerprint-routed serving over HTTP nodes.

    Same routing, scatter/gather and failover engine as
    :class:`~repro.service.exchange.threads.ThreadExchange`; only the node
    transport differs.
    """

    def __init__(
        self,
        nodes: int = 2,
        *,
        manager: NodeManager | None = None,
        router: Router | None = None,
        max_failovers: int = 3,
        degraded_fallback: bool = True,
        host: str = "127.0.0.1",
        max_workers: int | None = None,
        parallel: bool = True,
        request_timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        max_databases: int = DEFAULT_MAX_DATABASES,
    ) -> None:
        if manager is None:
            manager = NodeManager(
                HttpNodeLauncher(
                    host=host,
                    max_workers=max_workers,
                    parallel=parallel,
                    request_timeout=request_timeout,
                    retry=retry,
                    max_databases=max_databases,
                )
            )
        if not manager.node_ids():
            if nodes < 1:
                raise ValueError(f"an HttpExchange needs >= 1 node (got {nodes})")
            manager.spawn(nodes)
        super().__init__(
            manager,
            router=router,
            max_failovers=max_failovers,
            degraded_fallback=degraded_fallback,
        )
