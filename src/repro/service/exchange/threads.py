"""Routed exchanges: fingerprint routing, scatter/gather, node failover.

:class:`RoutedExchange` is the shared engine of every multi-node exchange:
it routes each envelope part to the node that rendezvous-owns the part's
database fingerprint, scatters multi-database envelopes across nodes
(gathering through a :class:`~repro.service.exchange.base.Mailbox`), and
re-routes the unserved tail of a part when its node dies mid-stream —
falling back to structured ``error`` outcomes only when no node (or
replacement) can serve, so an envelope index is never lost.

:class:`ThreadExchange` is its in-process instantiation: N
:class:`~repro.service.exchange.nodes.ThreadNode`\\ s in this process, each
with its own warm worker pools — the middle rung of the local → thread →
HTTP exchange ladder, where all routing/failover machinery is exercised
without any network in the loop.

Failover never loses or duplicates an outcome: outcomes already delivered
for a part stay delivered (their part-local indices are removed from the
``remaining`` set); the kill check runs *before* each yield, so an outcome
produced by a dying node's teardown path (e.g. a pool-shutdown error) is
discarded and its query recomputed on the next node — deterministic
execution makes the recomputed outcome identical to what the dead node
would have answered, which is exactly the property the distributed
conformance variants pin.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator, Mapping
from dataclasses import replace

from ...exceptions import ReproError
from ..cache import CacheStats, LanguageCache
from ..outcome import ERROR, QueryOutcome
from ..server import ResilienceServer
from ..workload import Workload
from .base import (
    CancelMap,
    EnvelopePart,
    Exchange,
    Mailbox,
    Node,
    NodeStats,
    WorkloadEnvelope,
)
from .manager import NodeManager, ThreadNodeLauncher
from .router import Router


class RoutedExchange(Exchange):
    """Envelope serving over a :class:`NodeManager` fleet.

    Args:
        manager: the node fleet (with or without a launcher; without one,
            failed nodes cannot be auto-replaced and exhausted failover
            surfaces structured errors).
        router: rendezvous router (a default :class:`Router` if omitted).
        max_failovers: node failures tolerated per envelope part before its
            unserved queries fail structurally.
        degraded_fallback: when a part's failover chain is exhausted
            (``NodeLost``), serve its unserved tail with an in-process serial
            server instead of failing structurally.  The serial path is the
            reference semantics every node is pinned against, so the fallback
            is outcome-identical by construction; each use increments
            :attr:`degraded_serves`.  Protocol breaches (a node ending its
            stream early) never degrade — replaying a broken contract
            in-process would mask the bug.
    """

    def __init__(
        self,
        manager: NodeManager,
        *,
        router: Router | None = None,
        max_failovers: int = 3,
        degraded_fallback: bool = True,
    ) -> None:
        self._manager = manager
        self._router = router if router is not None else Router()
        self._max_failovers = max_failovers
        self._degraded_fallback = degraded_fallback
        self._degraded_serves = 0
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ fleet

    @property
    def manager(self) -> NodeManager:
        return self._manager

    @property
    def router(self) -> Router:
        return self._router

    def register(self, node: Node) -> None:
        self._manager.register(node)

    def route_for(self, database) -> str:
        """The node id currently owning a database (testing/ops surface)."""
        return self._router.route(
            database.content_fingerprint(), self._manager.live_ids()
        )

    @property
    def degraded_serves(self) -> int:
        """Envelope parts answered by the in-process serial fallback."""
        with self._lock:
            return self._degraded_serves

    def stats(self) -> tuple[NodeStats, ...]:
        return self._manager.stats()

    def heartbeat(self) -> dict[str, bool]:
        return self._manager.heartbeat()

    def close(self) -> None:
        self._closed = True
        self._manager.close()

    # ---------------------------------------------------------------- serving

    def submit(
        self, envelope: WorkloadEnvelope, *, cancel: CancelMap = None
    ) -> Iterator[QueryOutcome]:
        if self._closed:
            raise ReproError(f"this {type(self).__name__} is closed")
        if len(envelope.parts) == 1:
            return self._serve_part(envelope.parts[0], 0, cancel)
        return self._scatter(envelope, cancel)

    def _scatter(
        self, envelope: WorkloadEnvelope, cancel: CancelMap
    ) -> Iterator[QueryOutcome]:
        """Serve each part on its own thread, gather through one mailbox."""
        mailbox = Mailbox(expected_parts=len(envelope.parts))

        def serve_part(part: EnvelopePart, offset: int) -> None:
            try:
                for outcome in self._serve_part(part, offset, cancel):
                    if mailbox.closed:
                        break
                    mailbox.post(outcome)
            finally:
                mailbox.finish_part()

        for offset, part in zip(envelope.offsets(), envelope.parts):
            threading.Thread(
                target=serve_part,
                args=(part, offset),
                name=f"exchange-scatter-{offset}",
                daemon=True,
            ).start()
        try:
            yield from mailbox
        finally:
            mailbox.close()

    def _serve_part(
        self, part: EnvelopePart, offset: int, cancel: CancelMap
    ) -> Iterator[QueryOutcome]:
        """Serve one part with re-route-on-death, yielding global indices."""
        fingerprint = part.fingerprint()
        specs = part.workload.specs
        remaining = dict(enumerate(specs))
        tried: set[int] = set()  # id() of node objects that already failed
        failures = 0
        reason = "NodeLost: no live node available to serve this workload"
        while remaining:
            node = self._pick_node(fingerprint, tried)
            if node is None:
                break
            clean_pass = True
            try:
                node.ensure_database(part.database)
                yield from self._drain_node(node, part, offset, remaining, cancel)
            except Exception as error:
                clean_pass = False
                reason = f"{type(error).__name__}: {error}"
            if not remaining:
                return
            if clean_pass and not node.killed:
                # The node's stream ended while queries were still unserved —
                # a broken serving contract, not a crash.  Re-routing would
                # just replay the bug elsewhere; fail what's left.
                reason = "NodeProtocolError: node ended its stream with unserved queries"
                break
            tried.add(id(node))
            failures += 1
            if failures > self._max_failovers:
                reason = f"NodeLost: gave up after {failures} node failures ({reason})"
                break
        if remaining and self._degraded_fallback and reason.startswith("NodeLost"):
            # The whole chain is gone, not misbehaving: fall back to serving
            # the tail in-process rather than failing queries we can answer.
            try:
                yield from self._serve_degraded(part, offset, remaining, cancel)
            except Exception as error:
                reason = f"DegradedServeFailed: {type(error).__name__}: {error}"
        for local in sorted(remaining):
            spec = remaining[local]
            yield QueryOutcome(
                index=offset + local,
                query=spec.display_name(),
                status=ERROR,
                method=spec.method,
                error=reason,
            )

    def _drain_node(
        self,
        node: Node,
        part: EnvelopePart,
        offset: int,
        remaining: dict,
        cancel: CancelMap,
    ) -> Iterator[QueryOutcome]:
        """One node's attempt at a part's remaining queries.

        Delivered queries are removed from ``remaining`` as their outcomes
        are yielded; the kill check precedes every yield, so a node dying
        mid-stream leaves ``remaining`` exactly the unserved tail (teardown
        artifacts from the dying node are discarded, then recomputed by the
        next node).
        """
        locals_in_order = sorted(remaining)
        sub_workload = Workload(tuple(remaining[local] for local in locals_in_order))
        sub_cancel = self._sub_cancel(locals_in_order, offset, cancel)
        iterator = node.serve_iter(sub_workload, part.database, cancel=sub_cancel)
        try:
            for outcome in iterator:
                if node.killed:
                    return
                local = locals_in_order[outcome.index]
                if local in remaining:
                    del remaining[local]
                    yield replace(outcome, index=offset + local)
        finally:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()

    def _serve_degraded(
        self, part: EnvelopePart, offset: int, remaining: dict, cancel: CancelMap
    ) -> Iterator[QueryOutcome]:
        """Last resort: serve a part's unserved tail in-process, serially.

        Used only when the failover chain is exhausted (``NodeLost``).  A
        one-shot serial :class:`~repro.service.server.ResilienceServer` with
        a fresh string-keyed cache *is* the uncached serial reference the
        conformance suite pins every node against, so degrading cannot change
        an answer — it only changes where the work runs.
        """
        with self._lock:
            self._degraded_serves += 1
        locals_in_order = sorted(remaining)
        sub_workload = Workload(tuple(remaining[local] for local in locals_in_order))
        sub_cancel = self._sub_cancel(locals_in_order, offset, cancel)
        server = ResilienceServer(
            part.database, parallel=False, cache=LanguageCache(canonical=False)
        )
        try:
            for outcome in server.serve_iter(sub_workload, cancel=sub_cancel):
                local = locals_in_order[outcome.index]
                if local in remaining:
                    del remaining[local]
                    yield replace(outcome, index=offset + local)
        finally:
            server.close()

    @staticmethod
    def _sub_cancel(
        locals_in_order: list[int], offset: int, cancel: CancelMap
    ) -> CancelMap:
        """Remap envelope-global cancel tokens onto a sub-workload's indices."""
        if not isinstance(cancel, Mapping):
            return cancel
        return {
            sub_index: token
            for sub_index, local in enumerate(locals_in_order)
            if (token := cancel.get(offset + local)) is not None
        }

    def _pick_node(self, fingerprint: str, tried: set[int]) -> Node | None:
        """The best untried live node for a key, auto-replacing a dead fleet.

        When every registered node is dead or already failed this part and
        the manager has a launcher, one dead node is replaced (under its own
        id, preserving everyone else's routing) and serving continues there.
        """
        for _ in range(2):
            live = [
                node_id
                for node_id in self._manager.live_ids()
                if id(self._manager.node(node_id)) not in tried
            ]
            if live:
                return self._manager.node(self._router.route(fingerprint, live))
            if self._manager.launcher is None:
                return None
            dead = [
                node_id
                for node_id in self._manager.node_ids()
                if not self._manager.node(node_id).alive
            ]
            if not dead:
                return None
            # Replace the node that rendezvous-owns this key among the dead,
            # so the replacement is also the natural owner going forward.
            try:
                self._manager.replace(self._router.route(fingerprint, dead))
            # repro: allow[err-swallowed-except] -- replacement is opportunistic:
            # a failed launch means "no node", which the caller turns into
            # structured error outcomes for the unserved queries
            except Exception:
                return None
        return None


class ThreadExchange(RoutedExchange):
    """N in-process nodes, each with its own warm pools, routed by fingerprint.

    Args:
        nodes: fleet size to spawn (ignored when a pre-populated ``manager``
            is supplied).
        manager: bring your own fleet; otherwise one is built from a
            :class:`~repro.service.exchange.manager.ThreadNodeLauncher` with
            the remaining arguments.
        max_workers / parallel / cache: per-node server configuration (see
            :class:`~repro.service.exchange.nodes.ThreadNode`); only used
            when the exchange builds its own launcher.
    """

    def __init__(
        self,
        nodes: int = 2,
        *,
        manager: NodeManager | None = None,
        router: Router | None = None,
        max_failovers: int = 3,
        degraded_fallback: bool = True,
        max_workers: int | None = None,
        parallel: bool = True,
        cache: LanguageCache | None = None,
    ) -> None:
        if manager is None:
            manager = NodeManager(
                ThreadNodeLauncher(
                    max_workers=max_workers, parallel=parallel, cache=cache
                )
            )
        elif max_workers is not None or cache is not None or not parallel:
            raise ValueError(
                "node configuration arguments only apply when ThreadExchange "
                "builds its own launcher; configure the supplied manager's "
                "launcher instead"
            )
        # Nodes sharing a cache report empty per-node CacheStats (see
        # ThreadNode.stats); the exchange reports the shared cache once.
        self._shared_cache = cache
        if not manager.node_ids():
            if nodes < 1:
                raise ValueError(f"a ThreadExchange needs >= 1 node (got {nodes})")
            manager.spawn(nodes)
        super().__init__(
            manager,
            router=router,
            max_failovers=max_failovers,
            degraded_fallback=degraded_fallback,
        )

    def shared_cache_stats(self) -> "CacheStats | None":
        if self._shared_cache is None:
            return None
        return self._shared_cache.stats.snapshot()
