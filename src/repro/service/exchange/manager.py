"""Node lifecycle: launchers make nodes, the manager tracks the fleet.

The :class:`NodeManager`/:class:`NodeLauncher` split separates *what the
fleet is* from *how a node comes to exist*: the manager owns the registry
(spawn, drain, kill, replace, heartbeat) and is transport-blind; a launcher
knows how to construct one concrete node — in-process
(:class:`ThreadNodeLauncher`) or behind a socket
(:class:`~repro.service.exchange.http.HttpNodeLauncher`).

Replacement preserves identity: :meth:`NodeManager.replace` registers the
new node under the dead node's id, so rendezvous routing hands it exactly
the dead node's keys and every other node keeps its warm databases (see
:mod:`~repro.service.exchange.router`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ...exceptions import ReproError
from ..cache import LanguageCache
from .base import Node
from .health import HealthMonitor
from .nodes import ThreadNode


class NodeLauncher(ABC):
    """Constructs one node per :meth:`launch` call; owns launch-time config."""

    @abstractmethod
    def launch(self, node_id: str) -> Node:
        ...

    def close(self) -> None:
        """Release launcher-held resources (idempotent)."""


class ThreadNodeLauncher(NodeLauncher):
    """Launches :class:`~repro.service.exchange.nodes.ThreadNode` instances.

    ``cache`` (optional) is shared by *every* node this launcher makes —
    the fleet-wide session cache of the conformance harness.  Omit it and
    each node owns a private cache instead.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        parallel: bool = True,
        cache: LanguageCache | None = None,
    ) -> None:
        self._max_workers = max_workers
        self._parallel = parallel
        self._cache = cache

    def launch(self, node_id: str) -> ThreadNode:
        return ThreadNode(
            node_id,
            max_workers=self._max_workers,
            parallel=self._parallel,
            cache=self._cache,
        )


class NodeManager:
    """The fleet registry: who exists, who serves, who gets replaced.

    Registration is strict: a second node under a *live* id is a
    configuration error and raises — silently shadowing a serving node would
    strand its in-flight streams.  Re-registering over a dead node is how
    replacement works.
    """

    def __init__(self, launcher: NodeLauncher | None = None) -> None:
        self._launcher = launcher
        self._nodes: dict[str, Node] = {}
        self._draining: set[str] = set()
        self._spawned = 0
        self._monitor: HealthMonitor | None = None

    # ---------------------------------------------------------------- registry

    @property
    def launcher(self) -> NodeLauncher | None:
        return self._launcher

    def register(self, node: Node) -> None:
        existing = self._nodes.get(node.node_id)
        if existing is not None and existing.alive:
            raise ReproError(
                f"duplicate node registration: {node.node_id!r} is already live"
            )
        self._nodes[node.node_id] = node
        self._draining.discard(node.node_id)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ReproError(f"unknown node {node_id!r}") from None

    def node_ids(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def live_ids(self) -> list[str]:
        """Routable nodes: believed alive and not draining.

        Uses each node's cached :attr:`~repro.service.exchange.base.Node.alive`
        belief — active probing is :meth:`heartbeat`'s job, so routing a
        submission never blocks on N network round-trips.
        """
        return [
            node_id
            for node_id, node in self._nodes.items()
            if node.alive and node_id not in self._draining
        ]

    # --------------------------------------------------------------- lifecycle

    def spawn(self, count: int = 1) -> list[Node]:
        """Launch and register ``count`` fresh nodes (``node-0``, ``node-1``…)."""
        if self._launcher is None:
            raise ReproError("this NodeManager has no launcher; register nodes yourself")
        spawned = []
        for _ in range(count):
            node = self._launcher.launch(f"node-{self._spawned}")
            self._spawned += 1
            self.register(node)
            spawned.append(node)
        return spawned

    def drain(self, node_id: str) -> None:
        """Stop routing new work to the node; in-flight streams finish."""
        self.node(node_id)
        self._draining.add(node_id)

    def kill(self, node_id: str) -> None:
        """Abruptly tear a node down (it stays registered, marked dead)."""
        self.node(node_id).kill()

    def replace(self, node_id: str) -> Node:
        """Launch a fresh node under an existing id (killing the old if live).

        Identity reuse is deliberate: the replacement inherits exactly the
        dead node's rendezvous keys, leaving every other node's warm
        databases untouched.
        """
        if self._launcher is None:
            raise ReproError("this NodeManager has no launcher; cannot replace nodes")
        old = self.node(node_id)
        if old.alive:
            old.kill()
        replacement = self._launcher.launch(node_id)
        self.register(replacement)
        return replacement

    def heartbeat(self) -> dict[str, bool]:
        """Actively probe every registered node; ``node_id -> alive``."""
        return {node_id: node.heartbeat() for node_id, node in self._nodes.items()}

    def stats(self):
        return tuple(node.stats() for node in self._nodes.values())

    # ------------------------------------------------------------- supervision

    @property
    def monitor(self) -> HealthMonitor | None:
        """The running health supervisor, if :meth:`start_monitor` was called."""
        return self._monitor

    def start_monitor(self, **kwargs) -> HealthMonitor:
        """Attach and start a :class:`HealthMonitor` over this fleet.

        Keyword arguments go to the monitor (``interval``,
        ``failure_threshold``, ``cooldown_ticks``, ``replace_after``).  One
        monitor per manager; :meth:`close` stops it.
        """
        if self._monitor is not None:
            raise ReproError("this NodeManager already has a health monitor")
        self._monitor = HealthMonitor(self, **kwargs)
        return self._monitor.start()

    def close(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None
        for node in self._nodes.values():
            node.close()
        if self._launcher is not None:
            self._launcher.close()
