"""In-process serving nodes: one warm :class:`ResilienceServer` per database.

A :class:`ThreadNode` is the node-layer runtime every exchange ultimately
serves through: it lazily builds one
:class:`~repro.service.server.ResilienceServer` per registered database
fingerprint (each with its own warm worker pool) and streams outcomes for
sub-workloads routed to it.  :class:`ThreadExchange` holds several of these
directly; the HTTP transport wraps one behind a socket — the runtime is the
same either way, so in-process and over-the-wire serving cannot drift.
"""

from __future__ import annotations

from collections.abc import Iterator

from ...exceptions import ReproError
from ...resilience.engine import CacheStats
from ..cache import LanguageCache
from ..outcome import QueryOutcome
from ..server import PoolStats, ResilienceServer
from ..workload import Workload
from .base import AnyDatabase, CancelMap, Node, NodeStats


class ThreadNode(Node):
    """One in-process serving node.

    Args:
        node_id: stable routing identity.
        max_workers: per-server pool width cap (see
            :class:`~repro.service.server.ResilienceServer`).
        parallel: ``False`` pins the node's servers to the serial path.
        cache: optional session :class:`LanguageCache` *shared* across this
            node's servers — and possibly across nodes (the conformance
            harness shares one cache fleet-wide so canonical representatives
            agree everywhere).  When omitted the node owns a fresh cache;
            only an owned cache is reported in :meth:`stats`, so fleet
            aggregation never double-counts a shared object.
    """

    def __init__(
        self,
        node_id: str,
        *,
        max_workers: int | None = None,
        parallel: bool = True,
        cache: LanguageCache | None = None,
    ) -> None:
        self.node_id = node_id
        self._max_workers = max_workers
        self._parallel = parallel
        self._owns_cache = cache is None
        self._cache = cache if cache is not None else LanguageCache()
        self._servers: dict[str, ResilienceServer] = {}
        self._envelopes_served = 0
        self._killed = False
        self._closed = False

    # ------------------------------------------------------------------ state

    @property
    def alive(self) -> bool:
        return not self._killed and not self._closed

    @property
    def killed(self) -> bool:
        return self._killed

    @property
    def cache(self) -> LanguageCache:
        return self._cache

    def heartbeat(self) -> bool:
        return self.alive

    # ---------------------------------------------------------------- serving

    def ensure_database(self, database: AnyDatabase) -> str:
        if not self.alive:
            raise ReproError(f"node {self.node_id!r} is not serving")
        fingerprint = database.content_fingerprint()
        if fingerprint not in self._servers:
            self._servers[fingerprint] = ResilienceServer(
                database,
                max_workers=self._max_workers,
                parallel=self._parallel,
                cache=self._cache,
            )
        return fingerprint

    def evict_database(self, fingerprint: str) -> None:
        """Drop the warm server for one fingerprint (bounded-cache eviction).

        A later :meth:`ensure_database` for the same content rebuilds it;
        eviction trades warmth for memory, never correctness.  Unknown
        fingerprints are a no-op.
        """
        server = self._servers.pop(fingerprint, None)
        if server is not None:
            server.close()

    def serve_iter(
        self,
        workload: Workload,
        database: AnyDatabase,
        *,
        cancel: CancelMap = None,
    ) -> Iterator[QueryOutcome]:
        if not self.alive:
            raise ReproError(f"node {self.node_id!r} is not serving")
        server = self._servers.get(self.ensure_database(database))
        self._envelopes_served += 1
        return server.serve_iter(workload, database=database, cancel=cancel)

    # -------------------------------------------------------------- lifecycle

    def stats(self) -> NodeStats:
        return NodeStats(
            node_id=self.node_id,
            alive=self.alive,
            databases=len(self._servers),
            envelopes_served=self._envelopes_served,
            cache=self._cache.stats.snapshot() if self._owns_cache else CacheStats(),
            pool=PoolStats.aggregate(
                server.pool_stats() for server in self._servers.values()
            ),
        )

    def kill(self) -> None:
        """Abrupt teardown (fault injection): in-flight streams on this node
        will observe :attr:`killed` and hand their unserved tail back to the
        exchange for re-routing."""
        self._killed = True
        for server in self._servers.values():
            server.close()

    def close(self) -> None:
        self._closed = True
        for server in self._servers.values():
            server.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "killed" if self._killed else ("closed" if self._closed else "alive")
        return f"ThreadNode({self.node_id!r}, {state}, databases={len(self._servers)})"
