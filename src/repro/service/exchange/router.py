"""Fingerprint routing: rendezvous hashing from databases to nodes.

The routed exchanges keep each node warm for "its" databases: every database
content fingerprint is owned by exactly one node of the current live set, so
repeated workloads against the same database land on the same warm pool and
the result-level cache that already holds their answers.

Rendezvous (highest-random-weight) hashing gives the two properties the
fleet needs without any coordination state:

* **determinism** — every caller with the same live set computes the same
  owner, with no routing table to replicate or invalidate;
* **minimal disruption** — when a node leaves, only the keys it owned move
  (they redistribute over the survivors); when a node joins, it steals only
  the keys it now wins.  Crucially, a *replacement* node registered under the
  dead node's id owns exactly the dead node's keys — which is why
  :meth:`~repro.service.exchange.manager.NodeManager.replace` reuses ids.

The hash is ``sha256(node_id || "::" || fingerprint)``: stable across
processes and hosts (no :func:`hash` randomization), keyed on content so
equal databases route identically everywhere.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from ...exceptions import ReproError


class Router:
    """Stateless rendezvous router over whatever node ids it is handed."""

    @staticmethod
    def score(node_id: str, fingerprint: str) -> bytes:
        return hashlib.sha256(f"{node_id}::{fingerprint}".encode()).digest()

    def route(self, fingerprint: str, node_ids: Sequence[str]) -> str:
        """The owning node id for one database fingerprint.

        Raises :class:`~repro.exceptions.ReproError` on an empty live set —
        the caller (the exchange's failover loop) decides whether that means
        replacement or structured failure, not the router.
        """
        if not node_ids:
            raise ReproError("cannot route: no live nodes")
        return max(node_ids, key=lambda node_id: self.score(node_id, fingerprint))

    def ranking(self, fingerprint: str, node_ids: Sequence[str]) -> list[str]:
        """All candidates, best first — the failover order for one key."""
        return sorted(
            node_ids, key=lambda node_id: self.score(node_id, fingerprint), reverse=True
        )
