"""The exchange layer: transport-agnostic routing between front-end and nodes.

The serving stack is three layers — front-end
(:class:`~repro.service.async_server.AsyncResilienceServer`: admission,
merging, streaming), **exchange** (this package: routing, scatter/gather,
failover), nodes (warm :class:`~repro.service.server.ResilienceServer`
pools).  The front-end codes against the :class:`Exchange` contract only, so
the same admission-controlled surface serves in-process
(:class:`LocalExchange`), over an in-process fleet (:class:`ThreadExchange`)
or over HTTP (:class:`HttpExchange`) — the local → thread → HTTP ladder,
each rung pinned outcome-identical to the uncached serial reference by the
conformance suite.
"""

from .base import (
    CancelMap,
    EnvelopePart,
    Exchange,
    Mailbox,
    Node,
    NodeStats,
    WorkloadEnvelope,
)
from .health import CircuitBreaker, HealthMonitor, RetryPolicy
from .http import HttpExchange, HttpNode, HttpNodeLauncher, HttpNodeServer
from .local import LocalExchange
from .manager import NodeLauncher, NodeManager, ThreadNodeLauncher
from .nodes import ThreadNode
from .router import Router
from .threads import RoutedExchange, ThreadExchange

__all__ = [
    "CancelMap",
    "CircuitBreaker",
    "EnvelopePart",
    "Exchange",
    "HealthMonitor",
    "HttpExchange",
    "HttpNode",
    "HttpNodeLauncher",
    "HttpNodeServer",
    "LocalExchange",
    "Mailbox",
    "Node",
    "NodeLauncher",
    "NodeManager",
    "NodeStats",
    "RetryPolicy",
    "RoutedExchange",
    "Router",
    "ThreadExchange",
    "ThreadNode",
    "ThreadNodeLauncher",
    "WorkloadEnvelope",
]
