"""The exchange protocol: envelopes in, outcome streams out, nodes underneath.

This module defines the transport-agnostic vocabulary of the middle layer of
the serving stack (front-end → **exchange** → nodes):

* :class:`WorkloadEnvelope` — what a front-end submits: one or more
  :class:`EnvelopePart`\\ s, each a :class:`~repro.service.workload.Workload`
  bound to the database it runs against.  Envelope-global outcome indices are
  the concatenation of the parts, in order, so a multi-database round stays
  one stream with one index space.
* :class:`Node` — the serving side: something that can hold databases warm
  and stream :class:`~repro.service.outcome.QueryOutcome`\\ s for a workload
  against one of them (a :class:`~repro.service.exchange.nodes.ThreadNode`
  in-process, an :class:`~repro.service.exchange.http.HttpNode` over the
  wire).
* :class:`NodeStats` — one node's observability snapshot, aggregated by the
  front-end's :meth:`~repro.service.async_server.AsyncResilienceServer.metrics`.
* :class:`Exchange` — the contract the front-end codes against: submit an
  envelope, iterate outcomes (envelope-global indices, completion order),
  plus node registration/heartbeat for the routed implementations.
* :class:`Mailbox` — the gather half of scatter/gather: serving threads post
  outcomes from per-node sub-streams, the consumer drains one merged stream.

Every implementation must uphold the serving contract the conformance suite
pins: exactly one outcome per envelope query (no loss, no duplication, no
cross-workload leaks), outcome-identical to the uncached serial reference
once re-sorted by index.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field, fields

from ...exceptions import ReproError
from ...graphdb.database import BagGraphDatabase, GraphDatabase
from ...resilience.engine import CacheStats
from ..cancellation import CancellationToken
from ..outcome import QueryOutcome
from ..server import PoolStats
from ..workload import Workload

AnyDatabase = GraphDatabase | BagGraphDatabase

#: ``cancel=`` shape at the exchange boundary: envelope-global index -> token.
CancelMap = Mapping[int, CancellationToken] | CancellationToken | None


@dataclass(frozen=True)
class EnvelopePart:
    """One workload bound to the database it runs against."""

    workload: Workload
    database: AnyDatabase

    def fingerprint(self) -> str:
        """Routing key: the database's content digest (stable across hosts)."""
        return self.database.content_fingerprint()

    def __len__(self) -> int:
        return len(self.workload)


@dataclass(frozen=True)
class WorkloadEnvelope:
    """A front-end submission: parts concatenated into one index space.

    Outcome index ``g`` belongs to part ``k`` at part-local index
    ``g - offset(k)`` where ``offset(k)`` is the total length of parts
    ``0..k-1``.  The common case — everything in a merged round against one
    database — is a single part, which routed exchanges serve without any
    scatter machinery.
    """

    parts: tuple[EnvelopePart, ...]

    @classmethod
    def single(cls, workload: Workload, database: AnyDatabase) -> "WorkloadEnvelope":
        return cls(parts=(EnvelopePart(workload=workload, database=database),))

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def offsets(self) -> list[int]:
        """The envelope-global index where each part starts."""
        offsets, total = [], 0
        for part in self.parts:
            offsets.append(total)
            total += len(part)
        return offsets


@dataclass(frozen=True)
class NodeStats:
    """One node's observability snapshot (the per-node metrics unit).

    ``cache`` counts only a cache the node *owns*: nodes sharing one session
    cache (the conformance harness's shared-cache variants) report empty
    cache stats so fleet aggregation never double-counts one object.

    Attributes:
        node_id: stable routing identity (survives replacement).
        alive: whether the node is believed serveable right now.
        databases: databases the node holds warm servers for.
        envelopes_served: sub-workloads this node has accepted.
        cache: the node-owned language cache counters.
        pool: worker-pool counters summed over the node's servers.
    """

    node_id: str
    alive: bool
    databases: int
    envelopes_served: int
    cache: CacheStats
    pool: PoolStats

    def as_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "alive": self.alive,
            "databases": self.databases,
            "envelopes_served": self.envelopes_served,
            "cache": self.cache.as_dict(),
            "pool": self.pool.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NodeStats":
        """Rebuild from :meth:`as_dict` output (the HTTP stats wire format)."""
        cache = CacheStats(
            **{f.name: payload["cache"].get(f.name, 0) for f in fields(CacheStats)}
        )
        return cls(
            node_id=payload["node_id"],
            alive=payload["alive"],
            databases=payload["databases"],
            envelopes_served=payload["envelopes_served"],
            cache=cache,
            pool=PoolStats.from_dict(payload["pool"]),
        )


class Node(ABC):
    """A serving node: warm servers for its databases, streamed outcomes."""

    node_id: str

    @property
    @abstractmethod
    def alive(self) -> bool:
        """Current belief, without probing (see :meth:`heartbeat`)."""

    @property
    @abstractmethod
    def killed(self) -> bool:
        """Whether the node was torn down abruptly (crash or kill)."""

    @abstractmethod
    def ensure_database(self, database: AnyDatabase) -> str:
        """Make the node able to serve ``database``; returns its fingerprint.

        Idempotent — registering the same content twice is free.
        """

    @abstractmethod
    def serve_iter(
        self,
        workload: Workload,
        database: AnyDatabase,
        *,
        cancel: CancelMap = None,
    ) -> Iterator[QueryOutcome]:
        """Stream outcomes for one workload against one registered database."""

    @abstractmethod
    def heartbeat(self) -> bool:
        """Actively probe the node, updating and returning :attr:`alive`."""

    def invalidate_shipped(self) -> None:
        """Drop any handle-side belief about databases the node holds.

        Called by the health supervisor when a node's circuit *recloses*: a
        node answering probes again after being dark has typically restarted,
        and a restarted process has lost every database this handle shipped.
        In-process nodes hold their databases directly, so the default is a
        no-op; transport handles with client-side shipped-state override it.
        """

    @abstractmethod
    def stats(self) -> NodeStats:
        ...

    @abstractmethod
    def kill(self) -> None:
        """Tear the node down abruptly (fault injection / forced eviction)."""

    @abstractmethod
    def close(self) -> None:
        """Graceful shutdown; idempotent."""


class Exchange(ABC):
    """What the async front-end owns: envelope in, outcome stream out.

    Implementations: :class:`~repro.service.exchange.local.LocalExchange`
    (one in-process server, zero routing), routed exchanges over a node fleet
    (:class:`~repro.service.exchange.threads.ThreadExchange`,
    :class:`~repro.service.exchange.http.HttpExchange`).
    """

    @abstractmethod
    def submit(
        self, envelope: WorkloadEnvelope, *, cancel: CancelMap = None
    ) -> Iterator[QueryOutcome]:
        """Serve one envelope, yielding outcomes with envelope-global indices.

        Exactly one outcome per envelope query, in completion order.  Node
        failures surface as re-routed results or structured ``error``
        outcomes — never as lost indices.
        """

    @abstractmethod
    def stats(self) -> tuple[NodeStats, ...]:
        """Per-node observability snapshots, one per registered node."""

    @abstractmethod
    def close(self) -> None:
        ...

    # --------------------------------------------------------- fleet surface

    @property
    def degraded_serves(self) -> int:
        """Envelope parts answered by the in-process serial fallback.

        Non-zero only on routed exchanges with ``degraded_fallback`` enabled;
        the front-end surfaces it in
        :class:`~repro.service.async_server.ServerMetrics`.
        """
        return 0

    def shared_cache_stats(self) -> "CacheStats | None":
        """Counters of a fleet-shared :class:`LanguageCache`, if one exists.

        Nodes serving from a shared cache deliberately report empty per-node
        :class:`CacheStats` (a shared cache counted once per node would be
        counted N times in the fleet roll-up); this hook lets the exchange
        report the shared cache exactly once instead, so the front-end's
        :class:`~repro.service.async_server.ServerMetrics` aggregate includes
        it.  ``None`` when the exchange holds no shared cache.
        """
        return None

    def nodes(self) -> tuple[str, ...]:
        """Registered node ids (dead nodes included, until replaced)."""
        return tuple(snapshot.node_id for snapshot in self.stats())

    def heartbeat(self) -> dict[str, bool]:
        """Probe every registered node; ``node_id -> alive``."""
        return {snapshot.node_id: snapshot.alive for snapshot in self.stats()}

    def register(self, node: Node) -> None:
        """Attach an externally launched node (routed exchanges only)."""
        raise ReproError(f"{type(self).__name__} does not accept external nodes")

    def worker_pids(self) -> frozenset[int]:
        """Union of worker PIDs across nodes (remote nodes report their own
        hosts' PIDs — meaningful for diagnostics, not for local signalling)."""
        pids: set[int] = set()
        for snapshot in self.stats():
            pids.update(snapshot.pool.worker_pids)
        return frozenset(pids)

    def __enter__(self) -> "Exchange":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class Mailbox:
    """Thread-safe gather stream for a scattered envelope.

    Each scatter thread serves one envelope part and :meth:`post`\\ s its
    outcomes here; the submitting consumer iterates one merged stream that
    ends when every part called :meth:`finish_part`.  :meth:`close` is the
    consumer abandoning the stream: posts become no-ops and serving threads
    poll :attr:`closed` between outcomes to stop early.
    """

    expected_parts: int
    _queue: queue.Queue = field(default_factory=queue.Queue)
    _finished: int = 0
    _closed: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock)

    _DONE = object()

    @property
    def closed(self) -> bool:
        return self._closed

    def post(self, outcome: QueryOutcome) -> None:
        if not self._closed:
            self._queue.put(outcome)

    def finish_part(self) -> None:
        with self._lock:
            self._finished += 1
            if self._finished == self.expected_parts:
                self._queue.put(self._DONE)

    def close(self) -> None:
        self._closed = True
        self._queue.put(self._DONE)

    def __iter__(self) -> Iterator[QueryOutcome]:
        while True:
            item = self._queue.get()
            if item is self._DONE:
                return
            yield item
