"""Complexity classification of resilience for regular languages (Figure 1)."""

from .classifier import Classification, classify, classify_regex, figure_1_table

__all__ = ["Classification", "classify", "classify_regex", "figure_1_table"]
