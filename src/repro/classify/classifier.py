"""The complexity classifier reproducing Figure 1 of the paper.

Given a regular language ``L``, the classifier applies the paper's results to
the infix-free sublanguage ``IF(L)`` (the query is unchanged) and reports one of
three complexities for the resilience problem:

* ``PTIME`` -- with the witnessing algorithm (Theorem 3.13, Proposition 7.6 or
  Proposition 7.9);
* ``NP-hard`` -- with the witnessing hardness result (Theorem 5.3, Theorem 6.1,
  Lemma 5.6, or one of the explicit gadgets of Propositions 4.1, 4.13, 7.4,
  7.11), optionally with a machine-verified gadget certificate;
* ``unclassified`` -- the language is not covered by the paper's results (the
  remaining open cases of Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import GadgetError, GadgetNotAvailableError
from ..languages import chain, dangling, four_legged, local, neutral, star_free
from ..languages.core import Language
from ..languages.examples import NP_HARD, PTIME, UNCLASSIFIED

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..resilience.engine import LanguageCache

_EXPLICITLY_HARD = {
    "ab|bc|ca": "Proposition 7.4",
    "abcd|be|ef": "Proposition 7.11",
    "abcd|bef": "Proposition 7.11",
}


@dataclass
class Classification:
    """The outcome of classifying one language.

    Attributes:
        language: the classified language.
        complexity: ``"PTIME"``, ``"NP-hard"`` or ``"unclassified"``.
        reason: the paper result justifying the classification.
        region: the Figure 1 region label.
        algorithm: for PTIME languages, the dispatcher method that solves resilience.
        evidence: free-form supporting data (witnesses, decompositions, ...).
        certificate: optional machine-verified hardness certificate.
    """

    language: Language
    complexity: str
    reason: str
    region: str
    algorithm: str | None = None
    evidence: dict = field(default_factory=dict)
    certificate: object | None = None

    def __repr__(self) -> str:
        return f"Classification({self.language!s} -> {self.complexity}: {self.reason})"


def classify(
    language: Language,
    *,
    build_certificate: bool = False,
    cache: "LanguageCache | None" = None,
) -> Classification:
    """Classify the resilience complexity of a language according to the paper.

    Args:
        language: the language to classify.
        build_certificate: when True and the language is NP-hard, also build and
            machine-verify a hardness gadget (slower; used by the benchmarks).
        cache: optional shared :class:`~repro.resilience.engine.LanguageCache`
            — the language resolves through its canonical layer first, so
            equivalent languages (across calls, and across processes with a
            store-backed cache) share one memoized infix-free sublanguage
            instead of re-deriving it per classification.
    """
    if cache is not None:
        language = cache.language(language)
    # Epsilon short-circuit first, mirroring the engine's dispatch order: a
    # trivial language must not pay for the (expensive) infix-free computation.
    if language.contains(""):
        return Classification(
            language, PTIME, "epsilon is in the language, resilience is trivially infinite",
            "trivial", algorithm="trivial-epsilon",
        )

    # ``infix_free()`` is memoized on the language instance and shared with the
    # dispatcher, so re-label through a copy — the seed assigned
    # ``infix_free.name`` in place, which would corrupt the shared cache.
    infix_free = language.infix_free().relabelled(language.name)

    # ---------------- tractable classes ----------------
    if local.is_local(infix_free):
        return Classification(
            language, PTIME, "IF(L) is local (Theorem 3.13)", "local (Thm 3.13)",
            algorithm="local-flow",
        )
    if chain.is_bipartite_chain_language(infix_free):
        return Classification(
            language, PTIME, "IF(L) is a bipartite chain language (Proposition 7.6)",
            "bipartite chain (Prp 7.6)", algorithm="bcl-flow",
        )
    decomposition = dangling.one_dangling_decomposition(infix_free)
    if decomposition is not None:
        return Classification(
            language, PTIME, "IF(L) is a one-dangling language (Proposition 7.9)",
            "one-dangling (Prp 7.9)", algorithm="one-dangling-flow",
            evidence={"dangling_word": decomposition.dangling_word},
        )

    # ---------------- hardness classes ----------------
    def with_certificate(result: Classification) -> Classification:
        if build_certificate:
            from ..hardness import construct

            try:
                result.certificate = construct.hardness_gadget(language, cache=cache)
            except (GadgetError, GadgetNotAvailableError) as error:
                result.evidence["certificate_error"] = str(error)
        return result

    if infix_free.is_finite():
        words = "|".join(sorted(infix_free.words()))
        if words in _EXPLICITLY_HARD:
            return with_certificate(
                Classification(
                    language, NP_HARD, f"explicit gadget ({_EXPLICITLY_HARD[words]})",
                    "explicit gadget (Prp 7.4 / Prp 7.11)",
                )
            )

    witness = four_legged.find_witness(infix_free)
    if witness is not None and infix_free.is_infix_free():
        evidence = {"four_legged_witness": witness}
        if not star_free.is_star_free(infix_free):
            return with_certificate(
                Classification(
                    language, NP_HARD,
                    "IF(L) is not star-free, hence four-legged (Lemma 5.6, Theorem 5.3)",
                    "non-star-free (Lem 5.6)", evidence=evidence,
                )
            )
        return with_certificate(
            Classification(
                language, NP_HARD, "IF(L) is four-legged (Theorem 5.3)",
                "four-legged (Thm 5.3)", evidence=evidence,
            )
        )

    square_letters = sorted(
        letter for letter in infix_free.alphabet if infix_free.contains(letter + letter)
    )
    if square_letters and not infix_free.is_finite():
        # IF(L) contains a word xx: the Proposition 4.1 reduction applies using
        # only the letter x (this is the second case of the Proposition 5.7
        # dichotomy, and it holds regardless of neutral letters).
        return with_certificate(
            Classification(
                language, NP_HARD,
                "IF(L) contains a square word xx (Proposition 4.1 reduction, cf. Proposition 5.7)",
                "finite, repeated letter (Thm 6.1)",
                evidence={"square_letters": square_letters},
            )
        )

    if infix_free.is_finite() and infix_free.has_repeated_letter_word():
        repeated = sorted(
            word for word in infix_free.words() if len(set(word)) < len(word)
        )
        return with_certificate(
            Classification(
                language, NP_HARD,
                "IF(L) is finite and has a word with a repeated letter (Theorem 6.1)",
                "finite, repeated letter (Thm 6.1)",
                evidence={"repeated_letter_words": repeated},
            )
        )

    # ---------------- neutral-letter dichotomy (Proposition 5.7) ----------------
    neutrals = neutral.neutral_letters(language)
    if neutrals:
        # IF(L) is not local (handled above), so by Lemma 5.8 it is four-legged
        # or contains xx -- both cases are hard and were caught above; reaching
        # this point would contradict Lemma 5.8, so flag it loudly.
        return Classification(
            language, UNCLASSIFIED,
            "language has a neutral letter but escaped the Lemma 5.8 case analysis "
            "(this should not happen)",
            "unclassified", evidence={"neutral_letters": sorted(neutrals)},
        )

    return Classification(
        language, UNCLASSIFIED, "not covered by the paper's results (open case)", "unclassified"
    )


def classify_regex(
    expression: str, *, cache: "LanguageCache | None" = None, **kwargs
) -> Classification:
    """Classify a language given as a regular expression.

    With a ``cache``, the expression resolves through the session's
    string-expression layer, so repeated classifications of one expression
    parse it once and share every memoized analysis.
    """
    if cache is not None:
        return classify(cache.language(expression), cache=cache, **kwargs)
    return classify(Language.from_regex(expression), **kwargs)


def figure_1_table(
    *, build_certificates: bool = False, cache: "LanguageCache | None" = None
) -> list[dict]:
    """Regenerate the Figure 1 classification for the paper's example languages.

    Returns one row per example language with the paper's classification and the
    classifier's output, for the Figure 1 benchmark and the classification example.
    A shared ``cache`` carries analyses across rows (and, store-backed, across
    regeneration runs).
    """
    from ..languages.examples import FIGURE_1_LANGUAGES

    rows: list[dict] = []
    for example in FIGURE_1_LANGUAGES:
        result = classify(example.language(), build_certificate=build_certificates, cache=cache)
        rows.append(
            {
                "language": example.regex,
                "paper_region": example.region,
                "paper_complexity": example.complexity,
                "computed_complexity": result.complexity,
                "computed_region": result.region,
                "reason": result.reason,
                "agrees": result.complexity == example.complexity,
            }
        )
    return rows
