"""Resilience of one-dangling languages (Proposition 7.9).

A one-dangling language is ``L ∪ {xy}`` with ``L`` local and at least one of
``x, y`` absent from the alphabet of ``L``.  The reduction (for the case
``y`` fresh; the other case is handled by mirroring, Proposition 6.3):

1. introduce a fresh letter ``z`` and replace the unique ``x``-transition of an
   RO-epsilon-NFA for ``L`` by ``x`` then ``z``, giving a local language ``L'``;
2. rewrite the bag database: for every node ``v`` add a node ``(v, in)``,
   redirect all ``x``-facts entering ``v`` to ``(v, in)``, add a ``z``-fact
   ``(v, in) -> v`` of multiplicity ``sum(in-x) - sum(out-y)`` (possibly
   non-positive: *extended bag semantics*), and delete all ``y``-facts;
3. then ``RES_bag(L ∪ {xy}, D) = RES_ext_bag(L', D') + kappa`` where ``kappa`` is
   the total multiplicity of ``y``-facts; extended-bag resilience reduces to
   ordinary bag resilience by unconditionally removing the non-positive facts.

The witnessing contingency set of ``D`` is reconstructed from the cut of ``D'``
following the proof of Claim 7.10(ii).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import NotApplicableError
from ..flow.compiled import solve_min_cut
from ..flow.substrate import compile_product_graph
from ..graphdb.database import BagGraphDatabase, Fact, GraphDatabase, as_bag
from ..languages.automata import EpsilonNFA
from ..languages.core import Language
from ..languages.dangling import OneDanglingDecomposition, one_dangling_decomposition
from ..languages.operations import fresh_letter
from ..languages import read_once
from .result import INFINITE, ResilienceResult, finite_value


@dataclass
class _RewriteResult:
    """The rewritten database and bookkeeping needed to map cuts back."""

    rewritten: BagGraphDatabase
    kappa: int
    z_letter: str
    incoming_x: dict[object, list[Fact]]
    outgoing_y: dict[object, list[Fact]]
    z_fact_of_node: dict[object, Fact]
    x_fact_mapping: dict[Fact, Fact]


def _split_x_transition(automaton: EpsilonNFA, x_letter: str, z_letter: str) -> EpsilonNFA:
    """Replace the unique ``x`` transition of an RO-epsilon-NFA by ``x`` followed by ``z``."""
    x_transitions = [t for t in automaton.letter_transitions if t[1] == x_letter]
    if not x_transitions:
        # The local part does not use x at all; nothing to split.
        return automaton.with_alphabet(automaton.alphabet | {z_letter})
    if len(x_transitions) != 1:  # pragma: no cover - impossible for an RO automaton
        raise NotApplicableError("expected a read-once automaton")
    (source, _, target) = x_transitions[0]
    middle = ("split", x_letter)
    states = set(automaton.states) | {middle}
    transitions = set(automaton.transitions) - {x_transitions[0]}
    transitions.add((source, x_letter, middle))
    transitions.add((middle, z_letter, target))
    return EpsilonNFA.build(
        states, automaton.initial, automaton.final, transitions, automaton.alphabet | {z_letter}
    )


def _rewrite_database(
    bag: BagGraphDatabase, x_letter: str, y_letter: str, z_letter: str
) -> _RewriteResult:
    """Apply the database rewriting of Proposition 7.9 (see module docstring)."""
    multiplicities = bag.multiplicity_map()
    incoming_x: dict[object, list[Fact]] = {}
    outgoing_y: dict[object, list[Fact]] = {}
    for fact in multiplicities:
        if fact.label == x_letter:
            incoming_x.setdefault(fact.target, []).append(fact)
        if fact.label == y_letter:
            outgoing_y.setdefault(fact.source, []).append(fact)

    new_multiplicities: dict[Fact, int] = {}
    x_fact_mapping: dict[Fact, Fact] = {}
    z_fact_of_node: dict[object, Fact] = {}
    kappa = 0
    touched_nodes = set(incoming_x) | set(outgoing_y)
    for fact, multiplicity in multiplicities.items():
        if fact.label == y_letter:
            kappa += multiplicity
            continue
        if fact.label == x_letter:
            redirected = Fact(fact.source, x_letter, (fact.target, "in"))
            new_multiplicities[redirected] = multiplicity
            x_fact_mapping[fact] = redirected
            continue
        new_multiplicities[fact] = multiplicity
    for node in touched_nodes:
        in_sum = sum(multiplicities[fact] for fact in incoming_x.get(node, ()))
        out_sum = sum(multiplicities[fact] for fact in outgoing_y.get(node, ()))
        z_fact = Fact((node, "in"), z_letter, node)
        new_multiplicities[z_fact] = in_sum - out_sum
        z_fact_of_node[node] = z_fact
    rewritten = BagGraphDatabase(new_multiplicities, allow_non_positive=True)
    return _RewriteResult(
        rewritten, kappa, z_letter, incoming_x, outgoing_y, z_fact_of_node, x_fact_mapping
    )


def resilience_one_dangling(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    decomposition: OneDanglingDecomposition | None = None,
    semantics: str | None = None,
    solver: str | None = None,
) -> ResilienceResult:
    """Compute the resilience of a one-dangling language (Proposition 7.9).

    ``solver`` overrides the ``REPRO_FLOW_SOLVER`` min-cut solver selection.

    Raises:
        NotApplicableError: if the language is not one-dangling.
    """
    bag = as_bag(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"
    name = language.name or ""
    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "one-dangling-flow", name)
    if decomposition is None:
        decomposition = one_dangling_decomposition(language)
    if decomposition is None:
        raise NotApplicableError(f"{name} is not a one-dangling language")

    x_letter, y_letter = decomposition.x, decomposition.y
    if y_letter not in decomposition.local_alphabet:
        return _solve_forward(
            language, decomposition, bag, semantics, mirrored=False, solver=solver
        )
    # Otherwise x is the fresh letter: mirror the language and the database
    # (Proposition 6.3), solve, and mirror the contingency set back.
    mirrored_language = language.mirror()
    mirrored_decomposition = one_dangling_decomposition(mirrored_language)
    if mirrored_decomposition is None:  # pragma: no cover - mirror of one-dangling is one-dangling
        raise NotApplicableError("mirror of a one-dangling language should be one-dangling")
    result = _solve_forward(
        mirrored_language,
        mirrored_decomposition,
        bag.reverse(),
        semantics,
        mirrored=True,
        solver=solver,
    )
    contingency = None
    if result.contingency_set is not None:
        contingency = frozenset(
            Fact(fact.target, fact.label, fact.source) for fact in result.contingency_set
        )
    return ResilienceResult(
        result.value, contingency, semantics, result.method, name, details=result.details
    )


def _solve_forward(
    language: Language,
    decomposition: OneDanglingDecomposition,
    bag: BagGraphDatabase,
    semantics: str,
    *,
    mirrored: bool,
    solver: str | None = None,
) -> ResilienceResult:
    """Solve the case where the second letter ``y`` of the dangling word is fresh."""
    name = language.name or ""
    x_letter, y_letter = decomposition.x, decomposition.y
    local_part = decomposition.local_part

    z_letter = fresh_letter(language.alphabet, avoid=bag.alphabet)
    local_ro = read_once.read_once_automaton(local_part)
    primed_automaton = _split_x_transition(local_ro, x_letter, z_letter)
    primed_language = Language(primed_automaton, name=f"{local_part.name or 'L'}[x->xz]")

    rewrite = _rewrite_database(bag, x_letter, y_letter, z_letter)

    # Extended bag semantics: facts with non-positive multiplicity can always be
    # put in the contingency set, so they are removed up front at their cost.
    rewritten_multiplicities = rewrite.rewritten.multiplicity_map()
    non_positive = {
        fact: mult for fact, mult in rewritten_multiplicities.items() if mult <= 0
    }
    positive_part = BagGraphDatabase(
        {fact: mult for fact, mult in rewritten_multiplicities.items() if mult > 0}
    )
    base_cost = sum(non_positive.values())

    # The rewritten positive part is a per-query database, but the compiled
    # path still skips the whole object-network layer (its index carries its
    # own product substrate).
    graph = compile_product_graph(primed_automaton, positive_part.index())
    cut = solve_min_cut(graph, solver=solver)
    if cut.value == INFINITE:  # pragma: no cover - epsilon not in L'
        return ResilienceResult(INFINITE, None, semantics, "one-dangling-flow", name)

    primed_contingency = set(non_positive) | {
        key for key in cut.cut_keys if isinstance(key, Fact)
    }
    value = cut.value + base_cost + rewrite.kappa

    contingency = _map_back_contingency(bag, rewrite, primed_contingency, x_letter, y_letter)
    details = {
        "kappa": rewrite.kappa,
        "base_cost": base_cost,
        "network_nodes": graph.num_nodes,
        "network_edges": graph.num_edges,
        "mirrored": mirrored,
        "primed_language": primed_language.name,
    }
    return ResilienceResult(
        finite_value(value), frozenset(contingency), semantics, "one-dangling-flow", name, details=details
    )


def _map_back_contingency(
    bag: BagGraphDatabase,
    rewrite: _RewriteResult,
    primed_contingency: set[Fact],
    x_letter: str,
    y_letter: str,
) -> set[Fact]:
    """Reconstruct a contingency set of the original database (proof of Claim 7.10(ii))."""
    contingency: set[Fact] = set()
    touched_nodes = set(rewrite.incoming_x) | set(rewrite.outgoing_y)
    for node in touched_nodes:
        z_fact = rewrite.z_fact_of_node.get(node)
        if z_fact is not None and z_fact in primed_contingency:
            # Case (a): remove every x-fact entering the node.
            contingency.update(rewrite.incoming_x.get(node, ()))
        else:
            # Case (b): remove every y-fact leaving the node, plus the x-facts
            # whose redirected copies are in the primed contingency set.
            contingency.update(rewrite.outgoing_y.get(node, ()))
            for original in rewrite.incoming_x.get(node, ()):
                if rewrite.x_fact_mapping[original] in primed_contingency:
                    contingency.add(original)
    for fact in primed_contingency:
        if fact.label not in (x_letter, rewrite.z_letter) and fact in bag.facts:
            contingency.add(fact)
    return contingency
