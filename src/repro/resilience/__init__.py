"""Resilience algorithms: the exact baseline, the three flow reductions of the
paper (local, bipartite chain, one-dangling), and the dispatching engine."""

from .bcl_flow import resilience_bcl
from .engine import (
    CacheStats,
    LanguageCache,
    choose_method,
    resilience,
    resilience_many,
    verify_contingency_set,
)
from .exact import resilience_brute_force, resilience_exact, resilience_exact_reference
from .local_flow import build_product_network, resilience_local
from .one_dangling import resilience_one_dangling
from .result import INFINITE, ResilienceResult
from .store import (
    AnalysisStore,
    ResultStore,
    StoreBackend,
    StoredAnalysis,
    StoreStats,
    code_version_salt,
    result_code_salt,
)

__all__ = [
    "INFINITE",
    "AnalysisStore",
    "CacheStats",
    "LanguageCache",
    "ResilienceResult",
    "ResultStore",
    "StoreBackend",
    "StoreStats",
    "StoredAnalysis",
    "build_product_network",
    "choose_method",
    "code_version_salt",
    "result_code_salt",
    "resilience",
    "resilience_bcl",
    "resilience_brute_force",
    "resilience_exact",
    "resilience_exact_reference",
    "resilience_local",
    "resilience_many",
    "resilience_one_dangling",
    "verify_contingency_set",
]
