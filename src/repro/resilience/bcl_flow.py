"""Resilience of bipartite chain languages by reduction to MinCut (Proposition 7.6).

The construction orients every word of the BCL according to a bipartition of the
endpoint graph: *forward* words go from the source partition to the target
partition, *reversed* words the other way.  Every fact becomes a single
finite-capacity edge ``start_fact -> end_fact``; consecutive letters of a word
connect these per-fact edges with infinite-capacity edges (in word order for
forward words and in reverse order for reversed words), and the source/target
attach to the endpoint letters of the appropriate partitions.  Finite-cost cuts
then correspond exactly to contingency sets.

Preprocessing (from the proof): the empty word makes resilience infinite, and
every fact whose label is a one-letter word of the language must be removed
unconditionally.
"""

from __future__ import annotations

from ..exceptions import NotApplicableError
from ..flow.compiled import solve_min_cut
from ..flow.network import FlowNetwork
from ..flow.substrate import compile_bcl_graph
from ..graphdb.database import BagGraphDatabase, Fact, GraphDatabase, as_bag
from ..languages import chain
from ..languages.core import Language
from .result import INFINITE, ResilienceResult, finite_value

_SOURCE = "__source__"
_TARGET = "__target__"


def build_bcl_network(structure: chain.BclStructure, database: BagGraphDatabase) -> FlowNetwork:
    """Build the Proposition 7.6 flow network for a BCL structure and a bag database."""
    network = FlowNetwork(source=_SOURCE, target=_TARGET)
    index = database.index()

    def start_vertex(fact: Fact) -> tuple:
        return ("start", fact)

    def end_vertex(fact: Fact) -> tuple:
        return ("end", fact)

    # One finite-capacity edge per fact.
    assert index.multiplicities is not None
    for fact_id, fact in enumerate(index.facts):
        network.add_edge(
            start_vertex(fact), end_vertex(fact), float(index.multiplicities[fact_id]), key=fact
        )

    # The per-label and per-(node, label) adjacency comes straight from the
    # database's cached index (shared with every other query on this database).
    def facts_with_label(label: str) -> list[Fact]:
        return index.facts_of_ids(index.facts_by_label.get(label, ()))

    def outgoing_with_label(node: object, label: str) -> list[Fact]:
        return index.facts_of_ids(index.outgoing_by_label.get((node, label), ()))

    # Infinite edges between consecutive letters of each word.
    for word in structure.forward_words:
        for position in range(len(word) - 1):
            first, second = word[position], word[position + 1]
            for fact in facts_with_label(first):
                for next_fact in outgoing_with_label(fact.target, second):
                    network.add_edge(end_vertex(fact), start_vertex(next_fact), INFINITE)
    for word in structure.reversed_words:
        for position in range(len(word) - 1):
            first, second = word[position], word[position + 1]
            for fact in facts_with_label(first):
                for next_fact in outgoing_with_label(fact.target, second):
                    network.add_edge(end_vertex(next_fact), start_vertex(fact), INFINITE)

    # Source / target attachments on endpoint letters.
    for letter in structure.source_letters:
        for fact in facts_with_label(letter):
            network.add_edge(_SOURCE, start_vertex(fact), INFINITE)
    for letter in structure.target_letters:
        for fact in facts_with_label(letter):
            network.add_edge(end_vertex(fact), _TARGET, INFINITE)
    return network


def resilience_bcl(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    semantics: str | None = None,
    solver: str | None = None,
) -> ResilienceResult:
    """Compute the resilience of a bipartite chain language (Proposition 7.6).

    ``solver`` overrides the ``REPRO_FLOW_SOLVER`` min-cut solver selection.

    Raises:
        NotApplicableError: if the language is not a bipartite chain language.
    """
    bag = as_bag(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"
    name = language.name or ""

    if not chain.is_bipartite_chain_language(language):
        raise NotApplicableError(f"{name} is not a bipartite chain language")
    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "bcl-flow", name)

    structure = chain.bcl_structure(language)

    # Preprocessing: facts labelled by a one-letter word must always be
    # removed.  Instead of materializing a copy of the database without them,
    # the compiler below skips their arcs over the shared per-database
    # substrate — the resulting network is identical.
    index = bag.index()
    forced_ids: set[int] = set()
    for letter in structure.single_letter_words:
        forced_ids.update(index.facts_by_label.get(letter, ()))
    forced = frozenset(index.facts_of_ids(forced_ids))
    base_cost = sum(index.multiplicities[fact_id] for fact_id in forced_ids)

    graph = compile_bcl_graph(structure, index, frozenset(forced_ids))
    cut = solve_min_cut(graph, solver=solver)
    if cut.value == INFINITE:  # pragma: no cover - cannot happen once epsilon/one-letter words are gone
        return ResilienceResult(INFINITE, None, semantics, "bcl-flow", name)
    contingency = forced | frozenset(key for key in cut.cut_keys if isinstance(key, Fact))
    return ResilienceResult(
        finite_value(cut.value + base_cost),
        contingency,
        semantics,
        "bcl-flow",
        name,
        details={
            "network_nodes": graph.num_nodes,
            "network_edges": graph.num_edges,
            "forced_facts": len(forced),
        },
    )
