"""Exact resilience by branch-and-bound over witness walks.

This is the ground-truth baseline used throughout the test suite and the
benchmarks: it is correct for *every* language (the NP upper bound of Section 2)
but takes exponential time in the worst case.  The algorithm repeatedly finds a
shortest witnessing walk in the remaining database and branches on which of its
facts to remove, pruning with the best solution found so far.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graphdb.database import BagGraphDatabase, Fact, GraphDatabase, as_bag, as_set
from ..languages.core import Language
from ..rpq.evaluation import find_l_walk
from .result import INFINITE, ResilienceResult


@dataclass
class _SearchState:
    best_value: float
    best_set: frozenset[Fact] | None
    nodes_explored: int = 0


def resilience_exact(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    semantics: str | None = None,
    max_nodes: int | None = None,
) -> ResilienceResult:
    """Compute the exact resilience of ``Q_L`` on a database.

    Args:
        language: the query language ``L``.
        database: a set or bag database; set databases are treated as bag
            databases with unit multiplicities, so the returned value is the
            set-semantics resilience for them.
        semantics: force ``"set"`` or ``"bag"`` reporting; inferred from the
            database type when omitted.
        max_nodes: optional cap on the number of branch-and-bound nodes; the
            search raises ``RuntimeError`` if exceeded (protection for callers
            that use the exact baseline on large instances by mistake).
    """
    bag = as_bag(database)
    set_database = as_set(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"

    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "exact", language.name or "")

    automaton = language.automaton
    multiplicities = bag.multiplicities()

    state = _SearchState(best_value=math.inf, best_set=None)

    def branch(
        current: GraphDatabase, removed: frozenset[Fact], cost: float, forbidden: frozenset[Fact]
    ) -> None:
        state.nodes_explored += 1
        if max_nodes is not None and state.nodes_explored > max_nodes:
            raise RuntimeError(f"exact resilience exceeded {max_nodes} search nodes")
        if cost >= state.best_value:
            return
        walk = find_l_walk(automaton, current)
        if walk is None:
            state.best_value = cost
            state.best_set = removed
            return
        # Branch on the distinct facts of the witness walk, cheapest first.  The
        # i-th branch additionally forbids removing the facts of the earlier
        # branches (a standard hitting-set decomposition of the solution space);
        # a witness made entirely of forbidden facts can never be hit, so the
        # branch is pruned.
        facts = sorted(set(walk), key=lambda fact: (multiplicities[fact], repr(fact)))
        if all(fact in forbidden for fact in facts):
            return
        newly_forbidden: set[Fact] = set()
        for fact in facts:
            if fact in forbidden:
                newly_forbidden.add(fact)
                continue
            branch(
                current.remove([fact]),
                removed | {fact},
                cost + multiplicities[fact],
                forbidden | newly_forbidden,
            )
            newly_forbidden.add(fact)

    branch(set_database, frozenset(), 0.0, frozenset())

    value = state.best_value
    if value == math.inf:  # pragma: no cover - only when epsilon in L, handled above
        return ResilienceResult(INFINITE, None, semantics, "exact", language.name or "")
    return ResilienceResult(
        float(int(value)) if float(value).is_integer() else value,
        state.best_set,
        semantics,
        "exact",
        language.name or "",
        details={"nodes_explored": state.nodes_explored},
    )


def resilience_brute_force(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    semantics: str | None = None,
) -> ResilienceResult:
    """Compute resilience by enumerating all subsets of facts (tiny instances only).

    This is deliberately the most naive possible algorithm; it exists as an
    independent cross-check of :func:`resilience_exact` in the test suite.
    """
    from itertools import combinations

    bag = as_bag(database)
    set_database = as_set(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"
    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "brute-force", language.name or "")
    automaton = language.automaton
    facts = sorted(set_database.facts, key=repr)
    multiplicities = bag.multiplicities()

    best_value: float = math.inf
    best_set: frozenset[Fact] | None = None
    for size in range(len(facts) + 1):
        for subset in combinations(facts, size):
            cost = sum(multiplicities[fact] for fact in subset)
            if cost >= best_value:
                continue
            if find_l_walk(automaton, set_database.remove(subset)) is None:
                best_value = cost
                best_set = frozenset(subset)
        # In set semantics the first size with a contingency set is optimal.
        if semantics == "set" and best_set is not None:
            break
    return ResilienceResult(
        float(int(best_value)) if best_value != math.inf else INFINITE,
        best_set,
        semantics,
        "brute-force",
        language.name or "",
    )
