"""Exact resilience by branch-and-bound over witness walks.

This is the ground-truth baseline used throughout the test suite and the
benchmarks: it is correct for *every* language (the NP upper bound of Section 2)
but takes exponential time in the worst case.  The algorithm repeatedly finds a
shortest witnessing walk in the remaining database and branches on which of its
facts to remove, pruning with the best solution found so far.

The production implementation (:func:`resilience_exact`) is a *copy-free
overlay search*: the query automaton is compiled once
(:class:`~repro.languages.automata.CompiledAutomaton`), the database is indexed
once (:class:`~repro.graphdb.index.DatabaseIndex`), and each branch-and-bound
node is represented by a mutable removed-fact mask over the shared index
instead of a freshly materialized sub-database.  The branching rule is
unchanged from the seed implementation, and walk selection is deterministic, so
the search explores exactly the same tree (same values, same ``nodes_explored``)
as the materializing reference implementation
:func:`resilience_exact_reference`, which is retained for benchmarking and
cross-validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

from ..exceptions import SearchBudgetExceeded
from ..graphdb.database import BagGraphDatabase, Fact, GraphDatabase, as_bag, as_set
from ..languages.automata import compile_automaton
from ..languages.core import Language
from ..rpq.evaluation import find_l_walk, find_l_walk_ids
from .result import INFINITE, ResilienceResult


@dataclass
class _SearchState:
    best_value: float
    best_set: frozenset[Fact] | None
    nodes_explored: int = 0


def resilience_exact(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    semantics: str | None = None,
    max_nodes: int | None = None,
    max_seconds: float | None = None,
) -> ResilienceResult:
    """Compute the exact resilience of ``Q_L`` on a database.

    Args:
        language: the query language ``L``.
        database: a set or bag database; set databases are treated as bag
            databases with unit multiplicities, so the returned value is the
            set-semantics resilience for them.
        semantics: force ``"set"`` or ``"bag"`` reporting; inferred from the
            database type when omitted.
        max_nodes: optional cap on the number of branch-and-bound nodes; the
            search raises :class:`~repro.exceptions.SearchBudgetExceeded` if
            exceeded (protection for callers that use the exact baseline on
            large instances by mistake).
        max_seconds: optional wall-clock budget for the search, enforced at
            every branch-and-bound node; raises
            :class:`~repro.exceptions.SearchBudgetExceeded` when exceeded.
            Unlike ``max_nodes``, a time budget is machine-dependent, so it
            makes results reproducible only in the success case.
    """
    bag = as_bag(database)
    set_database = as_set(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"

    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "exact", language.name or "")

    plan = compile_automaton(language.automaton)
    index = set_database.index()
    multiplicity_map = bag.multiplicity_map()
    multiplicity = [multiplicity_map[fact] for fact in index.facts]

    num_facts = len(index.facts)
    removed = bytearray(num_facts)
    forbidden = bytearray(num_facts)
    removal_stack: list[int] = []

    state = _SearchState(best_value=math.inf, best_set=None)
    # repro: allow[det-wallclock] -- max_seconds is an explicit wall-clock
    # budget in the public API; it aborts the search, never shapes a result
    deadline = None if max_seconds is None else perf_counter() + max_seconds

    def branch(cost: float) -> None:
        state.nodes_explored += 1
        if max_nodes is not None and state.nodes_explored > max_nodes:
            raise SearchBudgetExceeded(
                f"exact resilience exceeded {max_nodes} search nodes",
                nodes_explored=state.nodes_explored,
                max_nodes=max_nodes,
            )
        if deadline is not None and perf_counter() > deadline:  # repro: allow[det-wallclock] -- explicit max_seconds budget check
            raise SearchBudgetExceeded(
                f"exact resilience exceeded its {max_seconds:g}s time budget",
                nodes_explored=state.nodes_explored,
                max_seconds=max_seconds,
            )
        if cost >= state.best_value:
            return
        walk = find_l_walk_ids(plan, index, removed)
        if walk is None:
            state.best_value = cost
            state.best_set = frozenset(index.facts[fact_id] for fact_id in removal_stack)
            return
        # Branch on the distinct facts of the witness walk, cheapest first.  The
        # i-th branch additionally forbids removing the facts of the earlier
        # branches (a standard hitting-set decomposition of the solution space);
        # a witness made entirely of forbidden facts can never be hit, so the
        # branch is pruned.  Fact ids are assigned in repr order, so sorting by
        # (multiplicity, id) matches the reference's (multiplicity, repr) order.
        branch_ids = sorted(set(walk), key=lambda fact_id: (multiplicity[fact_id], fact_id))
        if all(forbidden[fact_id] for fact_id in branch_ids):
            return
        locally_forbidden: list[int] = []
        for fact_id in branch_ids:
            if forbidden[fact_id]:
                continue
            removed[fact_id] = 1
            removal_stack.append(fact_id)
            branch(cost + multiplicity[fact_id])
            removal_stack.pop()
            removed[fact_id] = 0
            forbidden[fact_id] = 1
            locally_forbidden.append(fact_id)
        for fact_id in locally_forbidden:
            forbidden[fact_id] = 0

    branch(0.0)

    value = state.best_value
    if value == math.inf:  # pragma: no cover - only when epsilon in L, handled above
        return ResilienceResult(INFINITE, None, semantics, "exact", language.name or "")
    return ResilienceResult(
        float(int(value)) if float(value).is_integer() else value,
        state.best_set,
        semantics,
        "exact",
        language.name or "",
        details={"nodes_explored": state.nodes_explored},
    )


def resilience_exact_reference(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    semantics: str | None = None,
    max_nodes: int | None = None,
) -> ResilienceResult:
    """The seed branch-and-bound implementation, kept as a reference baseline.

    This variant materializes a fresh :class:`GraphDatabase` at every
    branch-and-bound node (``current.remove([fact])``) and re-evaluates the
    query on it.  It explores exactly the same search tree as
    :func:`resilience_exact` — the ablation benchmark and the regression tests
    assert identical values *and* identical ``nodes_explored`` — but pays a
    full copy and re-index per node, which is what the overlay search removes.
    """
    bag = as_bag(database)
    set_database = as_set(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"

    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "exact-reference", language.name or "")

    automaton = language.automaton
    multiplicities = bag.multiplicities()

    state = _SearchState(best_value=math.inf, best_set=None)

    def branch(
        current: GraphDatabase, removed: frozenset[Fact], cost: float, forbidden: frozenset[Fact]
    ) -> None:
        state.nodes_explored += 1
        if max_nodes is not None and state.nodes_explored > max_nodes:
            raise SearchBudgetExceeded(
                f"exact resilience exceeded {max_nodes} search nodes",
                nodes_explored=state.nodes_explored,
                max_nodes=max_nodes,
            )
        if cost >= state.best_value:
            return
        walk = find_l_walk(automaton, current)
        if walk is None:
            state.best_value = cost
            state.best_set = removed
            return
        facts = sorted(set(walk), key=lambda fact: (multiplicities[fact], repr(fact)))
        if all(fact in forbidden for fact in facts):
            return
        newly_forbidden: set[Fact] = set()
        for fact in facts:
            if fact in forbidden:
                newly_forbidden.add(fact)
                continue
            branch(
                current.remove([fact]),
                removed | {fact},
                cost + multiplicities[fact],
                forbidden | newly_forbidden,
            )
            newly_forbidden.add(fact)

    branch(set_database, frozenset(), 0.0, frozenset())

    value = state.best_value
    if value == math.inf:  # pragma: no cover - only when epsilon in L, handled above
        return ResilienceResult(INFINITE, None, semantics, "exact-reference", language.name or "")
    return ResilienceResult(
        float(int(value)) if float(value).is_integer() else value,
        state.best_set,
        semantics,
        "exact-reference",
        language.name or "",
        details={"nodes_explored": state.nodes_explored},
    )


def resilience_brute_force(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    semantics: str | None = None,
) -> ResilienceResult:
    """Compute resilience by enumerating all subsets of facts (tiny instances only).

    This is deliberately the most naive possible algorithm; it exists as an
    independent cross-check of :func:`resilience_exact` in the test suite.
    """
    from itertools import combinations

    bag = as_bag(database)
    set_database = as_set(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"
    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "brute-force", language.name or "")
    plan = compile_automaton(language.automaton)
    index = set_database.index()
    facts = list(index.facts)
    multiplicity_map = bag.multiplicity_map()

    best_value: float = math.inf
    best_set: frozenset[Fact] | None = None
    removed = bytearray(len(facts))
    for size in range(len(facts) + 1):
        for subset in combinations(range(len(facts)), size):
            cost = sum(multiplicity_map[facts[fact_id]] for fact_id in subset)
            if cost >= best_value:
                continue
            for fact_id in subset:
                removed[fact_id] = 1
            if find_l_walk_ids(plan, index, removed) is None:
                best_value = cost
                best_set = frozenset(facts[fact_id] for fact_id in subset)
            for fact_id in subset:
                removed[fact_id] = 0
        # In set semantics the first size with a contingency set is optimal.
        if semantics == "set" and best_set is not None:
            break
    return ResilienceResult(
        float(int(best_value)) if best_value != math.inf else INFINITE,
        best_set,
        semantics,
        "brute-force",
        language.name or "",
    )
