"""Resilience of local languages by reduction to MinCut (Theorem 3.13).

Given an RO-epsilon-NFA ``A`` for a local language ``L`` and a bag database
``D``, the network ``N_{D,A}`` has one vertex per (database node, automaton
state) pair plus a fresh source and target:

* every fact ``v --a--> v'`` together with the unique ``a``-transition
  ``(s, a, s')`` of ``A`` gives an edge ``(v, s) -> (v', s')`` of capacity
  ``mult(fact)`` (this is the *only* finite-capacity edge of the fact, because
  ``A`` is read-once);
* every epsilon transition ``(s, eps, s')`` gives infinite-capacity edges
  ``(v, s) -> (v, s')`` for every node ``v``;
* the source has infinite-capacity edges to every ``(v, s)`` with ``s`` initial,
  and every ``(v, s)`` with ``s`` final has an infinite-capacity edge to the target.

Finite-cost cuts of ``N_{D,A}`` are exactly the contingency sets of ``D`` for
``Q_L``, with matching costs, so the resilience is the MinCut value.
"""

from __future__ import annotations

from ..exceptions import NotLocalError
from ..flow.compiled import solve_min_cut
from ..flow.mincut import min_cut
from ..flow.network import FlowNetwork
from ..flow.substrate import compile_product_graph
from ..graphdb.database import BagGraphDatabase, Fact, GraphDatabase, as_bag
from ..languages.automata import EpsilonNFA, compile_automaton
from ..languages.core import Language
from ..languages import local as local_module
from ..languages import read_once
from .result import INFINITE, ResilienceResult, finite_value

_SOURCE = "__source__"
_TARGET = "__target__"


def build_product_network(read_once_automaton: EpsilonNFA, database: BagGraphDatabase) -> FlowNetwork:
    """Build the flow network ``N_{D,A}`` of Theorem 3.13.

    The automaton must be read-once; each fact of the database is the key of its
    unique finite-capacity edge so that cuts map back to contingency sets.
    """
    if not read_once_automaton.is_read_once():
        raise NotLocalError("the automaton passed to the Theorem 3.13 reduction must be read-once")
    network = FlowNetwork(source=_SOURCE, target=_TARGET)
    automaton = read_once_automaton
    nodes = database.nodes

    # The compiled plan indexes the letter transitions of the *untrimmed*
    # automaton by label; read-once automata have exactly one per label.
    plan = compile_automaton(automaton)
    transition_of_letter: dict[str, tuple] = {
        label: pairs[0] for label, pairs in plan.transitions_by_label.items()
    }

    multiplicities = database.multiplicity_map()
    for fact, multiplicity in multiplicities.items():
        transition = transition_of_letter.get(fact.label)
        if transition is None:
            continue
        q_source, q_target = transition
        network.add_edge(
            (fact.source, q_source), (fact.target, q_target), float(multiplicity), key=fact
        )
    for q_source, label, q_target in automaton.epsilon_transitions:
        assert label is None
        for node in nodes:
            network.add_edge((node, q_source), (node, q_target), INFINITE)
    for node in nodes:
        for state in automaton.initial:
            network.add_edge(_SOURCE, (node, state), INFINITE)
        for state in automaton.final:
            network.add_edge((node, state), _TARGET, INFINITE)
    return network


def resilience_local(
    language: Language,
    database: GraphDatabase | BagGraphDatabase,
    *,
    check_local: bool = True,
    semantics: str | None = None,
    solver: str | None = None,
) -> ResilienceResult:
    """Compute the resilience of a local language via the MinCut reduction of Theorem 3.13.

    Args:
        language: a local language (or any epsilon-NFA-definable language when
            ``check_local`` is False and the caller guarantees locality, matching
            the combined-complexity statement of the theorem).
        database: the input database (set databases get unit multiplicities).
        check_local: verify locality first and raise :class:`NotLocalError` if it fails.
        semantics: force the reported semantics; inferred from the database type otherwise.
        solver: min-cut solver override (``"fast"`` / ``"reference"``); defaults
            to the ``REPRO_FLOW_SOLVER`` environment selection.  Both solvers
            produce identical results on the identical compiled network.

    Returns:
        the resilience value, a witnessing contingency set, and the compiled
        product-graph size in ``details``.
    """
    bag = as_bag(database)
    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"

    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "local-flow", language.name or "")

    if check_local:
        automaton = read_once.read_once_automaton(language)
    else:
        automaton = read_once.read_once_automaton_unchecked(language)

    # Compile the product graph over the database's cached flow substrate —
    # facts with labels that the language never uses are simply ignored by the
    # construction.  (The object-network builder above is retained as the
    # differential reference; see the flow README.)
    graph = compile_product_graph(automaton, bag.index())
    cut = solve_min_cut(graph, solver=solver)
    if cut.value == INFINITE:
        return ResilienceResult(INFINITE, None, semantics, "local-flow", language.name or "")
    contingency = frozenset(key for key in cut.cut_keys if isinstance(key, Fact))
    return ResilienceResult(
        finite_value(cut.value),
        contingency,
        semantics,
        "local-flow",
        language.name or "",
        details={
            "network_nodes": graph.num_nodes,
            "network_edges": graph.num_edges,
            "automaton_size": automaton.size,
        },
    )


def resilience_local_via_profile(
    language: Language, database: GraphDatabase | BagGraphDatabase
) -> ResilienceResult:
    """Variant of :func:`resilience_local` that rebuilds the RO automaton from the local profile.

    This mirrors the combined-complexity pipeline of the paper (Lemma 3.17): the
    input automaton is converted to the local overapproximation and then to an
    RO-epsilon-NFA; it is exposed separately for the ablation benchmark.
    """
    overapproximation = local_module.local_overapproximation(language)
    ro_automaton = read_once.local_dfa_to_read_once(overapproximation)
    bag = as_bag(database)
    semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"
    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "local-flow-profile", language.name or "")
    network = build_product_network(ro_automaton, bag)
    cut = min_cut(network)
    if cut.value == INFINITE:
        return ResilienceResult(INFINITE, None, semantics, "local-flow-profile", language.name or "")
    contingency = frozenset(key for key in cut.cut_keys if isinstance(key, Fact))
    return ResilienceResult(
        finite_value(cut.value), contingency, semantics, "local-flow-profile", language.name or ""
    )
