"""Persistent on-disk stores for per-language analyses and per-query results.

The expensive per-query work of the resilience engine — computing the
infix-free sublanguage ``IF(L)`` and classifying it to pick an algorithm — is a
pure function of the query *language*.  :class:`AnalysisStore` persists those
results across processes, keyed by the language's canonical-DFA fingerprint
(:meth:`~repro.languages.core.Language.fingerprint`), so repeated benchmark or
serving runs skip the analysis entirely, even for queries written in a
different but equivalent syntax.  :class:`ResultStore` persists whole
:class:`~repro.resilience.result.ResilienceResult` values one layer further
down, keyed by the full computation identity ``(language fingerprint, database
content fingerprint, semantics, forced method, unsafe)`` — the cross-process
twin of the in-memory result layer of
:class:`~repro.resilience.engine.LanguageCache`, so warm nodes behind a routed
exchange (or a fresh process after a :mod:`repro.service.warm` pass) stop
recomputing what a sibling already answered.  Both are subclasses of
:class:`StoreBackend`, which owns the envelope, the atomic writes, validation
and size/age-bounded compaction.

Trust model: entries are only ever *hints*.  Every entry is wrapped in a
versioned envelope carrying a code-version salt (a digest of the source files
the cached analyses depend on); an entry whose envelope is unreadable, whose
format version is unknown, whose salt does not match the running code, or
whose payload fails its own sanity checks is ignored and recomputed — a
corrupted or stale store can cost time, never correctness.  Ignored entries
are also *evicted* (unlinked) on detection: a poisoned or stale file would
otherwise be re-read, re-validated and re-ignored on every miss forever.
Entries are written atomically (temp file + ``os.replace``), so a crashed
writer cannot leave a torn entry behind, and eviction races between sibling
processes are benign (unlink of an already-unlinked file is a no-op).

The payload uses pickle: infix-free automata have arbitrary hashable states
(nested tuples, frozensets) that no schema-free text format represents
faithfully, and byte-identical round-trips are exactly what makes a store hit
equal to a fresh computation.  The store is a local cache directory, not an
interchange format — do not point it at untrusted data.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from ..languages.core import Language
from .result import ResilienceResult

#: Envelope format version; bump when the entry layout changes.
STORE_FORMAT_VERSION = 1


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Return a digest of the source files the cached analyses depend on.

    A stored classification is only valid for the code that computed it: if
    the classifier, the infix-free construction or any part of the language
    substrate changes, every old entry must be ignored.  The whole
    :mod:`repro.languages` package is hashed (the classification predicates
    reach deep into it — ``words.is_strict_infix`` shapes ``IF(L)``, for
    example — and a hand-picked module list is exactly the kind of dependency
    audit that rots), plus the classifier and the dispatching engine.
    Over-invalidating on an unrelated language-module edit costs one warm-up
    run; under-invalidating would silently serve wrong methods.
    """
    from .. import languages
    from ..classify import classifier
    from . import engine

    paths = set(Path(languages.__file__).parent.glob("*.py"))
    paths.add(Path(classifier.__file__))
    paths.add(Path(engine.__file__))
    return _digest_files(paths)


@lru_cache(maxsize=1)
def result_code_salt() -> str:
    """Return a digest of the source files stored *results* depend on.

    A memoized :class:`ResilienceResult` bakes in strictly more code than an
    analysis entry: the resilience algorithms themselves (every module of
    :mod:`repro.resilience`) and the database substrate that defines content
    fingerprints and fact semantics (:mod:`repro.graphdb`), on top of
    everything :func:`code_version_salt` already covers.  Any edit to those
    files invalidates every stored result — one cold run, never a wrong
    answer.
    """
    from .. import graphdb, languages
    from ..classify import classifier

    paths = set(Path(languages.__file__).parent.glob("*.py"))
    paths |= set(Path(graphdb.__file__).parent.glob("*.py"))
    paths |= set(Path(__file__).parent.glob("*.py"))
    paths.add(Path(classifier.__file__))
    return _digest_files(paths)


def _digest_files(paths: set[Path]) -> str:
    digest = hashlib.sha256()
    for path in sorted(paths):
        digest.update(path.name.encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class StoredAnalysis:
    """One store entry: the classification of a language and its warm analyses.

    Attributes:
        method: the dispatcher's choice for the language (``"local-flow"``,
            ``"exact"``, ...).
        infix_free: the memoized infix-free sublanguage, ready to install on a
            :class:`~repro.languages.core.Language` instance; ``None`` for
            epsilon languages, whose execution never needs it.
        plan_meta: compiled-plan metadata of the infix-free automaton (state
            and transition counts, emptiness flags) — cheap cross-checks and
            observability, not inputs to any computation.
    """

    method: str
    infix_free: Language | None
    plan_meta: dict


@dataclass(frozen=True)
class StoreStats:
    """Counters of one store instance (not persisted).

    ``evictions`` counts files this instance unlinked — invalid entries
    dropped on detection plus compaction victims.
    """

    hits: int
    misses: int
    writes: int
    ignored: int
    evictions: int = 0


def _plan_meta(infix_free: Language | None) -> dict:
    if infix_free is None:
        return {"states": 0, "transitions": 0}
    automaton = infix_free.automaton
    return {"states": len(automaton.states), "transitions": len(automaton.transitions)}


class StoreBackend:
    """Shared machinery of the on-disk stores: one directory of entry files.

    Subclasses fix the entry ``suffix``, the default code-version salt and
    the payload schema; the backend owns the envelope (format version + salt),
    atomic writes, read-time validation with evict-on-detection, and
    :meth:`compact`.  Safe to share between concurrent readers and writers of
    the same code version: writes are atomic renames, any reader that loses a
    race simply recomputes, and racing unlinks are no-ops.
    """

    #: Filename suffix of this backend's entries (overridden per subclass).
    suffix = ".entry"

    def __init__(self, directory: str | os.PathLike, *, salt: str | None = None) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._salt = salt if salt is not None else self._default_salt()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._ignored = 0
        self._evictions = 0

    def _default_salt(self) -> str:
        raise NotImplementedError

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def salt(self) -> str:
        return self._salt

    def _path(self, name: str) -> Path:
        return self._directory / f"{name}{self.suffix}"

    def _load(self, name: str, validate: "Callable[[dict], None]") -> dict | None:
        """Read and validate one envelope; evict anything that fails.

        A missing file is a plain miss.  An unreadable, stale-version,
        wrong-salt or internally inconsistent entry counts as an ``ignored``
        miss *and is unlinked*: the store never trusts an entry it cannot
        fully validate, and keeping the file around would re-pay the read and
        the failed validation on every subsequent miss of the same key.
        """
        path = self._path(name)
        try:
            raw = path.read_bytes()
        except OSError:
            self._misses += 1
            return None
        try:
            envelope = pickle.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not a dict")
            if envelope["format"] != STORE_FORMAT_VERSION:
                raise ValueError("unknown format version")
            if envelope["salt"] != self._salt:
                raise ValueError("stale code-version salt")
            validate(envelope)
        except Exception:
            self._ignored += 1
            self._misses += 1
            self._unlink(path)
            return None
        self._hits += 1
        return envelope

    def _store(self, name: str, payload: dict) -> None:
        """Persist one entry atomically (last writer wins)."""
        envelope = {"format": STORE_FORMAT_VERSION, "salt": self._salt, **payload}
        raw = pickle.dumps(envelope)
        descriptor, temp_name = tempfile.mkstemp(dir=self._directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(raw)
            os.replace(temp_name, self._path(name))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._writes += 1

    def _unlink(self, path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            return  # a sibling process evicted it first — same outcome
        self._evictions += 1

    def compact(
        self, *, max_entries: int | None = None, max_age_seconds: float | None = None
    ) -> int:
        """Bound the directory by entry count and/or age; return evicted count.

        Age is measured from each file's mtime (refreshed on every rewrite),
        and the count bound drops oldest-first — the on-disk analogue of the
        in-memory LRU bounds.  Tolerates concurrent writers and compactors:
        entries that vanish mid-scan are simply skipped.
        """
        entries: list[tuple[float, Path]] = []
        for path in self._directory.glob(f"*{self.suffix}"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # raced a sibling's eviction
        entries.sort(key=lambda pair: pair[0])
        before = self._evictions
        if max_age_seconds is not None:
            # mtimes are wall-clock by nature; a clock jump can only make
            # compaction keep entries longer or drop them earlier — a cache
            # sizing effect, never a correctness one.
            horizon = time.time() - max_age_seconds  # repro: allow[det-wallclock] -- mtime age bound; cache sizing only
            while entries and entries[0][0] < horizon:
                self._unlink(entries.pop(0)[1])
        if max_entries is not None:
            while len(entries) > max_entries:
                self._unlink(entries.pop(0)[1])
        return self._evictions - before

    def stats(self) -> StoreStats:
        """Return this instance's hit/miss/write/ignored/evicted counters."""
        return StoreStats(self._hits, self._misses, self._writes, self._ignored, self._evictions)

    def __len__(self) -> int:
        """Return the number of entries currently on disk."""
        return sum(1 for _ in self._directory.glob(f"*{self.suffix}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"{type(self).__name__}({str(self._directory)!r}, {len(self)} entries, "
            f"hits={stats.hits}, misses={stats.misses})"
        )


class AnalysisStore(StoreBackend):
    """A directory of per-fingerprint analysis entries shared across processes.

    One ``.analysis`` file per language fingerprint.  Use :meth:`stats` to
    observe hit rates, e.g. to assert that a warm benchmark run actually
    exercised the store.
    """

    suffix = ".analysis"

    def _default_salt(self) -> str:
        return code_version_salt()

    def get(self, fingerprint: str) -> StoredAnalysis | None:
        """Return the stored analysis for a fingerprint, or ``None``.

        Unreadable, stale-version, wrong-salt and internally inconsistent
        entries count as ``ignored`` misses and are evicted on detection.
        """

        def validate(envelope: dict) -> None:
            if envelope["fingerprint"] != fingerprint:
                raise ValueError("entry does not match its key")
            if not isinstance(envelope["method"], str):
                raise ValueError("method is not a string")
            infix_free = envelope["infix_free"]
            if infix_free is not None and not isinstance(infix_free, Language):
                raise ValueError("infix_free is not a Language")
            if envelope["plan_meta"] != _plan_meta(infix_free):
                raise ValueError("plan metadata does not match the payload")

        envelope = self._load(fingerprint, validate)
        if envelope is None:
            return None
        return StoredAnalysis(
            method=envelope["method"],
            infix_free=envelope["infix_free"],
            plan_meta=envelope["plan_meta"],
        )

    def put(self, fingerprint: str, *, method: str, infix_free: Language | None) -> None:
        """Persist one analysis entry atomically (last writer wins)."""
        self._store(
            fingerprint,
            {
                "fingerprint": fingerprint,
                "method": method,
                "infix_free": infix_free,
                "plan_meta": _plan_meta(infix_free),
            },
        )


class ResultStore(StoreBackend):
    """A directory of memoized resilience results shared across processes.

    One ``.result`` file per computation identity — the same five-component
    key the in-memory result layer uses (see
    :meth:`~repro.resilience.engine.LanguageCache.lookup_result` for why
    budgeted queries never participate).  Filenames are a digest of the key
    (database fingerprints compose keys longer than filesystems like), and
    the full logical key is stored inside the envelope and checked on read,
    so a digest collision degrades to a miss, never a wrong answer.
    """

    suffix = ".result"

    def _default_salt(self) -> str:
        return result_code_salt()

    @staticmethod
    def _name(key: tuple) -> str:
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:40]

    def get(self, key: tuple) -> ResilienceResult | None:
        """Return the stored result for a computation key, or ``None``."""

        def validate(envelope: dict) -> None:
            if envelope["key"] != key:
                raise ValueError("entry does not match its key")
            if not isinstance(envelope["result"], ResilienceResult):
                raise ValueError("payload is not a ResilienceResult")

        envelope = self._load(self._name(key), validate)
        if envelope is None:
            return None
        return envelope["result"]

    def put(self, key: tuple, result: ResilienceResult) -> None:
        """Persist one result entry atomically (last writer wins)."""
        self._store(self._name(key), {"key": key, "result": result})
