"""Persistent on-disk store for per-language analysis results.

The expensive per-query work of the resilience engine — computing the
infix-free sublanguage ``IF(L)`` and classifying it to pick an algorithm — is a
pure function of the query *language*.  :class:`AnalysisStore` persists those
results across processes, keyed by the language's canonical-DFA fingerprint
(:meth:`~repro.languages.core.Language.fingerprint`), so repeated benchmark or
serving runs skip the analysis entirely, even for queries written in a
different but equivalent syntax.

Trust model: entries are only ever *hints*.  Every entry is wrapped in a
versioned envelope carrying a code-version salt (a digest of the source files
the cached analyses depend on); an entry whose envelope is unreadable, whose
format version is unknown, whose salt does not match the running code, or
whose payload fails its own sanity checks is silently ignored and recomputed —
a corrupted or stale store can cost time, never correctness.  Entries are
written atomically (temp file + ``os.replace``), so a crashed writer cannot
leave a torn entry behind.

The payload uses pickle: infix-free automata have arbitrary hashable states
(nested tuples, frozensets) that no schema-free text format represents
faithfully, and byte-identical round-trips are exactly what makes a store hit
equal to a fresh computation.  The store is a local cache directory, not an
interchange format — do not point it at untrusted data.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from ..languages.core import Language

#: Envelope format version; bump when the entry layout changes.
STORE_FORMAT_VERSION = 1


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Return a digest of the source files the cached analyses depend on.

    A stored classification is only valid for the code that computed it: if
    the classifier, the infix-free construction or any part of the language
    substrate changes, every old entry must be ignored.  The whole
    :mod:`repro.languages` package is hashed (the classification predicates
    reach deep into it — ``words.is_strict_infix`` shapes ``IF(L)``, for
    example — and a hand-picked module list is exactly the kind of dependency
    audit that rots), plus the classifier and the dispatching engine.
    Over-invalidating on an unrelated language-module edit costs one warm-up
    run; under-invalidating would silently serve wrong methods.
    """
    from .. import languages
    from ..classify import classifier
    from . import engine

    paths = set(Path(languages.__file__).parent.glob("*.py"))
    paths.add(Path(classifier.__file__))
    paths.add(Path(engine.__file__))
    digest = hashlib.sha256()
    for path in sorted(paths):
        digest.update(path.name.encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class StoredAnalysis:
    """One store entry: the classification of a language and its warm analyses.

    Attributes:
        method: the dispatcher's choice for the language (``"local-flow"``,
            ``"exact"``, ...).
        infix_free: the memoized infix-free sublanguage, ready to install on a
            :class:`~repro.languages.core.Language` instance; ``None`` for
            epsilon languages, whose execution never needs it.
        plan_meta: compiled-plan metadata of the infix-free automaton (state
            and transition counts, emptiness flags) — cheap cross-checks and
            observability, not inputs to any computation.
    """

    method: str
    infix_free: Language | None
    plan_meta: dict


@dataclass(frozen=True)
class StoreStats:
    """Counters of one :class:`AnalysisStore` instance (not persisted)."""

    hits: int
    misses: int
    writes: int
    ignored: int


def _plan_meta(infix_free: Language | None) -> dict:
    if infix_free is None:
        return {"states": 0, "transitions": 0}
    automaton = infix_free.automaton
    return {"states": len(automaton.states), "transitions": len(automaton.transitions)}


class AnalysisStore:
    """A directory of per-fingerprint analysis entries shared across processes.

    One file per language fingerprint; safe to share between concurrent
    readers and writers of the same code version (writes are atomic renames,
    and any reader that loses a race simply recomputes).  Use
    :meth:`stats` to observe hit rates, e.g. to assert that a warm benchmark
    run actually exercised the store.
    """

    def __init__(self, directory: str | os.PathLike, *, salt: str | None = None) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._salt = salt if salt is not None else code_version_salt()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._ignored = 0

    @property
    def directory(self) -> Path:
        return self._directory

    def _path(self, fingerprint: str) -> Path:
        return self._directory / f"{fingerprint}.analysis"

    def get(self, fingerprint: str) -> StoredAnalysis | None:
        """Return the stored analysis for a fingerprint, or ``None``.

        Unreadable, stale-version, wrong-salt and internally inconsistent
        entries all count as ``ignored`` misses — the store never trusts an
        entry it cannot fully validate.
        """
        path = self._path(fingerprint)
        try:
            raw = path.read_bytes()
        except OSError:
            self._misses += 1
            return None
        try:
            envelope = pickle.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not a dict")
            if envelope["format"] != STORE_FORMAT_VERSION:
                raise ValueError("unknown format version")
            if envelope["salt"] != self._salt:
                raise ValueError("stale code-version salt")
            if envelope["fingerprint"] != fingerprint:
                raise ValueError("entry does not match its key")
            method = envelope["method"]
            infix_free = envelope["infix_free"]
            plan_meta = envelope["plan_meta"]
            if not isinstance(method, str):
                raise ValueError("method is not a string")
            if infix_free is not None and not isinstance(infix_free, Language):
                raise ValueError("infix_free is not a Language")
            if plan_meta != _plan_meta(infix_free):
                raise ValueError("plan metadata does not match the payload")
        except Exception:
            self._ignored += 1
            self._misses += 1
            return None
        self._hits += 1
        return StoredAnalysis(method=method, infix_free=infix_free, plan_meta=plan_meta)

    def put(self, fingerprint: str, *, method: str, infix_free: Language | None) -> None:
        """Persist one analysis entry atomically (last writer wins)."""
        envelope = {
            "format": STORE_FORMAT_VERSION,
            "salt": self._salt,
            "fingerprint": fingerprint,
            "method": method,
            "infix_free": infix_free,
            "plan_meta": _plan_meta(infix_free),
        }
        payload = pickle.dumps(envelope)
        descriptor, temp_name = tempfile.mkstemp(dir=self._directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._writes += 1

    def stats(self) -> StoreStats:
        """Return this instance's hit/miss/write/ignored counters."""
        return StoreStats(self._hits, self._misses, self._writes, self._ignored)

    def __len__(self) -> int:
        """Return the number of entries currently on disk."""
        return sum(1 for _ in self._directory.glob("*.analysis"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"AnalysisStore({str(self._directory)!r}, {len(self)} entries, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
