"""Result objects for resilience computations."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..graphdb.database import Fact

INFINITE = math.inf


@dataclass(frozen=True)
class ResilienceResult:
    """The outcome of a resilience computation.

    Attributes:
        value: the resilience: the minimum number of facts (set semantics) or the
            minimum total multiplicity (bag semantics) to remove so that the
            query no longer holds; ``math.inf`` when the query cannot be falsified
            (i.e. the empty word belongs to the language).
        contingency_set: a witnessing minimum contingency set (``None`` when the
            value is infinite, or when the algorithm only computed the value).
        semantics: ``"set"`` or ``"bag"``.
        method: the name of the algorithm that produced the result.
        query: a human-readable description of the query language.
        details: free-form extra information (network sizes, preprocessing costs...).
    """

    value: float
    contingency_set: frozenset[Fact] | None
    semantics: str
    method: str
    query: str = ""
    details: dict = field(default_factory=dict)

    @property
    def is_infinite(self) -> bool:
        return self.value == INFINITE

    def with_query(self, query: str) -> "ResilienceResult":
        """Return a copy reported under a different query name.

        Results are frozen, so re-labelling (the engine and the serving layer
        report under the original query name, not the infix-free sublanguage's)
        always goes through a copy instead of mutating shared state.
        """
        return replace(self, query=query)

    def as_int(self) -> int:
        """Return the value as an integer (raises for infinite resilience)."""
        if self.is_infinite:
            raise ValueError("resilience is infinite")
        return int(self.value)

    def __repr__(self) -> str:
        cut = "∞" if self.is_infinite else str(self.as_int())
        return f"ResilienceResult(value={cut}, semantics={self.semantics!r}, method={self.method!r})"


def finite_value(value: float) -> float | int:
    """Normalize a finite value to an integer when it is exactly integral.

    No ``isclose``-style rounding: :func:`repro.flow.mincut.min_cut` already
    runs integral networks in exact integer arithmetic, so an integral result
    arrives here as an exact float and a genuinely fractional one must be
    passed through unchanged.
    """
    if value == INFINITE:
        return INFINITE
    if isinstance(value, int):
        return value
    if float(value).is_integer():
        return int(value)
    return value
