"""The resilience engine: dispatches each query to the best applicable algorithm.

The dispatcher mirrors the paper's tractability landscape: it first replaces the
language by its infix-free sublanguage (the query is unchanged, Section 2), then
tries the local-language MinCut reduction (Theorem 3.13), the bipartite-chain
reduction (Proposition 7.6) and the one-dangling reduction (Proposition 7.9), and
finally falls back to the exact branch-and-bound baseline (which is correct for
every language but may take exponential time).
"""

from __future__ import annotations

from ..graphdb.database import BagGraphDatabase, GraphDatabase
from ..languages import chain, dangling, local
from ..languages.core import Language
from ..rpq.query import RPQ
from .bcl_flow import resilience_bcl
from .exact import resilience_exact
from .local_flow import resilience_local
from .one_dangling import resilience_one_dangling
from .result import INFINITE, ResilienceResult


def choose_method(language: Language) -> str:
    """Return the name of the algorithm the dispatcher would use for a language.

    One of ``"trivial-epsilon"``, ``"local-flow"``, ``"bcl-flow"``,
    ``"one-dangling-flow"`` or ``"exact"``.
    """
    if language.contains(""):
        return "trivial-epsilon"
    infix_free = language.infix_free()
    if local.is_local(infix_free):
        return "local-flow"
    if chain.is_bipartite_chain_language(infix_free):
        return "bcl-flow"
    if dangling.is_one_dangling(infix_free):
        return "one-dangling-flow"
    return "exact"


def resilience(
    query: Language | RPQ | str,
    database: GraphDatabase | BagGraphDatabase,
    *,
    method: str | None = None,
    semantics: str | None = None,
    exact_max_nodes: int | None = None,
) -> ResilienceResult:
    """Compute the resilience of an RPQ on a database.

    Args:
        query: the query language, as a :class:`Language`, an :class:`RPQ`, or a
            regular-expression string.
        database: a set or bag graph database.
        method: force a specific algorithm (``"local-flow"``, ``"bcl-flow"``,
            ``"one-dangling-flow"``, ``"exact"``); by default the dispatcher picks
            the fastest sound algorithm based on the language class.
        semantics: force reporting as ``"set"`` or ``"bag"``; inferred from the
            database type otherwise.
        exact_max_nodes: search-node cap forwarded to the exact baseline.

    Returns:
        a :class:`ResilienceResult` with the resilience value, a witnessing
        contingency set (when available) and the algorithm used.
    """
    if isinstance(query, str):
        language = Language.from_regex(query)
    elif isinstance(query, RPQ):
        language = query.language
    else:
        language = query

    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"

    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "trivial-epsilon", language.name or "")

    chosen = method if method is not None else choose_method(language)
    infix_free = language.infix_free()
    # Preserve the original name for reporting.
    infix_free.name = language.name

    if chosen == "local-flow":
        return resilience_local(infix_free, database, semantics=semantics)
    if chosen == "bcl-flow":
        return resilience_bcl(infix_free, database, semantics=semantics)
    if chosen == "one-dangling-flow":
        return resilience_one_dangling(infix_free, database, semantics=semantics)
    if chosen in ("exact", "trivial-epsilon"):
        return resilience_exact(infix_free, database, semantics=semantics, max_nodes=exact_max_nodes)
    raise ValueError(f"unknown resilience method: {chosen}")


def verify_contingency_set(
    query: Language | RPQ | str,
    database: GraphDatabase | BagGraphDatabase,
    result: ResilienceResult,
) -> bool:
    """Check that a resilience result's contingency set really falsifies the query
    and that its cost matches the reported value (used in tests and examples)."""
    if isinstance(query, str):
        rpq = RPQ.from_regex(query)
    elif isinstance(query, Language):
        rpq = RPQ(query)
    else:
        rpq = query
    if result.contingency_set is None:
        return result.is_infinite
    if not rpq.is_contingency_set(database, result.contingency_set):
        return False
    if isinstance(database, BagGraphDatabase):
        cost = database.total_cost(result.contingency_set)
    else:
        cost = len(result.contingency_set)
    return cost == result.value
