"""The resilience engine: dispatches each query to the best applicable algorithm.

The dispatcher mirrors the paper's tractability landscape: it first replaces the
language by its infix-free sublanguage (the query is unchanged, Section 2), then
tries the local-language MinCut reduction (Theorem 3.13), the bipartite-chain
reduction (Proposition 7.6) and the one-dangling reduction (Proposition 7.9), and
finally falls back to the exact branch-and-bound baseline (which is correct for
every language but may take exponential time).

Forced-method semantics: passing ``method=`` to :func:`resilience` normally
*validates* that the forced algorithm is applicable to the (infix-free) query
language and raises :class:`~repro.exceptions.ReproError` when it is not —
running, say, the local-flow reduction on a non-local language silently returns
a wrong value, so this is an error, not a fallback.  Callers that knowingly
want the unchecked behaviour (e.g. the combined-complexity experiments, which
run a reduction on the local *overapproximation*) pass ``unsafe=True``.

Batched serving: :func:`resilience_many` evaluates a fleet of queries against
one database.  The database's fact index is built once and shared by every
query, and compiled query plans are cached by automaton equality, so repeated
or equivalent queries compile once (see
:func:`~repro.languages.automata.compile_automaton`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import replace

from ..exceptions import ReproError
from ..graphdb.database import BagGraphDatabase, GraphDatabase, as_set
from ..languages import chain, dangling, local
from ..languages.core import Language
from ..rpq.query import RPQ
from .bcl_flow import resilience_bcl
from .exact import resilience_exact
from .local_flow import resilience_local
from .one_dangling import resilience_one_dangling
from .result import INFINITE, ResilienceResult


def choose_method(language: Language, *, infix_free: Language | None = None) -> str:
    """Return the name of the algorithm the dispatcher would use for a language.

    One of ``"trivial-epsilon"``, ``"local-flow"``, ``"bcl-flow"``,
    ``"one-dangling-flow"`` or ``"exact"``.  Callers that already computed the
    infix-free sublanguage (an expensive operation) can pass it through
    ``infix_free`` to avoid recomputing it.
    """
    if language.contains(""):
        return "trivial-epsilon"
    if infix_free is None:
        infix_free = language.infix_free()
    if local.is_local(infix_free):
        return "local-flow"
    if chain.is_bipartite_chain_language(infix_free):
        return "bcl-flow"
    if dangling.is_one_dangling(infix_free):
        return "one-dangling-flow"
    return "exact"


_FORCED_METHOD_PRECONDITIONS = {
    "local-flow": local.is_local,
    "bcl-flow": chain.is_bipartite_chain_language,
    "one-dangling-flow": dangling.is_one_dangling,
    "exact": lambda language: True,
    "trivial-epsilon": lambda language: language.contains(""),
}


def _check_forced_method(method: str, infix_free: Language, unsafe: bool) -> None:
    precondition = _FORCED_METHOD_PRECONDITIONS.get(method)
    if precondition is None:
        raise ValueError(f"unknown resilience method: {method}")
    if unsafe or precondition(infix_free):
        return
    raise ReproError(
        f"method {method!r} is not applicable to this language; its result would be "
        f"meaningless (pass unsafe=True to bypass the check)"
    )


def _as_language(query: Language | RPQ | str) -> Language:
    if isinstance(query, str):
        return Language.from_regex(query)
    if isinstance(query, RPQ):
        return query.language
    return query


def resilience(
    query: Language | RPQ | str,
    database: GraphDatabase | BagGraphDatabase,
    *,
    method: str | None = None,
    unsafe: bool = False,
    semantics: str | None = None,
    exact_max_nodes: int | None = None,
) -> ResilienceResult:
    """Compute the resilience of an RPQ on a database.

    Args:
        query: the query language, as a :class:`Language`, an :class:`RPQ`, or a
            regular-expression string.
        database: a set or bag graph database.
        method: force a specific algorithm (``"local-flow"``, ``"bcl-flow"``,
            ``"one-dangling-flow"``, ``"exact"``); by default the dispatcher picks
            the fastest sound algorithm based on the language class.  A forced
            method whose applicability precondition fails raises
            :class:`ReproError`.
        unsafe: skip the applicability check of a forced ``method`` (the result
            is then only meaningful if the caller guarantees the precondition).
        semantics: force reporting as ``"set"`` or ``"bag"``; inferred from the
            database type otherwise.
        exact_max_nodes: search-node cap forwarded to the exact baseline.

    Returns:
        a :class:`ResilienceResult` with the resilience value, a witnessing
        contingency set (when available) and the algorithm used.
    """
    language = _as_language(query)

    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"

    if method is not None and method not in _FORCED_METHOD_PRECONDITIONS:
        raise ValueError(f"unknown resilience method: {method}")

    display_name = language.name or ""
    # The empty word makes resilience infinite whatever algorithm is forced, so
    # the epsilon short-circuit only needs the method *name* validated above.
    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "trivial-epsilon", display_name)

    # The infix-free sublanguage is expensive to compute; do it exactly once and
    # thread it through both method selection and the chosen algorithm.
    infix_free = language.infix_free()
    if method is None:
        chosen = choose_method(language, infix_free=infix_free)
    else:
        chosen = method
        _check_forced_method(chosen, infix_free, unsafe)

    if chosen == "local-flow":
        result = resilience_local(infix_free, database, semantics=semantics, check_local=not unsafe)
    elif chosen == "bcl-flow":
        result = resilience_bcl(infix_free, database, semantics=semantics)
    elif chosen == "one-dangling-flow":
        result = resilience_one_dangling(infix_free, database, semantics=semantics)
    elif chosen in ("exact", "trivial-epsilon"):
        result = resilience_exact(infix_free, database, semantics=semantics, max_nodes=exact_max_nodes)
    else:  # pragma: no cover - _check_forced_method rejects unknown methods
        raise ValueError(f"unknown resilience method: {chosen}")
    # Report under the original query name without mutating the infix-free
    # language (the seed used to overwrite ``infix_free.name`` in place).
    return replace(result, query=display_name)


def resilience_many(
    queries: Iterable[Language | RPQ | str],
    database: GraphDatabase | BagGraphDatabase,
    *,
    method: str | None = None,
    unsafe: bool = False,
    semantics: str | None = None,
    exact_max_nodes: int | None = None,
) -> list[ResilienceResult]:
    """Compute the resilience of many queries against one shared database.

    The database index is compiled once up front and reused by every query
    (indexes are cached on the database instance, so the flow reductions and
    the exact overlay search all hit the same shared adjacency structures), and
    compiled automaton plans are shared between equal queries.  Results are
    returned in query order.
    """
    query_list: Sequence[Language | RPQ | str] = list(queries)
    # Warm the shared structures before fanning out over the query fleet.
    as_set(database).index()
    if isinstance(database, BagGraphDatabase):
        database.index()
    return [
        resilience(
            query,
            database,
            method=method,
            unsafe=unsafe,
            semantics=semantics,
            exact_max_nodes=exact_max_nodes,
        )
        for query in query_list
    ]


def verify_contingency_set(
    query: Language | RPQ | str,
    database: GraphDatabase | BagGraphDatabase,
    result: ResilienceResult,
) -> bool:
    """Check that a resilience result's contingency set really falsifies the query
    and that its cost matches the reported value (used in tests and examples)."""
    if isinstance(query, str):
        rpq = RPQ.from_regex(query)
    elif isinstance(query, Language):
        rpq = RPQ(query)
    else:
        rpq = query
    if result.contingency_set is None:
        return result.is_infinite
    if not rpq.is_contingency_set(database, result.contingency_set):
        return False
    if isinstance(database, BagGraphDatabase):
        cost = database.total_cost(result.contingency_set)
    else:
        cost = len(result.contingency_set)
    return cost == result.value
