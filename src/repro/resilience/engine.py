"""The resilience engine: dispatches each query to the best applicable algorithm.

The dispatcher mirrors the paper's tractability landscape: it first replaces the
language by its infix-free sublanguage (the query is unchanged, Section 2), then
tries the local-language MinCut reduction (Theorem 3.13), the bipartite-chain
reduction (Proposition 7.6) and the one-dangling reduction (Proposition 7.9), and
finally falls back to the exact branch-and-bound baseline (which is correct for
every language but may take exponential time).

Forced-method semantics: passing ``method=`` to :func:`resilience` normally
*validates* that the forced algorithm is applicable to the (infix-free) query
language and raises :class:`~repro.exceptions.ReproError` when it is not —
running, say, the local-flow reduction on a non-local language silently returns
a wrong value, so this is an error, not a fallback.  Callers that knowingly
want the unchecked behaviour (e.g. the combined-complexity experiments, which
run a reduction on the local *overapproximation*) pass ``unsafe=True``.

Batched serving: :func:`resilience_many` evaluates a fleet of queries against
one database.  The database's fact index is built once and shared by every
query, duplicate queries resolve to one shared language (whose infix-free
sublanguage is memoized on the instance), and compiled query plans are cached
by automaton equality, so repeated or equivalent queries compile once (see
:func:`~repro.languages.automata.compile_automaton`).  For parallel serving
with per-query budgets and structured outcomes, see :mod:`repro.service`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import asdict, dataclass, fields, replace

from ..exceptions import ReproError
from ..graphdb.database import BagGraphDatabase, GraphDatabase, as_bag, as_set
from ..languages import chain, dangling, local
from ..languages.core import Language
from ..rpq.query import RPQ
from .bcl_flow import resilience_bcl
from .exact import resilience_exact
from .local_flow import resilience_local
from .one_dangling import resilience_one_dangling
from .result import INFINITE, ResilienceResult
from .store import AnalysisStore, ResultStore


def choose_method(language: Language, *, infix_free: Language | None = None) -> str:
    """Return the name of the algorithm the dispatcher would use for a language.

    One of ``"trivial-epsilon"``, ``"local-flow"``, ``"bcl-flow"``,
    ``"one-dangling-flow"`` or ``"exact"``.  Callers that already computed the
    infix-free sublanguage (an expensive operation) can pass it through
    ``infix_free`` to avoid recomputing it.
    """
    if language.contains(""):
        return "trivial-epsilon"
    if infix_free is None:
        infix_free = language.infix_free()
    if local.is_local(infix_free):
        return "local-flow"
    if chain.is_bipartite_chain_language(infix_free):
        return "bcl-flow"
    if dangling.is_one_dangling(infix_free):
        return "one-dangling-flow"
    return "exact"


_FORCED_METHOD_PRECONDITIONS = {
    "local-flow": local.is_local,
    "bcl-flow": chain.is_bipartite_chain_language,
    "one-dangling-flow": dangling.is_one_dangling,
    "exact": lambda language: True,
    "trivial-epsilon": lambda language: language.contains(""),
}


def _check_forced_method(method: str, infix_free: Language, unsafe: bool) -> None:
    precondition = _FORCED_METHOD_PRECONDITIONS.get(method)
    if precondition is None:
        raise ValueError(f"unknown resilience method: {method}")
    if unsafe or precondition(infix_free):
        return
    raise ReproError(
        f"method {method!r} is not applicable to this language; its result would be "
        f"meaningless (pass unsafe=True to bypass the check)"
    )


def _as_language(query: Language | RPQ | str) -> Language:
    if isinstance(query, str):
        return Language.from_regex(query)
    if isinstance(query, RPQ):
        return query.language
    return query


def warm_database(database: GraphDatabase | BagGraphDatabase) -> None:
    """Build the database's shared fact indexes exactly once.

    Warms the set view's index (the exact search path) and the bag view's
    (the flow reductions run on bags — for set databases the cached
    :meth:`~repro.graphdb.database.GraphDatabase.unit_bag` view, whose index
    carries the shared flow substrates).  Called before fanning out over a
    query fleet so every query hits the same cached adjacency structures
    (batched serving here, per-worker warm-up in :mod:`repro.service.serve`).
    """
    as_set(database).index()
    as_bag(database).index()


def reforce_planned_method(
    method: str | None, unsafe: bool, plan: "Callable[[], str]"
) -> tuple[str, bool]:
    """Resolve the ``(method, unsafe)`` pair to pass to :func:`resilience`.

    A caller-forced ``method`` keeps the caller's ``unsafe`` flag so the usual
    applicability validation still runs; otherwise the ``plan`` callable
    supplies the dispatcher's own choice, which is re-forced with
    ``unsafe=True`` — re-deriving its precondition per duplicate query would
    be pure waste.  ``plan`` is only consulted when no method is forced, so
    callers can hand in a (possibly uncached) classification lazily.  Shared
    by :func:`resilience_many` and the serving layer's executor.
    """
    if method is not None:
        return method, unsafe
    return plan(), True


@dataclass
class CacheStats:
    """Observability counters of one :class:`LanguageCache`.

    Attributes:
        canonical_hits: queries resolved to an already-analysed equivalent
            language via the canonical-fingerprint layer.
        canonical_misses: queries that became the representative of a new
            equivalence class.
        classifications: how many times :func:`choose_method` actually ran —
            the acceptance observable: equivalent queries share one run.
        result_hits: queries answered from the result-level cache — an
            identical ``(query class, database, semantics, method)`` tuple was
            already computed (this session, or by any process sharing a
            :class:`~repro.resilience.store.ResultStore`), so the memoized
            :class:`~repro.resilience.result.ResilienceResult` is returned
            without touching the engine (or, in the serving layer, the worker
            pool).
        result_misses: *cacheable* computations the result layer could not
            serve — counted at completion time (:meth:`LanguageCache.store_result`),
            so the hit rate ``hits / (hits + misses)`` reflects cacheable
            traffic only.
        result_uncacheable: completions the result layer can never serve or
            memoize — error and budget-exceeded outcomes.  Counted separately
            so error-heavy chaos traffic cannot skew the hit rate.
        evictions: entries dropped by the size/age bounds (all layers).
        entries: **gauge** — entries currently held across the cache's maps
            (expression, canonical class, method memo, result layers).
        bytes_estimate: **gauge** — rough in-memory footprint of the held
            languages and results (automaton- and contingency-set-sized
            estimates, not exact byte counts).
    """

    canonical_hits: int = 0
    canonical_misses: int = 0
    classifications: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_uncacheable: int = 0
    evictions: int = 0
    entries: int = 0
    bytes_estimate: int = 0

    #: Fields that are point-in-time gauges, not monotone counters — the
    #: Prometheus exposition must not render these with a ``_total`` suffix.
    GAUGE_FIELDS = ("entries", "bytes_estimate")

    def snapshot(self) -> "CacheStats":
        """A frozen-in-time copy (the live object keeps counting)."""
        return replace(self)

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict — the metrics-surface serialization."""
        return asdict(self)

    @classmethod
    def aggregate(cls, parts: "Iterable[CacheStats]") -> "CacheStats":
        """Sum several caches' counters into one roll-up.

        The aggregation hook of the serving layer's metrics surface: a front
        end multiplexing workloads over several session caches reports one
        combined :class:`CacheStats` without reaching into cache internals.
        """
        total = cls()
        for part in parts:
            for field in fields(cls):
                setattr(total, field.name, getattr(total, field.name) + getattr(part, field.name))
        return total


def _estimate_language_bytes(language: Language) -> int:
    """Rough footprint of a held language: automaton-sized, never exact."""
    automaton = language.automaton
    total = 256 + 64 * (len(automaton.states) + len(automaton.transitions))
    memoized = language._infix_free
    if memoized is not None and memoized is not language:
        inner = memoized.automaton
        total += 256 + 64 * (len(inner.states) + len(inner.transitions))
    return total


def _estimate_result_bytes(result: "ResilienceResult") -> int:
    """Rough footprint of a memoized result: contingency-set-sized."""
    contingency = result.contingency_set
    return 256 + 64 * (0 if contingency is None else len(contingency))


class _BoundedLru:
    """Insertion-ordered map with optional size/age bounds (LRU eviction).

    A plain dict is the backing store (Python dicts preserve insertion
    order); a hit re-inserts the entry at the tail, so the head is always the
    least-recently-used entry.  ``max_entries`` caps the entry count and
    ``max_age_seconds`` drops entries idle longer than the bound (the stamp
    refreshes on every touch).  Every bound-driven removal calls ``on_evict``
    — replacement and explicit deletion do not, so the callback counts real
    evictions only.  Like the dicts it replaces, the map is not locked:
    individual dict operations are atomic under the GIL and racing writers
    at worst duplicate work, never corrupt state.
    """

    __slots__ = ("_data", "_max_entries", "_max_age", "_clock", "_on_evict", "_sizer", "bytes_estimate")

    def __init__(
        self,
        *,
        max_entries: int | None,
        max_age_seconds: float | None,
        clock: Callable[[], float],
        on_evict: Callable[[object, object], None],
        sizer: Callable[[object], int],
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 (got {max_entries})")
        if max_age_seconds is not None and max_age_seconds <= 0:
            raise ValueError(f"max_age_seconds must be positive (got {max_age_seconds})")
        self._data: dict = {}
        self._max_entries = max_entries
        self._max_age = max_age_seconds
        self._clock = clock
        self._on_evict = on_evict
        self._sizer = sizer
        self.bytes_estimate = 0

    def get(self, key, default=None):
        entry = self._data.get(key)
        if entry is None:
            return default
        value, _, size = entry
        if self._max_age is not None:
            self._expire()
            if key not in self._data:
                return default
        # LRU touch: re-insert at the tail with a fresh stamp.  The size
        # recorded at insertion travels with the entry — values can grow
        # after insertion (a language memoizes its infix-free sublanguage in
        # place), so re-measuring on removal would corrupt the accounting.
        self._data.pop(key, None)
        self._data[key] = (value, self._clock(), size)
        return value

    def set(self, key, value) -> None:
        old = self._data.pop(key, None)
        if old is not None:
            self.bytes_estimate -= old[2]
        size = self._sizer(value)
        self._data[key] = (value, self._clock(), size)
        self.bytes_estimate += size
        self._expire()
        self._shrink()

    def setdefault(self, key, value):
        """Insert ``value`` unless the key is live; return the held value."""
        held = self.get(key)
        if held is not None:
            return held
        self.set(key, value)
        return value

    def _evict(self, key) -> None:
        value, _, size = self._data.pop(key)
        self.bytes_estimate -= size
        self._on_evict(key, value)

    def _expire(self) -> None:
        if self._max_age is None:
            return
        horizon = self._clock() - self._max_age
        # Recency order == insertion order here, so stale entries cluster at
        # the head; stop at the first live one.
        for key, (_, stamp, _size) in list(self._data.items()):
            if stamp > horizon:
                break
            if key in self._data:
                self._evict(key)

    def _shrink(self) -> None:
        if self._max_entries is None:
            return
        while len(self._data) > self._max_entries:
            try:
                oldest = next(iter(self._data))
            except StopIteration:  # pragma: no cover - concurrent shrink race
                return
            self._evict(oldest)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def values(self):
        return [entry[0] for entry in self._data.values()]


class _CanonicalClass:
    """One canonical equivalence class: its representative and method memo."""

    __slots__ = ("language", "method")

    def __init__(self, language: Language, method: str | None = None) -> None:
        self.language = language
        self.method = method


class LanguageCache:
    """Session-level cache resolving queries to shared language analyses.

    Equal queries dominate real workloads, and almost all of the per-query
    cost is language analysis, not database work: parsing the regex, computing
    the infix-free sublanguage ``IF(L)`` (which determinizes padded automata),
    and classifying ``IF(L)`` to pick an algorithm.  The cache makes each of
    those a once-per-distinct-*language* cost through a hierarchy of layers:

    * string queries are parsed once per distinct expression and map to one
      shared :class:`~repro.languages.core.Language` instance;
    * the canonical layer (on by default) fingerprints every resolved language
      by its canonical minimal DFA, so *equivalent but syntactically different*
      queries — ``(ab)*a`` and ``a(ba)*`` — share one representative's memoized
      analyses (the hit returns a :meth:`~repro.languages.core.Language.relabelled`
      copy, so each query keeps its own display name);
    * ``Language.infix_free()`` is memoized on the instance itself, so sharing
      the representative shares the infix-free sublanguage;
    * the dispatcher's method choice is memoized per fingerprint (per instance
      when the canonical layer is off);
    * an optional :class:`~repro.resilience.store.AnalysisStore` adds an
      on-disk layer below the canonical one: a fingerprint seen by *any*
      previous process resolves its method and infix-free sublanguage from
      disk instead of recomputing them;
    * compiled automaton plans are already shared process-wide by
      :func:`~repro.languages.automata.compile_automaton` (keyed by automaton
      equality), so even two distinct-but-equal languages share one plan.

    The contingency set reported for a query is a deterministic function of
    the equivalence class's *representative* (the first syntactic form seen),
    which may differ from the — equally valid, equally sized — set the same
    syntax would yield uncached; values, methods and statuses never differ.
    Disable the canonical layer (``canonical=False``) to key strictly by
    expression string.

    The cache holds strong references to the languages it has seen; unbounded
    (the default), it is scoped to a serving session (or one
    :func:`resilience_many` batch), not to the process.  Long-lived servers
    pass ``max_entries`` and/or ``max_age_seconds`` to bound every layer with
    LRU eviction — each layer (expression, canonical class, method memo,
    result) then holds at most ``max_entries`` entries and drops entries idle
    longer than ``max_age_seconds``; evictions are counted in
    :attr:`CacheStats.evictions` and the live footprint is surfaced through
    the :attr:`CacheStats.entries` / :attr:`CacheStats.bytes_estimate` gauges.
    An evicted entry is never a correctness event: the next equivalent query
    simply re-parses/re-classifies (or re-reads the store) and re-enters.
    ``clock`` injects the age-bound's time source for tests (defaults to a
    monotonic clock).  Re-exported as :class:`repro.service.LanguageCache`.
    """

    def __init__(
        self,
        *,
        canonical: bool = True,
        store: "AnalysisStore | None" = None,
        result_store: "ResultStore | None" = None,
        max_entries: int | None = None,
        max_age_seconds: float | None = None,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        if store is not None and not canonical:
            raise ValueError("an AnalysisStore requires the canonical layer (canonical=True)")
        if result_store is not None and not canonical:
            raise ValueError("a ResultStore requires the canonical layer (canonical=True)")
        self._canonical = canonical
        self._store = store
        self._result_store = result_store
        self.stats = CacheStats()
        # Only the age bound reads the clock, and never for ordering or
        # emitted values — a monotonic source keeps idle-time arithmetic
        # immune to wall-clock jumps.
        if clock is None:
            clock = time.monotonic  # repro: allow[det-wallclock] -- age-bound idle timer; injectable, never emitted
        self._clock = clock

        def bounded(sizer: "Callable[[object], int]") -> _BoundedLru:
            return _BoundedLru(
                max_entries=max_entries,
                max_age_seconds=max_age_seconds,
                clock=clock,
                on_evict=self._note_eviction,
                sizer=sizer,
            )

        self._by_expression = bounded(_estimate_language_bytes)
        # Keyed by id(); the held tuple keeps the language alive so ids stay
        # valid for exactly as long as the entry is (Language equality is
        # semantic, so an equality-keyed dict would pay an automaton-
        # equivalence check per lookup).  Eviction removes the whole entry, so
        # a recycled id can never alias a stale memo.
        self._methods = bounded(lambda pair: 128)
        self._classes = bounded(lambda cls: _estimate_language_bytes(cls.language))
        self._results = bounded(_estimate_result_bytes)

    @property
    def store(self) -> "AnalysisStore | None":
        return self._store

    @property
    def result_store(self) -> "ResultStore | None":
        return self._result_store

    def _note_eviction(self, key: object, value: object) -> None:
        self.stats.evictions += 1

    def _refresh_gauges(self) -> None:
        maps = (self._by_expression, self._classes, self._methods, self._results)
        self.stats.entries = sum(len(m) for m in maps)
        self.stats.bytes_estimate = sum(m.bytes_estimate for m in maps)

    def language(self, query: Language | RPQ | str) -> Language:
        """Return the (shared) :class:`Language` for a query.

        Strings are parsed once per distinct expression; languages and RPQs
        resolve through the canonical layer (their own instance on a miss, a
        relabelled copy of the representative on a hit).
        """
        if isinstance(query, str):
            cached = self._by_expression.get(query)
            if cached is None:
                cached = self._resolve_canonical(Language.from_regex(query))
                self._by_expression.set(query, cached)
                self._refresh_gauges()
            return cached
        resolved = self._resolve_canonical(_as_language(query))
        self._refresh_gauges()
        return resolved

    def _resolve_canonical(self, language: Language) -> Language:
        """Intern a language by its canonical-DFA fingerprint.

        The first language of an equivalence class becomes its representative
        (warmed from the on-disk store when one is configured); later
        equivalent languages return a relabelled copy of the representative,
        sharing its automaton and every memoized analysis while keeping their
        own display name.
        """
        if not self._canonical:
            return language
        fingerprint = language.fingerprint()
        cached = self._classes.get(fingerprint)
        if cached is None:
            cached = _CanonicalClass(language)
            self.stats.canonical_misses += 1
            if self._store is not None:
                stored = self._store.get(fingerprint)
                if stored is not None:
                    if language._infix_free is None and stored.infix_free is not None:
                        language._infix_free = stored.infix_free
                    cached.method = stored.method
            self._classes.set(fingerprint, cached)
            return language
        self.stats.canonical_hits += 1
        if cached.language is language:
            return language
        return cached.language.relabelled(language.name)

    def method(self, language: Language) -> str:
        """Return the dispatcher's method choice for a language, memoized.

        Mirrors :func:`choose_method` (epsilon short-circuit first, then
        classification of the memoized infix-free sublanguage).  With the
        canonical layer on, the classification runs once per *equivalence
        class* — and not at all when the on-disk store already holds it.
        """
        key = id(language)  # repro: allow[det-id] -- identity memo key per live instance; never ordered, never emitted
        cached = self._methods.get(key)
        if cached is None:
            cached = (language, self._classify(language))
            self._methods.set(key, cached)
            self._refresh_gauges()
        return cached[1]

    def _classify(self, language: Language) -> str:
        if not self._canonical:
            self.stats.classifications += 1
            return choose_method(language)
        fingerprint = language.fingerprint()
        entry = self._classes.get(fingerprint)
        if entry is not None and entry.method is not None:
            return entry.method
        self.stats.classifications += 1
        # Classify the representative, not a relabelled copy: the infix-free
        # sublanguage ``choose_method`` memoizes must land on the instance
        # every later equivalent query will share.  (A bounded cache may have
        # evicted the class between resolution and classification — then this
        # language simply becomes the new representative.)
        representative = entry.language if entry is not None else language
        method = choose_method(representative)
        if language is not representative and language._infix_free is None:
            language._infix_free = representative._infix_free
        if entry is not None:
            entry.method = method
        else:
            self._classes.set(fingerprint, _CanonicalClass(language, method))
        if self._store is not None:
            # ``None`` only for epsilon languages, whose execution
            # short-circuits before ever needing the infix-free language.
            self._store.put(
                fingerprint, method=method, infix_free=representative._infix_free
            )
        return method

    # ------------------------------------------------------------ result cache

    def _result_key(
        self,
        language: Language,
        database: "GraphDatabase | BagGraphDatabase",
        *,
        semantics: str | None,
        method: str | None,
        unsafe: bool,
    ) -> tuple | None:
        """Identity of a resilience computation, or ``None`` when uncacheable.

        The key is ``(language fingerprint, database content fingerprint,
        effective semantics, forced method, unsafe)``: the result is a
        deterministic function of exactly these five inputs (budgets only
        decide whether the exact fallback *finishes*, never what it returns).
        Requires the canonical layer — without fingerprints, equality of query
        classes is undecidable in O(1).
        """
        if not self._canonical:
            return None
        if semantics is None:
            semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"
        return (
            language.fingerprint(),
            database.content_fingerprint(),
            semantics,
            method,
            unsafe,
        )

    def lookup_result(
        self,
        language: Language,
        database: "GraphDatabase | BagGraphDatabase",
        *,
        semantics: str | None = None,
        method: str | None = None,
        unsafe: bool = False,
        max_nodes: int | None = None,
        max_seconds: float | None = None,
    ) -> "ResilienceResult | None":
        """Return the memoized result of an identical computation, relabelled.

        A hit returns a copy reported under this language's display name (the
        stored result keeps the first query's); values, contingency sets,
        methods and details are the memoized ones — which equal a fresh
        computation's exactly, because results are deterministic functions of
        the key (the conformance suite pins this).

        A *budgeted* query (``max_nodes`` / ``max_seconds``) never hits: its
        defining observable is whether its own execution finishes within the
        budget, which a replayed result cannot answer — serving it from the
        cache would report ``ok`` where the uncached reference reports
        ``budget-exceeded``, and (under concurrent serving) make the outcome
        depend on what happened to run first.  Budgeted queries always
        execute; their *completed* results still feed the cache via
        :meth:`store_result`, because a search that finished within budget is
        identical to an unbounded one.
        """
        if max_nodes is not None or max_seconds is not None:
            return None
        key = self._result_key(
            language, database, semantics=semantics, method=method, unsafe=unsafe
        )
        if key is None:
            return None
        cached = self._results.get(key)
        if cached is None and self._result_store is not None:
            # Cross-process layer: a sibling (or a warming pass) may have
            # computed this exact key already.  A store hit is installed in
            # the in-memory layer so repeats stay off the disk.
            cached = self._result_store.get(key)
            if cached is not None:
                self._results.set(key, cached)
        self._refresh_gauges()
        if cached is None:
            # Not counted as a miss here: misses are counted at completion
            # time (:meth:`store_result`), so a lookup for a computation that
            # ends up failing never skews the cacheable hit rate.
            return None
        self.stats.result_hits += 1
        return cached.with_query(language.name or "")

    def store_result(
        self,
        language: Language,
        database: "GraphDatabase | BagGraphDatabase",
        result: "ResilienceResult",
        *,
        semantics: str | None = None,
        method: str | None = None,
        unsafe: bool = False,
    ) -> None:
        """Memoize a successfully computed result (first writer wins).

        Called at completion time for every *cacheable* computation the
        result layer failed to serve, so this is also where ``result_misses``
        is counted — ``result_hits / (result_hits + result_misses)`` is then
        the hit rate over cacheable traffic exactly.
        """
        key = self._result_key(
            language, database, semantics=semantics, method=method, unsafe=unsafe
        )
        if key is None:
            return
        self.stats.result_misses += 1
        self._results.setdefault(key, result)
        if self._result_store is not None:
            self._result_store.put(key, result)
        self._refresh_gauges()

    def note_uncacheable_result(self) -> None:
        """Count a completion the result layer can never serve or memoize.

        Error and budget-exceeded outcomes are not results — memoizing them
        would replay failures for queries that would succeed.  They are
        tallied as ``result_uncacheable`` instead of ``result_misses`` so
        error-heavy chaos traffic cannot skew the cacheable hit rate.  No-op
        when the result layer is off (``canonical=False``), mirroring the
        hit/miss counters it complements.
        """
        if self._canonical:
            self.stats.result_uncacheable += 1

    def __len__(self) -> int:
        return len(self._by_expression)


def resilience(
    query: Language | RPQ | str,
    database: GraphDatabase | BagGraphDatabase,
    *,
    method: str | None = None,
    unsafe: bool = False,
    semantics: str | None = None,
    exact_max_nodes: int | None = None,
    exact_max_seconds: float | None = None,
) -> ResilienceResult:
    """Compute the resilience of an RPQ on a database.

    Args:
        query: the query language, as a :class:`Language`, an :class:`RPQ`, or a
            regular-expression string.
        database: a set or bag graph database.
        method: force a specific algorithm (``"local-flow"``, ``"bcl-flow"``,
            ``"one-dangling-flow"``, ``"exact"``); by default the dispatcher picks
            the fastest sound algorithm based on the language class.  A forced
            method whose applicability precondition fails raises
            :class:`ReproError`.
        unsafe: skip the applicability check of a forced ``method`` (the result
            is then only meaningful if the caller guarantees the precondition).
        semantics: force reporting as ``"set"`` or ``"bag"``; inferred from the
            database type otherwise.
        exact_max_nodes: search-node cap forwarded to the exact baseline.
        exact_max_seconds: wall-clock budget forwarded to the exact baseline.

    Raises:
        SearchBudgetExceeded: when the exact baseline runs and exceeds one of
            its budgets (the serving layer catches this and reports it as a
            structured outcome).

    Returns:
        a :class:`ResilienceResult` with the resilience value, a witnessing
        contingency set (when available) and the algorithm used.
    """
    language = _as_language(query)

    if semantics is None:
        semantics = "bag" if isinstance(database, BagGraphDatabase) else "set"

    if method is not None and method not in _FORCED_METHOD_PRECONDITIONS:
        raise ValueError(f"unknown resilience method: {method}")

    display_name = language.name or ""
    # The empty word makes resilience infinite whatever algorithm is forced, so
    # the epsilon short-circuit only needs the method *name* validated above.
    if language.contains(""):
        return ResilienceResult(INFINITE, None, semantics, "trivial-epsilon", display_name)

    # The infix-free sublanguage is expensive to compute; do it exactly once and
    # thread it through both method selection and the chosen algorithm.
    infix_free = language.infix_free()
    if method is None:
        chosen = choose_method(language, infix_free=infix_free)
    else:
        chosen = method
        _check_forced_method(chosen, infix_free, unsafe)

    if chosen == "local-flow":
        result = resilience_local(infix_free, database, semantics=semantics, check_local=not unsafe)
    elif chosen == "bcl-flow":
        result = resilience_bcl(infix_free, database, semantics=semantics)
    elif chosen == "one-dangling-flow":
        result = resilience_one_dangling(infix_free, database, semantics=semantics)
    elif chosen in ("exact", "trivial-epsilon"):
        result = resilience_exact(
            infix_free,
            database,
            semantics=semantics,
            max_nodes=exact_max_nodes,
            max_seconds=exact_max_seconds,
        )
    else:  # pragma: no cover - _check_forced_method rejects unknown methods
        raise ValueError(f"unknown resilience method: {chosen}")
    # Report under the original query name without mutating the infix-free
    # language (the seed used to overwrite ``infix_free.name`` in place).
    return result.with_query(display_name)


def resilience_many(
    queries: Iterable[Language | RPQ | str],
    database: GraphDatabase | BagGraphDatabase,
    *,
    method: str | None = None,
    unsafe: bool = False,
    semantics: str | None = None,
    exact_max_nodes: int | None = None,
    exact_max_seconds: float | None = None,
    cache: "LanguageCache | None" = None,
    store: "AnalysisStore | None" = None,
) -> list[ResilienceResult]:
    """Compute the resilience of many queries against one shared database.

    The database index is compiled once up front and reused by every query
    (indexes are cached on the database instance, so the flow reductions and
    the exact overlay search all hit the same shared adjacency structures), and
    compiled automaton plans are shared between equal queries.  Queries are
    resolved through a session-level :class:`LanguageCache`, so duplicate
    *and equivalent* queries share one :class:`Language` instance and
    therefore one memoized infix-free sublanguage — the single most expensive
    per-query derivation is paid once per distinct language, not once per
    submission.  Pass ``cache=`` to share that cache across several batches of
    the same session, or ``store=`` to additionally persist analyses on disk
    across processes (see :class:`~repro.resilience.store.AnalysisStore`).
    Results are returned in query order.
    """
    if cache is None:
        cache = LanguageCache(store=store)
    elif store is not None:
        raise ValueError("pass the store through the cache (LanguageCache(store=...)), not both")
    query_list: Sequence[Language | RPQ | str] = list(queries)
    # Warm the shared structures before fanning out over the query fleet.
    warm_database(database)
    results: list[ResilienceResult] = []
    for query in query_list:
        language = cache.language(query)
        # Result-level layer: an identical query-class × database × semantics
        # × forced-method tuple computed earlier (this batch or a previous one
        # sharing the cache) replays its memoized result — deterministic, so
        # indistinguishable from recomputing (pinned by the conformance suite).
        cached = cache.lookup_result(
            language,
            database,
            semantics=semantics,
            method=method,
            unsafe=unsafe,
            max_nodes=exact_max_nodes,
            max_seconds=exact_max_seconds,
        )
        if cached is not None:
            results.append(cached)
            continue
        run_method, run_unsafe = reforce_planned_method(
            method, unsafe, lambda: cache.method(language)
        )
        result = resilience(
            language,
            database,
            method=run_method,
            unsafe=run_unsafe,
            semantics=semantics,
            exact_max_nodes=exact_max_nodes,
            exact_max_seconds=exact_max_seconds,
        )
        cache.store_result(
            language, database, result, semantics=semantics, method=method, unsafe=unsafe
        )
        results.append(result)
    return results


def verify_contingency_set(
    query: Language | RPQ | str,
    database: GraphDatabase | BagGraphDatabase,
    result: ResilienceResult,
) -> bool:
    """Check that a resilience result's contingency set really falsifies the query
    and that its cost matches the reported value (used in tests and examples)."""
    if isinstance(query, str):
        rpq = RPQ.from_regex(query)
    elif isinstance(query, Language):
        rpq = RPQ(query)
    else:
        rpq = query
    if result.contingency_set is None:
        return result.is_infinite
    # A contingency set must consist of facts of the database: a foreign fact
    # can never be removed, so such a set is invalid in both semantics (the seed
    # crashed with KeyError on the bag-semantics cost lookup instead).
    if any(fact not in database for fact in result.contingency_set):
        return False
    if not rpq.is_contingency_set(database, result.contingency_set):
        return False
    if isinstance(database, BagGraphDatabase):
        cost = database.total_cost(result.contingency_set)
    else:
        cost = len(result.contingency_set)
    return cost == result.value
