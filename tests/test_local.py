"""Tests for local languages (Section 3.1)."""

import pytest

from repro.languages import Language, local


class TestLocalProfile:
    def test_profile_of_ax_star_b(self):
        profile = local.local_profile(Language.from_regex("ax*b"))
        assert profile.start_letters == {"a"}
        assert profile.end_letters == {"b"}
        assert profile.consecutive_pairs == {("a", "x"), ("x", "x"), ("x", "b"), ("a", "b")}
        assert not profile.has_epsilon

    def test_profile_of_finite_language(self):
        profile = local.local_profile(Language.from_regex("ab|ad|cd"))
        assert profile.start_letters == {"a", "c"}
        assert profile.end_letters == {"b", "d"}
        assert profile.consecutive_pairs == {("a", "b"), ("a", "d"), ("c", "d")}

    def test_profile_epsilon(self):
        profile = local.local_profile(Language.from_regex("ε|a"))
        assert profile.has_epsilon


class TestLocalOverapproximation:
    def test_overapproximation_is_local_dfa(self):
        for expression in ["ax*b", "aa", "abc|bcd"]:
            approx = local.local_overapproximation(Language.from_regex(expression))
            assert approx.is_local_dfa(), expression

    def test_overapproximation_contains_language(self):
        # Claim 3.9: L(A) >= L.
        language = Language.from_regex("abc|bcd")
        approx = Language.from_automaton(local.local_overapproximation(language))
        assert language.subset_of(approx)

    def test_overapproximation_of_aa_adds_longer_words(self):
        approx = local.local_overapproximation(Language.from_regex("aa"))
        assert approx.accepts("aa")
        assert approx.accepts("aaa")  # the overapproximation is strictly larger


class TestIsLocal:
    @pytest.mark.parametrize(
        "expression", ["ax*b", "ab|ad|cd", "abc|abd", "a|b", "axb|axc", "abcd"]
    )
    def test_local_languages(self, expression):
        assert local.is_local(Language.from_regex(expression)), expression

    @pytest.mark.parametrize(
        "expression",
        ["aa", "axb|cxd", "ab|bc", "abc|bcd", "abca|cab", "b(aa)*d", "ab|bc|ca", "abc|be"],
    )
    def test_non_local_languages(self, expression):
        assert not local.is_local(Language.from_regex(expression)), expression

    def test_empty_language_is_local(self):
        assert local.is_local(Language.from_words([]))

    def test_proposition_3_12_dfa_input(self):
        # Locality testing for DFAs: feed the minimized DFA and test.
        language = Language.from_regex("ab|ad|cd")
        minimal = language.automaton.minimize()
        assert local.is_local(Language.from_automaton(minimal))


class TestLetterCartesian:
    def test_example_3_4_aa_violation(self):
        violation = local.letter_cartesian_violation_finite(Language.from_regex("aa"))
        assert violation is not None
        letter, alpha, beta, gamma, delta = violation
        assert letter == "a"
        # The cross word is not in the language.
        assert alpha + letter + delta not in Language.from_regex("aa")

    def test_local_language_has_no_violation(self):
        assert local.is_letter_cartesian_finite(Language.from_regex("ab|ad|cd"))

    def test_equivalence_with_locality_on_finite_languages(self):
        # Proposition 3.5 on a battery of finite languages.
        for expression in ["ab|ad|cd", "aa", "abc|abd", "abc|bcd", "ab|bc", "abca|cab"]:
            language = Language.from_regex(expression)
            assert local.is_local(language) == local.is_letter_cartesian_finite(language), expression

    def test_infinite_language_sampled_check(self):
        language = Language.from_regex("ax*b")
        assert local.is_letter_cartesian_finite(language, max_length=5)
