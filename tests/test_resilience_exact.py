"""Tests for the exact resilience baseline (branch and bound + brute force)."""

import math

import pytest

from repro.exceptions import ReproError, SearchBudgetExceeded
from repro.graphdb import BagGraphDatabase, Fact, GraphDatabase, generators
from repro.languages import Language
from repro.resilience import resilience_brute_force, resilience_exact, verify_contingency_set


class TestSetSemantics:
    def test_query_already_false(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        result = resilience_exact(Language.from_regex("bb"), database)
        assert result.value == 0
        assert result.contingency_set == frozenset()

    def test_single_witness(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "b", "w")])
        result = resilience_exact(Language.from_regex("ab"), database)
        assert result.value == 1
        assert verify_contingency_set("ab", database, result)

    def test_aa_on_a_path(self):
        # A path of 4 a-edges: killing all length-2 walks needs 2 removals
        # (the 2nd and 4th edges, say).
        database = GraphDatabase.from_edges(
            [("1", "a", "2"), ("2", "a", "3"), ("3", "a", "4"), ("4", "a", "5")]
        )
        result = resilience_exact(Language.from_regex("aa"), database)
        assert result.value == 2
        assert verify_contingency_set("aa", database, result)

    def test_epsilon_language_is_infinite(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        result = resilience_exact(Language.from_regex("ε|a"), database)
        assert result.is_infinite
        assert result.contingency_set is None

    def test_shared_fact_between_witnesses(self):
        # Two ab-walks share the a-fact: resilience is 1.
        database = GraphDatabase.from_edges(
            [("u", "a", "v"), ("v", "b", "w"), ("v", "b", "z")]
        )
        result = resilience_exact(Language.from_regex("ab"), database)
        assert result.value == 1

    def test_matches_brute_force_on_random_instances(self):
        for seed in range(6):
            database = generators.random_labelled_graph(4, 7, "ab", seed=seed)
            for expression in ["ab", "aa", "ab|ba"]:
                language = Language.from_regex(expression)
                fast = resilience_exact(language, database)
                slow = resilience_brute_force(language, database)
                assert fast.value == slow.value, (seed, expression)

    def test_max_nodes_guard(self):
        database = generators.random_labelled_graph(6, 14, "a", seed=1)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            resilience_exact(Language.from_regex("aa"), database, max_nodes=1)
        # The dedicated exception is a ReproError, stays catchable as the
        # seed's bare RuntimeError, and carries structured diagnostics.
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, RuntimeError)
        assert excinfo.value.max_nodes == 1
        assert excinfo.value.nodes_explored == 2

    def test_max_seconds_guard(self):
        database = generators.random_labelled_graph(6, 14, "a", seed=1)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            resilience_exact(Language.from_regex("aa"), database, max_seconds=0.0)
        assert excinfo.value.max_seconds == 0.0
        assert excinfo.value.max_nodes is None

    def test_reference_raises_same_budget_exception(self):
        from repro.resilience import resilience_exact_reference

        database = generators.random_labelled_graph(6, 14, "a", seed=1)
        with pytest.raises(SearchBudgetExceeded):
            resilience_exact_reference(Language.from_regex("aa"), database, max_nodes=1)


class TestBagSemantics:
    def test_costs_drive_the_choice(self):
        bag = BagGraphDatabase.from_edges([("u", "a", "v", 5), ("v", "b", "w", 1)])
        result = resilience_exact(Language.from_regex("ab"), bag)
        assert result.value == 1
        assert result.contingency_set == frozenset({Fact("v", "b", "w")})

    def test_bag_vs_set_value_can_differ(self):
        bag = BagGraphDatabase.from_edges(
            [("u", "a", "v", 10), ("v", "b", "w", 10), ("v", "b", "z", 10)]
        )
        result = resilience_exact(Language.from_regex("ab"), bag)
        assert result.value == 10
        assert result.semantics == "bag"

    def test_brute_force_agreement_on_bags(self):
        for seed in range(4):
            bag = generators.random_bag_database(4, 6, "ab", seed=seed, max_multiplicity=4)
            fast = resilience_exact(Language.from_regex("ab|ba"), bag)
            slow = resilience_brute_force(Language.from_regex("ab|ba"), bag)
            assert fast.value == slow.value, seed

    def test_mirror_invariance(self):
        # Proposition 6.3: resilience of L^R on D^R equals resilience of L on D.
        language = Language.from_regex("abc|ba")
        for seed in range(4):
            database = generators.random_labelled_graph(4, 8, "abc", seed=seed)
            direct = resilience_exact(language, database)
            mirrored = resilience_exact(language.mirror(), database.reverse())
            assert direct.value == mirrored.value, seed
