"""Edge-case suite for the exchange layer (router, fleet, failover, HTTP).

The conformance suite pins the big claim — distributed serving is
outcome-identical to the uncached serial reference.  This file pins the
sharp edges around that claim: rendezvous routing stability under fleet
membership changes, scatter/gather index remapping for multi-database
envelopes, mid-stream node death (no outcome lost, duplicated, or leaked
into another envelope's stream), strict registration, drain vs kill
semantics, identity-preserving replacement, and the HTTP transport's wire
behavior (including its stats round-trip).
"""

from __future__ import annotations

import pytest

from faults import ChaosHttpNodeLauncher, drain_with_kill
from repro.exceptions import ReproError
from repro.graphdb import generators
from repro.service import (
    CircuitBreaker,
    EnvelopePart,
    HealthMonitor,
    LanguageCache,
    LocalExchange,
    NodeManager,
    RetryPolicy,
    Router,
    ThreadExchange,
    Workload,
    WorkloadEnvelope,
    resilience_serve,
)
from repro.service.exchange import (
    HttpExchange,
    HttpNode,
    HttpNodeLauncher,
    HttpNodeServer,
    NodeStats,
    ThreadNode,
    ThreadNodeLauncher,
)
from repro.traffic import CORRUPT, DISCONNECT, REFUSED, STALL

QUERIES = ("ax*b", "ab|bc", "aa", "(ab)*a", "ε|a", "((")


@pytest.fixture(scope="module")
def set_db():
    return generators.random_labelled_graph(5, 14, "abxy", seed=3)


@pytest.fixture(scope="module")
def bag_db():
    return generators.random_labelled_graph(4, 10, "abx", seed=5).to_bag(2)


def reference(database):
    return resilience_serve(
        Workload.coerce(QUERIES),
        database,
        parallel=False,
        cache=LanguageCache(canonical=False),
    )


def sorted_outcomes(outcomes):
    return sorted(outcomes, key=lambda outcome: outcome.index)


# --------------------------------------------------------------------- router


def test_router_is_deterministic_and_total():
    router = Router()
    nodes = [f"node-{i}" for i in range(5)]
    keys = [f"fingerprint-{i}" for i in range(100)]
    first = {key: router.route(key, nodes) for key in keys}
    second = {key: router.route(key, list(reversed(nodes))) for key in keys}
    assert first == second, "routing must not depend on candidate order"
    assert set(first.values()) == set(nodes), (
        "100 keys over 5 nodes should touch every node"
    )


def test_router_leave_moves_only_the_dead_nodes_keys():
    router = Router()
    nodes = [f"node-{i}" for i in range(4)]
    keys = [f"db-{i}" for i in range(200)]
    before = {key: router.route(key, nodes) for key in keys}
    survivors = [node for node in nodes if node != "node-2"]
    after = {key: router.route(key, survivors) for key in keys}
    for key in keys:
        if before[key] != "node-2":
            assert after[key] == before[key], (
                f"{key} moved off a surviving node when node-2 left"
            )
    assert any(before[key] == "node-2" for key in keys)


def test_router_join_moves_keys_only_to_the_new_node():
    router = Router()
    nodes = [f"node-{i}" for i in range(3)]
    keys = [f"db-{i}" for i in range(200)]
    before = {key: router.route(key, nodes) for key in keys}
    after = {key: router.route(key, nodes + ["node-3"]) for key in keys}
    moved = {key for key in keys if after[key] != before[key]}
    assert moved, "a join must take over some keys"
    assert all(after[key] == "node-3" for key in moved), (
        "keys may only move to the joining node"
    )


def test_router_ranking_is_consistent_with_route():
    router = Router()
    nodes = [f"node-{i}" for i in range(4)]
    ranking = router.ranking("some-fingerprint", nodes)
    assert sorted(ranking) == sorted(nodes)
    assert ranking[0] == router.route("some-fingerprint", nodes)


def test_router_rejects_an_empty_fleet():
    with pytest.raises(ReproError):
        Router().route("fingerprint", [])


# ------------------------------------------------------------ fleet lifecycle


def test_duplicate_registration_of_a_live_id_raises(set_db):
    manager = NodeManager(ThreadNodeLauncher(max_workers=2))
    manager.spawn(1)
    with pytest.raises(ReproError, match="duplicate node registration"):
        manager.register(ThreadNode("node-0", max_workers=2))
    manager.close()


def test_dead_node_id_can_be_reregistered():
    manager = NodeManager()
    first = ThreadNode("node-0", max_workers=2)
    manager.register(first)
    first.kill()
    replacement = ThreadNode("node-0", max_workers=2)
    manager.register(replacement)
    assert manager.node("node-0") is replacement
    manager.close()


def test_drain_excludes_a_node_from_routing_but_keeps_it_alive(set_db):
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        owner = exchange.route_for(set_db)
        exchange.manager.drain(owner)
        assert owner not in exchange.manager.live_ids()
        assert exchange.manager.node(owner).alive, "drain is not kill"
        # New work routes to the remaining node and still serves correctly.
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)
        other = next(
            node_id for node_id in exchange.nodes() if node_id != owner
        )
        assert exchange.manager.node(other).stats().envelopes_served == 1
        assert exchange.manager.node(owner).stats().envelopes_served == 0


def test_replace_keeps_the_node_id_and_routing(set_db):
    with ThreadExchange(nodes=3, max_workers=2, parallel=False) as exchange:
        owner = exchange.route_for(set_db)
        old = exchange.manager.node(owner)
        replacement = exchange.manager.replace(owner)
        assert replacement.node_id == owner
        assert old.killed and not old.alive
        assert exchange.route_for(set_db) == owner, (
            "identity-preserving replacement keeps the rendezvous keys"
        )
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)


# -------------------------------------------------------------- thread fleet


def test_multi_database_envelope_scatters_with_correct_index_remapping(
    set_db, bag_db
):
    workload = Workload.coerce(QUERIES)
    envelope = WorkloadEnvelope(
        parts=(
            EnvelopePart(workload=workload, database=set_db),
            EnvelopePart(workload=workload, database=bag_db),
        )
    )
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        outcomes = sorted_outcomes(exchange.submit(envelope))
    assert [outcome.index for outcome in outcomes] == list(range(2 * len(QUERIES)))
    from dataclasses import replace

    first = outcomes[: len(QUERIES)]
    second = [
        replace(outcome, index=outcome.index - len(QUERIES))
        for outcome in outcomes[len(QUERIES):]
    ]
    assert first == reference(set_db)
    assert second == reference(bag_db)


def test_node_crash_mid_stream_loses_and_leaks_nothing(set_db):
    """Kill the owner mid-stream: every index arrives exactly once, correct,
    and a subsequent envelope's stream is untouched by the corpse."""
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        owner = exchange.route_for(set_db)
        iterator = exchange.submit(
            WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db)
        )
        outcomes = drain_with_kill(
            iterator, lambda: exchange.manager.kill(owner), after=2
        )
        indices = sorted(outcome.index for outcome in outcomes)
        assert indices == list(range(len(QUERIES))), "no outcome lost or duplicated"
        assert sorted_outcomes(outcomes) == reference(set_db)
        # The next envelope serves on the survivor, uncontaminated.
        again = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert again == reference(set_db)
        assert exchange.heartbeat()[owner] is False


def test_whole_fleet_death_without_launcher_fails_structurally(set_db):
    """With the degraded serial fallback disabled, an exhausted failover
    chain surfaces as structured NodeLost errors, one per query."""
    manager = NodeManager()
    manager.register(ThreadNode("only", max_workers=2, parallel=False))
    from repro.service.exchange import RoutedExchange

    with RoutedExchange(manager, degraded_fallback=False) as exchange:
        exchange.manager.kill("only")
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert [outcome.index for outcome in outcomes] == list(range(len(QUERIES)))
        assert all(outcome.status == "error" for outcome in outcomes)
        assert all("NodeLost" in outcome.error for outcome in outcomes)
        assert exchange.degraded_serves == 0


def test_whole_fleet_death_degrades_to_serial_with_parity(set_db):
    """Default behavior: the same exhausted chain degrades to the in-process
    serial fallback — full parity with the reference, counted once."""
    manager = NodeManager()
    manager.register(ThreadNode("only", max_workers=2, parallel=False))
    from repro.service.exchange import RoutedExchange

    with RoutedExchange(manager) as exchange:
        exchange.manager.kill("only")
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)
        assert exchange.degraded_serves == 1


def test_whole_fleet_death_with_launcher_auto_replaces(set_db):
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        for node_id in exchange.nodes():
            exchange.manager.kill(node_id)
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)
        assert exchange.route_for(set_db) in exchange.manager.live_ids()


def test_closed_exchange_refuses_submissions(set_db):
    exchange = ThreadExchange(nodes=1, max_workers=2, parallel=False)
    exchange.close()
    with pytest.raises(ReproError):
        exchange.submit(WorkloadEnvelope.single(Workload.coerce(["aa"]), set_db))


def test_local_exchange_multi_part_remaps_indices(set_db):
    workload = Workload.coerce(QUERIES)
    envelope = WorkloadEnvelope(
        parts=(
            EnvelopePart(workload=workload, database=set_db),
            EnvelopePart(workload=Workload.coerce(["aa"]), database=set_db),
        )
    )
    with LocalExchange(set_db, parallel=False) as exchange:
        outcomes = sorted_outcomes(exchange.submit(envelope))
    assert [outcome.index for outcome in outcomes] == list(range(len(QUERIES) + 1))
    assert outcomes[: len(QUERIES)] == reference(set_db)


# ---------------------------------------------------------------- HTTP fleet


def test_http_exchange_end_to_end_and_stats_roundtrip(set_db):
    with HttpExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)
        snapshots = exchange.stats()
        assert {snapshot.node_id for snapshot in snapshots} == {"node-0", "node-1"}
        assert all(snapshot.alive for snapshot in snapshots)
        assert sum(snapshot.envelopes_served for snapshot in snapshots) == 1
        assert sum(snapshot.databases for snapshot in snapshots) == 1
        for snapshot in snapshots:
            rebuilt = NodeStats.from_dict(snapshot.as_dict())
            assert rebuilt == snapshot


def test_http_node_kill_fails_over_to_the_survivor(set_db):
    manager = NodeManager(HttpNodeLauncher(max_workers=2, parallel=False))
    from repro.service.exchange import RoutedExchange

    with RoutedExchange(manager) as exchange:
        manager.spawn(2)
        owner = exchange.route_for(set_db)
        iterator = exchange.submit(
            WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db)
        )
        outcomes = drain_with_kill(
            iterator, lambda: exchange.manager.kill(owner), after=1
        )
        indices = sorted(outcome.index for outcome in outcomes)
        assert indices == list(range(len(QUERIES)))
        assert sorted_outcomes(outcomes) == reference(set_db)
        assert exchange.heartbeat()[owner] is False


# ------------------------------------------------------- retry / circuit policy


def test_retry_policy_schedule_is_deterministic_and_bounded():
    policy = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.5, seed=9)
    first = policy.sleep_schedule()
    second = policy.sleep_schedule()
    assert first == second, "same seed, same jittered schedule"
    assert len(first) == 3, "attempts - 1 sleeps"
    for position, delay in enumerate(first):
        base = 0.1 * 2.0**position
        assert base <= delay <= base * 1.5
    assert RetryPolicy(attempts=4, seed=10).sleep_schedule() != first


def test_retry_policy_retries_retriable_faults_only():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionResetError("transient")
        return "served"

    policy = RetryPolicy(attempts=3, base_delay=0.0)
    assert policy.run(flaky, sleep=lambda _: None) == "served"
    assert calls["n"] == 3

    def broken():
        raise ReproError("semantic, never retried")

    with pytest.raises(ReproError, match="never retried"):
        policy.run(broken, sleep=lambda _: None)


def test_circuit_breaker_opens_half_opens_and_recloses():
    breaker = CircuitBreaker(failure_threshold=2, cooldown_ticks=1)
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open" and breaker.opens == 1
    assert breaker.allow_probe() is False, "cooldown tick skips the probe"
    assert breaker.allow_probe() is True
    assert breaker.state == "half-open"
    breaker.record_failure()
    assert breaker.state == "open" and breaker.opens == 2, (
        "a failed half-open probe reopens immediately"
    )
    assert breaker.allow_probe() is False
    assert breaker.allow_probe() is True
    assert breaker.record_success() is True, "reclose reported exactly once"
    assert breaker.state == "closed"
    assert breaker.record_success() is False


# --------------------------------------------------------- self-healing fabric


def chaos_fleet(nodes: int = 2, *, retry: RetryPolicy | None = None):
    """A routed exchange over chaos-capable HTTP nodes."""
    launcher = ChaosHttpNodeLauncher(
        max_workers=2, parallel=False, request_timeout=10.0, retry=retry
    )
    manager = NodeManager(launcher)
    return HttpExchange(nodes=nodes, manager=manager)


def serve_all(exchange, database):
    return sorted_outcomes(
        exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), database))
    )


def test_refused_window_shorter_than_retry_budget_is_absorbed(set_db):
    with chaos_fleet(retry=RetryPolicy(attempts=3, base_delay=0.0)) as exchange:
        owner = exchange.route_for(set_db)
        node = exchange.manager.node(owner)
        node.inject_fault(REFUSED, count=2)
        assert serve_all(exchange, set_db) == reference(set_db)
        assert node.faults_fired[REFUSED] == 2
        assert node.alive, "an absorbed window never marks the node dead"


def test_disconnect_before_first_outcome_redispatches_on_same_node(set_db):
    with chaos_fleet(retry=RetryPolicy(attempts=3, base_delay=0.0)) as exchange:
        owner = exchange.route_for(set_db)
        node = exchange.manager.node(owner)
        node.inject_fault(DISCONNECT, after_outcomes=0)
        assert serve_all(exchange, set_db) == reference(set_db)
        assert node.faults_fired[DISCONNECT] == 1
        assert node.alive
        survivor = next(n for n in exchange.nodes() if n != owner)
        assert exchange.manager.node(survivor).stats().envelopes_served == 0, (
            "a pre-first-outcome cut re-dispatches on the same node, "
            "not on the failover target"
        )


def test_disconnect_mid_stream_fails_over_with_parity(set_db):
    with chaos_fleet(retry=RetryPolicy(attempts=3, base_delay=0.0)) as exchange:
        owner = exchange.route_for(set_db)
        node = exchange.manager.node(owner)
        node.inject_fault(DISCONNECT, after_outcomes=2)
        assert serve_all(exchange, set_db) == reference(set_db)
        assert node.faults_fired[DISCONNECT] == 1
        assert not node.alive, "a mid-stream cut is node loss for the exchange"
        survivor = next(n for n in exchange.nodes() if n != owner)
        assert exchange.manager.node(survivor).stats().envelopes_served == 1


def test_stalled_stream_times_out_and_redispatches(set_db):
    with chaos_fleet(retry=RetryPolicy(attempts=2, base_delay=0.0)) as exchange:
        owner = exchange.route_for(set_db)
        node = exchange.manager.node(owner)
        node.inject_fault(STALL)
        assert serve_all(exchange, set_db) == reference(set_db)
        assert node.faults_fired[STALL] == 1


def test_corrupt_stream_is_refused_wholesale_and_fails_over(set_db):
    with chaos_fleet() as exchange:
        owner = exchange.route_for(set_db)
        node = exchange.manager.node(owner)
        node.inject_fault(CORRUPT, after_outcomes=1)
        outcomes = serve_all(exchange, set_db)
        assert outcomes == reference(set_db), (
            "a corrupt line must never surface as a mangled outcome"
        )
        assert node.faults_fired[CORRUPT] == 1
        assert not node.alive


def _unwrap_database(real):
    return real


class _LyingFingerprintDatabase:
    """Claims a bogus fingerprint locally but ships the real database, so
    the node's recomputed digest disagrees with the client's."""

    def __init__(self, real) -> None:
        self._real = real

    def content_fingerprint(self) -> str:
        return "bogus-local-fingerprint"

    def __reduce__(self):
        return (_unwrap_database, (self._real,))


def test_fingerprint_mismatch_on_ship_raises_with_both_values(set_db):
    launcher = HttpNodeLauncher(max_workers=2, parallel=False)
    manager = NodeManager(launcher)
    manager.spawn(1)
    try:
        node = manager.node("node-0")
        with pytest.raises(ReproError, match="fingerprint mismatch") as excinfo:
            node.ensure_database(_LyingFingerprintDatabase(set_db))
        message = str(excinfo.value)
        assert "bogus-local-fingerprint" in message
        assert set_db.content_fingerprint() in message
        assert not node._shipped, "a mismatched ship must not be cached"
    finally:
        manager.close()


def test_node_restart_on_same_port_reships_transparently(set_db):
    """A restarted node lost its databases; the client's stale shipped-set
    gets a 409 on /serve and transparently re-ships exactly once."""
    server = HttpNodeServer("node-r", max_workers=2, parallel=False)
    host, port = server.address
    node = HttpNode("node-r", host, port)
    try:
        workload = Workload.coerce(QUERIES)
        first = sorted_outcomes(node.serve_iter(workload, set_db))
        assert first == reference(set_db)
        assert set_db.content_fingerprint() in node._shipped
        server.close()
        server = HttpNodeServer("node-r", host=host, port=port, max_workers=2, parallel=False)
        again = sorted_outcomes(node.serve_iter(workload, set_db))
        assert again == reference(set_db)
        assert node.alive
    finally:
        node.close()
        server.close()


def test_database_lru_evicts_and_reships_under_cap(set_db, bag_db):
    """With a one-database cap, alternating databases forces an eviction per
    switch; every serve still answers with full parity through the 409
    re-ship path."""
    launcher = HttpNodeLauncher(max_workers=2, parallel=False, max_databases=1)
    manager = NodeManager(launcher)
    manager.spawn(1)
    try:
        node = manager.node("node-0")
        workload = Workload.coerce(QUERIES)
        assert sorted_outcomes(node.serve_iter(workload, set_db)) == reference(set_db)
        assert sorted_outcomes(node.serve_iter(workload, bag_db)) == reference(bag_db)
        # set_db was evicted by bag_db under cap=1; serving it again re-ships.
        assert sorted_outcomes(node.serve_iter(workload, set_db)) == reference(set_db)
    finally:
        manager.close()


def test_health_monitor_opens_recloses_and_invalidates_shipped(set_db):
    """The full circuit: probes fail -> breaker opens -> cooldown -> half-open
    probe against the restarted node -> reclose invalidates the handle's
    shipped-set so the next serve re-ships."""
    launcher = HttpNodeLauncher(max_workers=2, parallel=False)
    manager = NodeManager(launcher)
    manager.spawn(1)
    try:
        node = manager.node("node-0")
        list(node.serve_iter(Workload.coerce(["aa"]), set_db))
        assert node._shipped, "precondition: a database was shipped"
        monitor = HealthMonitor(manager, failure_threshold=2, cooldown_ticks=1)
        server = launcher._servers[0]
        host, port = server.address
        server.close()

        monitor.tick()
        assert monitor.states() == {"node-0": "closed"}
        monitor.tick()
        assert monitor.states() == {"node-0": "open"}
        monitor.tick()  # cooldown: no probe spent on a known-dead node
        assert monitor.states() == {"node-0": "open"}

        restarted = HttpNodeServer(
            "node-0", host=host, port=port, max_workers=2, parallel=False
        )
        launcher._servers.append(restarted)
        monitor.tick()  # half-open probe succeeds -> reclose
        assert monitor.states() == {"node-0": "closed"}
        assert monitor.recloses == 1
        assert not node._shipped, "reclose must invalidate the shipped-set"
        outcomes = sorted_outcomes(node.serve_iter(Workload.coerce(QUERIES), set_db))
        assert outcomes == reference(set_db)
    finally:
        manager.close()


def test_health_monitor_replaces_a_node_dead_past_grace(set_db):
    launcher = HttpNodeLauncher(max_workers=2, parallel=False)
    manager = NodeManager(launcher)
    manager.spawn(1)
    try:
        corpse = manager.node("node-0")
        monitor = HealthMonitor(manager, failure_threshold=1, replace_after=2)
        launcher._servers[0].close()
        monitor.tick()
        monitor.tick()
        assert monitor.replacements == 1
        replacement = manager.node("node-0")
        assert replacement is not corpse
        assert replacement.heartbeat()
        outcomes = sorted_outcomes(
            replacement.serve_iter(Workload.coerce(QUERIES), set_db)
        )
        assert outcomes == reference(set_db)
    finally:
        manager.close()


def test_manager_start_monitor_runs_and_stops_with_close(set_db):
    import time as _time

    with ThreadExchange(nodes=1, max_workers=2, parallel=False) as exchange:
        monitor = exchange.manager.start_monitor(interval=0.01)
        deadline = _time.monotonic() + 5.0
        while monitor.ticks == 0 and _time.monotonic() < deadline:
            _time.sleep(0.01)
        assert monitor.ticks > 0, "the supervision thread must be ticking"
        assert exchange.manager.monitor is monitor
    assert exchange.manager.monitor is None, "close() stops and clears it"
